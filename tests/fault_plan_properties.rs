//! Property-based tests of the fault-injection engine: a seeded
//! [`FaultPlan`] — including flap trains, repairs and jittered
//! detection — is a pure function of `(plan, topology)`, and a seeded
//! simulation driven by one is replayable bit-for-bit.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FaultPlan, FlowId, PacketKind, SimTime, Stats};
use kar_topology::{topo15, LinkId, Topology};
use proptest::prelude::*;

/// Core-core links of topo15 (failing one never detaches an edge).
fn core_links(topo: &Topology) -> Vec<LinkId> {
    (0..topo.link_count())
        .map(LinkId)
        .filter(|&l| {
            let link = topo.link(l);
            topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
        })
        .collect()
}

/// Builds the plan under test: a fail-and-repair window on one link and
/// a flap train on another, with jittered detection delays. `knobs`
/// packs the link choices and event timings into one word (proptest
/// shrinks it toward zero, i.e. toward the earliest/simplest plan).
fn build_plan(
    topo: &Topology,
    plan_seed: u64,
    knobs: u64,
    duty: f64,
    cycles: u32,
    jitter_us: u64,
) -> FaultPlan {
    let links = core_links(topo);
    let link_a = (knobs & 0x1f) as usize % links.len();
    let link_b = ((knobs >> 5) & 0x1f) as usize % links.len();
    let down_us = 100 + (knobs >> 10) % 4_900;
    let dur_us = 200 + (knobs >> 23) % 3_800;
    let period_us = 400 + (knobs >> 36) % 2_600;
    FaultPlan::new(plan_seed)
        .with_detection(SimTime::from_micros(50))
        .with_detection_jitter(SimTime::from_micros(jitter_us))
        .fail_for(
            links[link_a],
            SimTime::from_micros(down_us),
            SimTime::from_micros(dur_us),
        )
        .flap(
            links[link_b],
            SimTime::from_micros(down_us / 2),
            SimTime::from_micros(period_us),
            duty,
            cycles,
        )
}

/// One full seeded run: NIP + full protection on topo15's AS1 → AS3
/// flow, the plan applied, 40 paced probes, run to quiescence.
fn run_with_plan(plan: &FaultPlan, sim_seed: u64) -> Stats {
    let topo = topo15::build();
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(sim_seed)
        .ttl(255)
        .detection_delay(SimTime::from_micros(100))
        .build();
    net.encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
        .expect("route installs");
    let mut sim = net.into_sim();
    plan.apply(&mut sim);
    for i in 0..40 {
        sim.run_until(SimTime(i * 300_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    assert_eq!(sim.in_flight(), 0, "quiescence drains everything");
    sim.stats().clone()
}

/// A rolling-churn plan over two core links; geometry drawn from
/// `knobs` exactly like [`build_plan`].
fn build_churn_plan(topo: &Topology, plan_seed: u64, knobs: u64) -> FaultPlan {
    let links = core_links(topo);
    let link_a = (knobs & 0x1f) as usize % links.len();
    let link_b = ((knobs >> 5) & 0x1f) as usize % links.len();
    let gap_us = 300 + (knobs >> 10) % 2_000;
    let down_us = 100 + (knobs >> 23) % 1_000;
    let horizon_us = 2_000 + (knobs >> 36) % 8_000;
    FaultPlan::new(plan_seed)
        .with_detection(SimTime::from_micros(50))
        .with_detection_jitter(SimTime::from_micros(40))
        .churn(
            vec![links[link_a], links[link_b]],
            SimTime::from_micros(100),
            SimTime::from_micros(horizon_us),
            SimTime::from_micros(gap_us),
            SimTime::from_micros(down_us),
        )
}

/// Regression (tie-break semantics): a repair authored at the exact
/// `SimTime` of a scheduled failure used to resolve by clause insertion
/// order. Ties now sort `(time, link)` down-before-up, so both
/// authorings compile to the same train and replay to the same stats.
#[test]
fn same_time_fail_repair_tie_ignores_clause_order() {
    let topo = topo15::build();
    let link = core_links(&topo)[0];
    let at = SimTime::from_micros(700);
    let repair_first = FaultPlan::new(11)
        .with_detection(SimTime::from_micros(50))
        .repair(link, at)
        .fail(link, at);
    let fail_first = FaultPlan::new(11)
        .with_detection(SimTime::from_micros(50))
        .fail(link, at)
        .repair(link, at);
    assert_eq!(repair_first.compile(&topo), fail_first.compile(&topo));
    let train = repair_first.compile(&topo);
    assert!(!train[0].up && train[1].up, "down resolves before up");
    assert_eq!(
        run_with_plan(&repair_first, 5),
        run_with_plan(&fail_first, 5)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay determinism: the same plan on the same seeded simulation
    /// yields identical `Stats`, field for field — the property the
    /// parallel experiment runner's byte-identical `--jobs N` guarantee
    /// rests on.
    #[test]
    fn same_seed_replays_to_identical_stats(
        plan_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        knobs in any::<u64>(),
        duty_pct in 20u32..80,
        cycles in 1u32..4,
        jitter_us in 0u64..80,
    ) {
        let topo = topo15::build();
        let plan = build_plan(&topo, plan_seed, knobs, duty_pct as f64 / 100.0, cycles, jitter_us);
        let first = run_with_plan(&plan, sim_seed);
        let second = run_with_plan(&plan, sim_seed);
        prop_assert_eq!(&first, &second);
        // Conservation holds through arbitrary fail/repair/flap timing.
        prop_assert_eq!(first.injected, first.delivered + first.dropped());
    }

    /// Compilation determinism and well-formedness: compiling the same
    /// plan twice yields the same event train, sorted by time, with
    /// every jittered detection delay within `[base, base + jitter]`.
    #[test]
    fn compiled_event_trains_are_pure_and_sorted(
        plan_seed in 0u64..1000,
        knobs in any::<u64>(),
        duty_pct in 20u32..80,
        cycles in 1u32..4,
        jitter_us in 0u64..80,
    ) {
        let topo = topo15::build();
        let plan = build_plan(&topo, plan_seed, knobs, duty_pct as f64 / 100.0, cycles, jitter_us);
        let events = plan.compile(&topo);
        prop_assert_eq!(&events, &plan.compile(&topo));
        prop_assert!(!events.is_empty());
        for pair in events.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "sorted by time");
        }
        let base = SimTime::from_micros(50);
        let max = SimTime::from_micros(50 + jitter_us);
        for event in &events {
            let detection = event.detection.expect("plan sets detection");
            prop_assert!(
                detection >= base && detection <= max,
                "jitter within bounds: {detection:?}"
            );
        }
    }

    /// Rolling churn is as replayable as every other clause: the same
    /// Poisson plan compiles to the same train twice (its exponential
    /// draws come from the plan seed, not ambient state) and drives a
    /// seeded simulation to identical `Stats`.
    #[test]
    fn churn_plans_compile_pure_and_replay_identically(
        plan_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        knobs in any::<u64>(),
    ) {
        let topo = topo15::build();
        let plan = build_churn_plan(&topo, plan_seed, knobs);
        let events = plan.compile(&topo);
        prop_assert_eq!(&events, &plan.compile(&topo));
        for pair in events.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "sorted by time");
        }
        let first = run_with_plan(&plan, sim_seed);
        let second = run_with_plan(&plan, sim_seed);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.injected, first.delivered + first.dropped());
    }
}
