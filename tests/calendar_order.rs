//! Fast-path determinism properties (DESIGN.md: dataplane fast path).
//!
//! Two independent guarantees keep the simulator byte-identical with the
//! fast path on:
//!
//! 1. [`CalendarQueue`] pops entries in exactly the total order the old
//!    `BinaryHeap<Reverse<(at, seq)>>` scheduler produced — raced here on
//!    randomized event trains, including interleaved push/pop, far-future
//!    overflow entries, and pushes behind the serving cursor.
//! 2. [`Reducer`] computes the same residue as naive BigUint division for
//!    every switch ID the shipped topologies actually deploy (topo15 and
//!    rnp28), on limb-boundary route IDs.

use kar_rns::{BigUint, Reducer};
use kar_simnet::{CalendarQueue, SimTime};
use kar_topology::{rnp28, topo15};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One randomized event train: `(at, payload)` pairs. Times cluster into
/// three bands so the calendar sees its three regimes: in-window bulk,
/// far-future overflow (beyond the default 1 ms window), and ties.
fn event_train() -> impl Strategy<Value = Vec<(u64, u32)>> {
    let near = 0u64..2_000_000; // within a couple of window rotations
    let far = 0u64..200_000_000; // deep overflow territory
    let tied = (0u64..50).prop_map(|t| t * 1024); // exact bucket-edge ties
    proptest::collection::vec((prop_oneof![near, far, tied], any::<u32>()), 1..400)
}

/// Reference scheduler: the `BinaryHeap` the engine used before the
/// calendar queue, popping ascending `(at, seq)`.
#[derive(Default)]
struct HeapSched {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl HeapSched {
    fn push(&mut self, at: u64, seq: u64, item: u32) {
        self.heap.push(Reverse((at, seq, item)));
    }
    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

proptest! {
    /// Bulk order: push everything, then drain. The two schedulers must
    /// agree on the complete pop sequence, not just the sort keys — the
    /// payload ride-along catches any entry/slot mix-up.
    #[test]
    fn calendar_drains_in_heap_order(train in event_train()) {
        let mut cal = CalendarQueue::default();
        let mut heap = HeapSched::default();
        for (seq, &(at, item)) in train.iter().enumerate() {
            cal.push(SimTime(at), seq as u64, item);
            heap.push(at, seq as u64, item);
        }
        while let Some((at, seq, item)) = heap.pop() {
            let key = cal.peek_key();
            prop_assert_eq!(key, Some((SimTime(at), seq)));
            let e = cal.pop().expect("calendar has as many entries as the heap");
            prop_assert_eq!((e.at.0, e.seq, e.item), (at, seq, item));
        }
        prop_assert!(cal.is_empty());
        prop_assert_eq!(cal.pop().map(|e| e.seq), None);
    }

    /// Interleaved order: alternate pushes and pops the way the engine
    /// does (each handled event schedules successors). Pops may interleave
    /// arbitrarily with pushes, including pushes at times earlier than the
    /// last pop (the rewind path a driver triggers between `run_until`s).
    #[test]
    fn calendar_interleaves_in_heap_order(
        train in event_train(),
        pop_after in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut cal = CalendarQueue::default();
        let mut heap = HeapSched::default();
        for (seq, &(at, item)) in train.iter().enumerate() {
            cal.push(SimTime(at), seq as u64, item);
            heap.push(at, seq as u64, item);
            if *pop_after.get(seq).unwrap_or(&false) {
                let expect = heap.pop();
                let got = cal.pop().map(|e| (e.at.0, e.seq, e.item));
                prop_assert_eq!(got, expect);
            }
        }
        while let Some(expect) = heap.pop() {
            let got = cal.pop().map(|e| (e.at.0, e.seq, e.item));
            prop_assert_eq!(got, Some(expect));
        }
        prop_assert!(cal.is_empty());
    }

    /// Geometry independence: the pop order is a function of the keys
    /// alone, never of the bucket width or count.
    #[test]
    fn calendar_order_is_geometry_independent(
        train in event_train(),
        shift in 0u32..16,
        nbuckets_log in 0u32..8,
    ) {
        let mut cal = CalendarQueue::with_geometry(shift, 1 << nbuckets_log);
        let mut reference = CalendarQueue::default();
        for (seq, &(at, item)) in train.iter().enumerate() {
            cal.push(SimTime(at), seq as u64, item);
            reference.push(SimTime(at), seq as u64, item);
        }
        while let Some(e) = reference.pop() {
            let got = cal.pop().map(|g| (g.at, g.seq, g.item));
            prop_assert_eq!(got, Some((e.at, e.seq, e.item)));
        }
        prop_assert!(cal.is_empty());
    }

    /// Every switch ID deployed by topo15 and rnp28 reduces limb-boundary
    /// route IDs to exactly the residue naive division computes.
    #[test]
    fn reducer_agrees_with_naive_on_deployed_switch_ids(
        limbs in proptest::collection::vec(any::<u64>(), 0..6),
        boundary_k in 1u32..5,
        below in any::<bool>(),
    ) {
        let boundary = {
            let mut l = vec![0u64; boundary_k as usize];
            l.push(1);
            let b = BigUint::from_limbs(l); // 2^(64k)
            if below { b.sub_big(&BigUint::one()) } else { b }
        };
        let random = BigUint::from_limbs(limbs);
        let t15 = topo15::build();
        let rnp = rnp28::build();
        for id in t15.switch_ids().into_iter().chain(rnp.switch_ids()) {
            let r = Reducer::new(id);
            for route in [&boundary, &random] {
                prop_assert_eq!(r.rem(route), route.rem_u64(id), "{} mod {}", route, id);
            }
        }
    }
}
