//! Property-based tests of KAR's liveness and safety claims on random
//! topologies (DESIGN.md invariants 4–6).

use kar::analysis::{driven_walk, DrivenOutcome};
use kar::{DeflectionTechnique, EncodeRequest, EncodedRoute, KarNetwork, Protection, RouteSpec};
use kar_rns::IdStrategy;
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::{gen, paths, LinkParams, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness (invariant 5): on a random connected topology with full
    /// protection and a single primary-link failure, NIP delivers every
    /// probe — the paper's hitless claim.
    #[test]
    fn nip_full_protection_is_hitless_on_random_graphs(
        n in 6usize..16,
        extra in 3usize..12,
        seed in 0u64..500,
        fail_idx in any::<proptest::sample::Index>(),
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");
        // Fail one core-core link of the primary path (never a host
        // access link — that would disconnect the endpoint).
        let core_links: Vec<_> = paths::links_along(&topo, &primary)
            .unwrap()
            .into_iter()
            .filter(|&l| {
                let link = topo.link(l);
                topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
            })
            .collect();
        prop_assume!(!core_links.is_empty());
        let failed = core_links[fail_idx.index(core_links.len())];
        // The failure must not disconnect src from dst.
        let still_connected = {
            let link = topo.link(failed);
            let mut seen = HashSet::new();
            let mut stack = vec![src];
            seen.insert(src);
            while let Some(x) = stack.pop() {
                for (_, l, peer) in topo.neighbors(x) {
                    if l != failed && seen.insert(peer) {
                        stack.push(peer);
                    }
                }
            }
            let _ = link;
            seen.contains(&dst)
        };
        prop_assume!(still_connected);

        // The paper's hitless claim holds when the protection paths
        // enclose every deflection alternative of the failure. A random
        // graph can contain stub switches that cannot be protected (their
        // only neighbour is the primary path itself — a packet deflected
        // there is stuck, the intrinsic limitation behind Fig. 8), so we
        // assert hitlessness exactly when static coverage is complete.
        let route = kar::protection::encode_with_protection(
            &topo,
            primary.clone(),
            &Protection::AutoFull,
        )
        .unwrap();
        let coverage =
            kar::analysis::failure_coverage(&topo, &route, &primary, failed, dst);
        // `fraction() == 1.0` with an *empty* candidate set means the
        // deflecting switch is a dead end (nothing can be protected) —
        // packets are necessarily lost there, so hitlessness requires at
        // least one driven candidate.
        prop_assume!(!coverage.candidates.is_empty());
        prop_assume!((coverage.fraction() - 1.0).abs() < 1e-9);

        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(seed ^ 0xabcd)
            .ttl(255)
        .build();
        net.install_explicit(primary, &Protection::AutoFull).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, failed);
        for i in 0..40 {
            sim.run_until(SimTime(i * 200_000));
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 300);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        prop_assert_eq!(
            s.delivered, 40,
            "full coverage must be hitless on seed {}: {:?}", seed, s
        );
    }

    /// Safety (driven-deflection tree property): AutoFull protection
    /// segments never create a loop — following the encoded residues
    /// from any protected switch terminates at the destination.
    #[test]
    fn auto_full_protection_is_loop_free(
        n in 6usize..16,
        extra in 3usize..12,
        seed in 0u64..500,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");
        let segments = kar::protection::plan_full(&topo, &primary);
        let route = EncodedRoute::encode(
            &topo,
            &RouteSpec::protected(primary.clone(), segments.clone()),
        )
        .unwrap();
        for (from, _) in &segments {
            let out = driven_walk(&topo, &route, *from, dst, &HashSet::new());
            prop_assert!(
                matches!(out, DrivenOutcome::Reached { .. }),
                "protected switch {from} must drive to {dst}: {out:?}"
            );
        }
    }

    /// Conservation (invariant 6) on random graphs under random batches.
    #[test]
    fn conservation_on_random_graphs(
        n in 4usize..12,
        extra in 0usize..8,
        seed in 0u64..300,
        batch in 1u64..60,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Avp).seed(seed)
        .build();
        net.encode(&EncodeRequest::new(src, dst)).unwrap();
        let mut sim = net.into_sim();
        for i in 0..batch {
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 200);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        prop_assert_eq!(s.injected, s.delivered + s.dropped());
        prop_assert_eq!(sim.in_flight(), 0);
    }

    /// The primary path itself is always loop-free and reaches the
    /// destination (trivial safety of plain modulo forwarding).
    #[test]
    fn primary_route_walks_terminate(
        n in 4usize..14,
        extra in 0usize..10,
        seed in 0u64..300,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary.clone())).unwrap();
        let first_core: Vec<NodeId> = primary
            .iter()
            .copied()
            .filter(|&x| topo.switch_id(x).is_some())
            .take(1)
            .collect();
        for start in first_core {
            let out = driven_walk(&topo, &route, start, dst, &HashSet::new());
            prop_assert!(
                matches!(out, DrivenOutcome::Reached { hops } if hops < n + 2),
                "{out:?}"
            );
        }
    }
}

/// Replays one pinned input of the hitless property (same body as
/// `nip_full_protection_is_hitless_on_random_graphs`, minus the
/// proptest plumbing). `fail_bits` selects the failed link the way
/// `proptest::sample::Index` does: `⌊bits · len / 2⁶⁴⌋`.
///
/// Returns `false` if the input does not qualify (the property would
/// have `prop_assume`d it away); panics if a qualifying input loses a
/// probe.
fn hitless_replay(n: usize, extra: usize, seed: u64, fail_bits: u64) -> bool {
    let topo = gen::random_connected(
        n,
        extra,
        seed,
        IdStrategy::SmallestPrimes,
        LinkParams::default(),
    );
    let src = topo.expect("H0");
    let dst = topo.expect("H1");
    let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");
    let core_links: Vec<_> = paths::links_along(&topo, &primary)
        .unwrap()
        .into_iter()
        .filter(|&l| {
            let link = topo.link(l);
            topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
        })
        .collect();
    if core_links.is_empty() {
        return false;
    }
    let idx = ((fail_bits as u128 * core_links.len() as u128) >> 64) as usize;
    let failed = core_links[idx];
    let still_connected = {
        let mut seen = HashSet::new();
        let mut stack = vec![src];
        seen.insert(src);
        while let Some(x) = stack.pop() {
            for (_, l, peer) in topo.neighbors(x) {
                if l != failed && seen.insert(peer) {
                    stack.push(peer);
                }
            }
        }
        seen.contains(&dst)
    };
    if !still_connected {
        return false;
    }
    let route =
        kar::protection::encode_with_protection(&topo, primary.clone(), &Protection::AutoFull)
            .unwrap();
    let coverage = kar::analysis::failure_coverage(&topo, &route, &primary, failed, dst);
    if coverage.candidates.is_empty() || (coverage.fraction() - 1.0).abs() >= 1e-9 {
        return false;
    }
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(seed ^ 0xabcd)
        .ttl(255)
        .build();
    net.install_explicit(primary, &Protection::AutoFull)
        .unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::ZERO, failed);
    for i in 0..40 {
        sim.run_until(SimTime(i * 200_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 300);
    }
    sim.run_to_quiescence();
    let s = sim.stats();
    assert_eq!(
        s.delivered, 40,
        "full coverage must be hitless for n={n} extra={extra} seed={seed}: {s:?}"
    );
    true
}

/// Pinned regression: the first shrink recorded in
/// `tests/liveness_properties.proptest-regressions` —
/// `n = 8, extra = 3, seed = 324, fail_idx = Index(0)`.
#[test]
fn pinned_regression_n8_seed324_first_link() {
    hitless_replay(8, 3, 324, 0);
}

/// Pinned regression: the second recorded shrink —
/// `n = 12, extra = 3, seed = 11, fail_idx = Index(2⁶³)` (the middle
/// of the qualifying link list).
#[test]
fn pinned_regression_n12_seed11_middle_link() {
    hitless_replay(12, 3, 11, 1 << 63);
}
