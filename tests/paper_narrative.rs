//! Tests that replay the paper's §2/§3 *narratives* packet by packet,
//! using per-packet traces — the closest thing to checking the prose.

use kar::{DeflectionTechnique, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketFate, PacketKind, SimTime};
use kar_topology::{rnp28, topo15};
use std::collections::HashMap;

/// §2 / Fig. 1: with SW5 folded into the route ID and NIP deflection,
/// *all* packets deflected at the failed SW7-SW11 hop go through SW5 —
/// "cause all the packets to be driven through this forwarding path".
#[test]
fn fig1_all_deflected_packets_take_the_protected_branch() {
    // Rebuild Fig. 1's 6-node network.
    use kar_topology::{LinkParams, TopologyBuilder};
    let mut b = TopologyBuilder::new();
    let s = b.edge("S");
    let sw4 = b.core("SW4", 4);
    let sw7 = b.core("SW7", 7);
    let sw5 = b.core("SW5", 5);
    let sw11 = b.core("SW11", 11);
    let d = b.edge("D");
    b.link(s, sw4, LinkParams::default());
    b.link(sw4, sw7, LinkParams::default());
    b.link(sw7, sw5, LinkParams::default());
    b.link(sw7, sw11, LinkParams::default());
    b.link(sw5, sw11, LinkParams::default());
    b.link(sw11, d, LinkParams::default());
    let topo = b.build().unwrap();

    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(4)
        .tracing()
        .build();
    net.install_explicit(
        vec![s, sw4, sw7, sw11, d],
        &Protection::Segments(vec![(sw5, sw11)]),
    )
    .unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW11"));
    for i in 0..50 {
        sim.run_until(SimTime(i * 200_000));
        sim.inject(s, d, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    assert_eq!(sim.stats().delivered, 50);
    for (_, trace) in sim.trace().iter() {
        assert_eq!(trace.fate, PacketFate::Delivered);
        let names: Vec<&str> = trace
            .path
            .iter()
            .map(|&n| topo.node(n).name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["S", "SW4", "SW7", "SW5", "SW11", "D"],
            "every packet must be driven through SW5"
        );
    }
}

/// §3.1: on a SW10-SW7 failure with partial protection, deflected
/// packets split three ways and roughly 2/3 go to SW17 or SW37.
#[test]
fn topo15_two_thirds_go_to_the_uncovered_branch() {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(17)
        .ttl(255)
        .tracing()
        .build();
    net.install_explicit(
        topo15::primary_route(&topo),
        &Protection::Segments(topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION)),
    )
    .unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW10", "SW7"));
    let n = 600u64;
    for i in 0..n {
        sim.run_until(SimTime(i * 200_000));
        sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    // Count first hop after SW10 per packet.
    let sw10 = topo.expect("SW10");
    let mut first_hop: HashMap<&str, u64> = HashMap::new();
    for (_, trace) in sim.trace().iter() {
        if let Some(pos) = trace.path.iter().position(|&x| x == sw10) {
            if let Some(&next) = trace.path.get(pos + 1) {
                *first_hop.entry(topo.node(next).name.as_str()).or_insert(0) += 1;
            }
        }
    }
    let to_sw11 = first_hop.get("SW11").copied().unwrap_or(0);
    let uncovered =
        first_hop.get("SW17").copied().unwrap_or(0) + first_hop.get("SW37").copied().unwrap_or(0);
    let total = to_sw11 + uncovered;
    assert_eq!(total, n, "every packet deflects at SW10: {first_hop:?}");
    let frac = uncovered as f64 / total as f64;
    assert!(
        (frac - 2.0 / 3.0).abs() < 0.07,
        "≈2/3 must go to SW17/SW37, got {frac:.2} ({first_hop:?})"
    );
}

/// §3.2 / Fig. 8: the protection loop. A geometric number of laps:
/// roughly half the packets that return to SW73 take another lap; count
/// SW73 revisits across traces.
#[test]
fn fig8_lap_counts_are_geometric() {
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG8_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG8_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(23)
        .ttl(255)
        .tracing()
        .build();
    net.install_explicit(primary, &protection).unwrap();
    let mut sim = net.into_sim();
    let (a, b) = rnp28::FIG8_FAILURE;
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
    let src = topo.expect("E_BH");
    let dst = topo.expect("E_113");
    let n = 400u64;
    for i in 0..n {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    assert_eq!(sim.stats().delivered, n);
    let sw73 = topo.expect("SW73");
    let mut lap_histogram: HashMap<usize, u64> = HashMap::new();
    for (_, trace) in sim.trace().iter() {
        let visits = trace.path.iter().filter(|&&x| x == sw73).count();
        *lap_histogram.entry(visits).or_insert(0) += 1;
    }
    // Every packet visits SW73 at least once; a substantial fraction
    // revisits (laps); counts decay with lap number.
    let once = lap_histogram.get(&1).copied().unwrap_or(0);
    let twice = lap_histogram.get(&2).copied().unwrap_or(0);
    let thrice = lap_histogram.get(&3).copied().unwrap_or(0);
    assert!(once > 0 && twice > 0, "laps must occur: {lap_histogram:?}");
    assert!(
        once > twice && twice >= thrice,
        "lap counts decay geometrically: {lap_histogram:?}"
    );
    // Packets that escaped immediately went via SW109.
    let sw109 = topo.expect("SW109");
    for (_, trace) in sim.trace().iter() {
        let laps = trace.path.iter().filter(|&&x| x == sw73).count();
        if laps == 1 {
            assert!(
                trace.path.contains(&sw109),
                "single-visit packets must use the SW109 branch: {}",
                trace.pretty(&topo)
            );
        }
    }
}

/// §3.2: the SW41-SW73 failure splits deflected packets 50/50 between
/// SW17 and SW61, both driven (no loss, two path lengths).
#[test]
fn rnp_sw41_failure_is_an_even_coin() {
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG7_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(29)
        .tracing()
        .build();
    net.install_explicit(primary, &protection).unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW41", "SW73"));
    let src = topo.expect("E_BV");
    let dst = topo.expect("E_SP");
    let n = 500u64;
    for i in 0..n {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    assert_eq!(sim.stats().delivered, n);
    let sw41 = topo.expect("SW41");
    let mut split: HashMap<&str, u64> = HashMap::new();
    for (_, trace) in sim.trace().iter() {
        let pos = trace.path.iter().position(|&x| x == sw41).unwrap();
        let next = trace.path[pos + 1];
        *split.entry(topo.node(next).name.as_str()).or_insert(0) += 1;
    }
    assert_eq!(split.len(), 2, "{split:?}");
    let sw17 = split["SW17"] as f64;
    let sw61 = split["SW61"] as f64;
    assert!(
        (sw17 / n as f64 - 0.5).abs() < 0.07,
        "even coin expected: SW17={sw17}, SW61={sw61}"
    );
}
