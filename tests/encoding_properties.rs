//! Property tests spanning `kar`, `kar-rns` and `kar-topology`:
//! header packing, service chains and multipath on random topologies.

use kar::{chain_path, edge_disjoint_paths, EncodedRoute, RouteHeader, RouteSpec};
use kar_rns::IdStrategy;
use kar_topology::{gen, paths, LinkParams, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any route encoded on a random graph packs into its Eq. 9 field
    /// and unpacks to the same route ID.
    #[test]
    fn header_round_trips_on_random_routes(
        n in 3usize..14,
        extra in 0usize..10,
        seed in 0u64..400,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let path = paths::bfs_shortest_path(&topo, topo.expect("H0"), topo.expect("H1"))
            .expect("connected");
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(path)).unwrap();
        let header = RouteHeader::for_route(&route).unwrap();
        prop_assert_eq!(header.unpack(), route.route_id.clone());
        prop_assert!(header.bits() >= route.route_id.bits());
        prop_assert_eq!(header.wire_bytes(), header.bits().div_ceil(8) as usize);
        // One bit fewer must fail whenever the ID actually uses the
        // full width.
        if route.route_id.bits() == header.bits() && header.bits() > 1 {
            prop_assert!(RouteHeader::pack(&route.route_id, header.bits() - 1).is_err());
        }
    }

    /// Service chains on random graphs visit their waypoints in order
    /// and never revisit a switch.
    #[test]
    fn chains_visit_in_order_without_revisits(
        n in 5usize..14,
        extra in 2usize..10,
        seed in 0u64..400,
        w_idx in any::<proptest::sample::Index>(),
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let cores = topo.core_nodes();
        let waypoint = cores[w_idx.index(cores.len())];
        match chain_path(&topo, src, &[waypoint], dst) {
            Ok(path) => {
                prop_assert_eq!(path.first(), Some(&src));
                prop_assert_eq!(path.last(), Some(&dst));
                prop_assert!(path.contains(&waypoint));
                let mut seen = HashSet::new();
                prop_assert!(path.iter().all(|&x| seen.insert(x)), "revisit in {path:?}");
                prop_assert!(paths::links_along(&topo, &path).is_ok());
                // A chained path must still encode (no switch conflicts).
                prop_assert!(EncodedRoute::encode(&topo, &RouteSpec::unprotected(path)).is_ok());
            }
            Err(_) => {
                // Legitimately impossible chains exist (e.g. waypoint
                // behind the source's only switch); nothing to check.
            }
        }
    }

    /// Multipath planning returns genuinely core-link-disjoint paths.
    #[test]
    fn multipath_paths_are_core_disjoint(
        n in 5usize..14,
        extra in 2usize..12,
        seed in 0u64..400,
        k in 1usize..4,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let found = edge_disjoint_paths(&topo, topo.expect("H0"), topo.expect("H1"), k);
        prop_assert!(!found.is_empty());
        prop_assert!(found.len() <= k);
        let mut used = HashSet::new();
        for path in &found {
            prop_assert!(paths::links_along(&topo, path).is_ok());
            for w in path.windows(2) {
                let core = topo.switch_id(w[0]).is_some() && topo.switch_id(w[1]).is_some();
                if core {
                    let l = topo.link_between(w[0], w[1]).unwrap();
                    prop_assert!(used.insert(l), "core link reused");
                }
            }
        }
    }

    /// Fat-trees of any (even) arity are valid KAR networks.
    #[test]
    fn fat_trees_are_valid_kar_networks(k in 1usize..4) {
        let k = k * 2; // even arities 2, 4, 6
        let topo = gen::fat_tree(k, IdStrategy::SmallestPrimes, LinkParams::default());
        prop_assert!(topo.is_connected());
        prop_assert!(kar_rns::pairwise_coprime(&topo.switch_ids()));
        // Any host pair routes and encodes.
        let hosts: Vec<NodeId> = topo.edge_nodes();
        let path = paths::bfs_shortest_path(&topo, hosts[0], hosts[k - 1]).unwrap();
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(path)).unwrap();
        prop_assert!(route.bit_length() > 0);
    }
}
