//! Property tests for §2.3 key growth: a route ID's field width is
//! exactly Eq. 9 — `bits(M − 1)` for `M` the product of the folded
//! switch IDs — and it grows with the path length and with the number
//! of protection segments folded in.

use kar::{protection::encode_with_protection, EncodedRoute, Protection, RouteSpec};
use kar_rns::{route_id_bit_length, BigUint, IdStrategy};
use kar_topology::{gen, paths, LinkParams};
use proptest::prelude::*;

/// Eq. 9 computed from first principles: `bits(Π mᵢ − 1)`.
fn eq9_bits(moduli: &[u64]) -> u32 {
    let mut m = BigUint::one();
    for &x in moduli {
        m = m.mul_u64(x);
    }
    m.sub_big(&BigUint::one()).bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `route_id_bit_length` IS Eq. 9, on the full ID set of any
    /// generated topology.
    #[test]
    fn bit_length_matches_eq9_on_generated_topologies(
        n in 3usize..20,
        extra in 0usize..8,
        seed in 0u64..500,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let ids = topo.switch_ids();
        prop_assert_eq!(route_id_bit_length(&ids), eq9_bits(&ids));
    }

    /// An encoded route's `bit_length` is Eq. 9 over exactly the moduli
    /// it folded (its `pairs`), and routes to hosts farther around a
    /// ring — strictly longer paths — have strictly larger route IDs.
    #[test]
    fn bits_grow_with_path_length(n in 6usize..24) {
        let topo = gen::ring(n, IdStrategy::SmallestPrimes, LinkParams::default());
        let src = topo.expect("H0");
        let mut last_bits = 0u32;
        // H1, H2, … are one more ring hop away each (up to the
        // antipode, after which BFS goes the short way round).
        for k in 1..=(n / 2) {
            let dst = topo.expect(&format!("H{k}"));
            let path = paths::bfs_shortest_path(&topo, src, dst).expect("ring is connected");
            prop_assert_eq!(path.len(), k + 3, "host-switch-…-switch-host");
            let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(path)).unwrap();
            let moduli: Vec<u64> = route.pairs.iter().map(|&(m, _)| m).collect();
            prop_assert_eq!(route.bit_length(), eq9_bits(&moduli));
            prop_assert!(
                route.bit_length() > last_bits,
                "one more switch must widen the ID: {} vs {}",
                route.bit_length(),
                last_bits
            );
            last_bits = route.bit_length();
        }
    }

    /// Folding protection segments only widens the ID: unprotected ≤
    /// every budget ≤ its cap, budgets are monotone in the cap, and full
    /// protection is the widest of all.
    #[test]
    fn bits_grow_with_protection_count(
        n in 6usize..16,
        extra in 2usize..8,
        seed in 0u64..500,
    ) {
        let topo = gen::random_connected(
            n, extra, seed, IdStrategy::SmallestPrimes, LinkParams::default(),
        );
        let src = topo.expect("H0");
        let dst = topo.expect("H1");
        let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");

        let none = encode_with_protection(&topo, primary.clone(), &Protection::None).unwrap();
        let full = encode_with_protection(&topo, primary.clone(), &Protection::AutoFull).unwrap();
        prop_assert!(full.bit_length() >= none.bit_length());
        prop_assert!(full.pairs.len() >= none.pairs.len());

        let mut prev = none.bit_length();
        for headroom in [0u32, 8, 24, 64, 512] {
            let cap = none.bit_length() + headroom;
            let budget = encode_with_protection(
                &topo,
                primary.clone(),
                &Protection::AutoBudget { max_bits: cap },
            )
            .unwrap();
            prop_assert!(budget.bit_length() <= cap, "budget respects its cap");
            prop_assert!(budget.bit_length() >= none.bit_length());
            prop_assert!(
                budget.bit_length() >= prev,
                "a larger budget never sheds protection"
            );
            prop_assert_eq!(
                budget.bit_length(),
                eq9_bits(&budget.pairs.iter().map(|&(m, _)| m).collect::<Vec<_>>())
            );
            prev = budget.bit_length();
        }
        prop_assert!(full.bit_length() >= prev || prev <= none.bit_length() + 512);
    }
}
