//! Cross-crate integration tests: the full KAR stack (RNS encoding →
//! controller → simulator → TCP) driven end to end on both paper
//! topologies.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection, ReroutePolicy};
use kar_simnet::{DropReason, FlowId, PacketKind, SimTime};
use kar_tcp::{BulkFlow, TcpConfig};
use kar_topology::{rnp28, topo15};

#[test]
fn conservation_holds_across_a_failure_storm() {
    // injected == delivered + dropped + in_flight, under churn: two
    // failures, one repair, random deflections, controller reroutes.
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(99)
        .build();
    net.encode(&EncodeRequest::new(as1, as3)).unwrap();
    net.encode(&EncodeRequest::new(as3, as1)).unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::from_millis(5), topo.expect_link("SW7", "SW13"));
    sim.schedule_link_down(SimTime::from_millis(9), topo.expect_link("SW13", "SW29"));
    sim.schedule_link_up(SimTime::from_millis(15), topo.expect_link("SW7", "SW13"));
    for i in 0..500 {
        sim.run_until(SimTime(i * 50_000));
        sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 400);
        sim.inject(as3, as1, FlowId(1), i, PacketKind::Probe, 400);
    }
    sim.run_until(SimTime::from_millis(40));
    let s = sim.stats();
    assert_eq!(
        s.injected,
        s.delivered + s.dropped() + sim.in_flight(),
        "conservation violated: {s:?}, in_flight={}",
        sim.in_flight()
    );
    sim.run_to_quiescence();
    assert_eq!(sim.in_flight(), 0);
    let s = sim.stats();
    assert_eq!(s.injected, s.delivered + s.dropped());
}

#[test]
fn tcp_over_kar_beats_tcp_over_drop_during_failure() {
    // The paper's core quantitative claim, end to end: under an
    // unrepaired failure, NIP + protection sustains TCP while the
    // no-deflection dataplane starves.
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let run = |technique| {
        let mut net = KarNetwork::builder(&topo, technique).seed(5).build();
        net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
            .unwrap();
        net.encode(&EncodeRequest::new(as3, as1).with_protection(Protection::AutoFull))
            .unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::from_secs(1), topo.expect_link("SW13", "SW29"));
        let flow = BulkFlow::install(
            &mut sim,
            as1,
            as3,
            FlowId(1),
            TcpConfig::default(),
            SimTime::from_secs(1),
        );
        sim.run_until(SimTime::from_secs(4));
        flow.mean_mbps(SimTime::from_secs(2), SimTime::from_secs(4))
    };
    let nip = run(DeflectionTechnique::Nip);
    let none = run(DeflectionTechnique::None);
    assert!(none < 1.0, "drop baseline must starve: {none}");
    assert!(nip > 50.0, "NIP must sustain TCP: {nip}");
}

#[test]
fn wrong_edge_packets_are_rescued_by_the_controller() {
    // Hot-potato random walks surface packets at the wrong edge (AS1 or
    // AS2 host ports are legal HP choices); the controller re-encodes
    // them (paper §2.1 second approach). With reroute disabled they die
    // instead.
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let run = |policy| {
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::HotPotato)
            .seed(31)
            .ttl(255)
            .reroute(policy)
            .build();
        net.encode(&EncodeRequest::new(as1, as3)).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW10", "SW7"));
        for i in 0..100 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 400);
        }
        sim.run_to_quiescence();
        (
            sim.stats().delivered,
            sim.stats().dropped_for(DropReason::Misdelivery),
        )
    };
    let (with_controller, _) = run(ReroutePolicy::Recompute {
        latency: SimTime::from_millis(2),
    });
    let (without, misdelivered) = run(ReroutePolicy::Drop);
    assert!(
        with_controller >= 95,
        "controller rescues: {with_controller}"
    );
    assert!(
        without < with_controller,
        "dropping misdeliveries must cost: {without} vs {with_controller}"
    );
    assert!(misdelivered > 0, "some packets must surface at AS2");
}

#[test]
fn fig8_protection_loop_laps_are_visible_in_hops() {
    // The Fig. 8 worst case: each lap around SW73→(SW41|SW71→SW17→SW41)
    // →SW73 adds hops until SW109 is chosen. Delivered probes must show
    // a wide hop distribution starting at primary+1.
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG8_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG8_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(8)
        .ttl(255)
        .build();
    net.install_explicit(primary, &protection).unwrap();
    let mut sim = net.into_sim();
    let (a, b) = rnp28::FIG8_FAILURE;
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
    let src = topo.expect("E_BH");
    let dst = topo.expect("E_113");
    for i in 0..300 {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    let s = sim.stats();
    assert_eq!(s.delivered, 300, "the loop must eventually deliver: {s:?}");
    // Nominal is 4 hops; the shortest rescue (deflect straight to SW109)
    // is 5; laps push the mean well above and the max far beyond.
    assert!(s.mean_hops().unwrap() > 5.0, "mean {:?}", s.mean_hops());
    assert!(s.max_hops >= 8, "max {}", s.max_hops);
}

#[test]
fn rnp_boa_vista_failure_adds_exactly_one_hop() {
    // §3.2: SW7-SW13 failure → deterministic detour SW7→SW11→SW17→(71)→73,
    // "the addition of one more hop without any packet disordering".
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG7_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(3)
        .build();
    net.install_explicit(primary, &protection).unwrap();
    let mut sim = net.into_sim();
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
    let src = topo.expect("E_BV");
    let dst = topo.expect("E_SP");
    for i in 0..50 {
        sim.run_until(SimTime(i * 1_000_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 400);
    }
    sim.run_to_quiescence();
    let s = sim.stats();
    assert_eq!(s.delivered, 50);
    // Every packet takes the same detour: 7→11→17→71→73 = 5 core hops
    // (nominal 4); zero spread.
    assert_eq!(
        Some(s.max_hops as f64),
        s.mean_hops(),
        "deterministic detour"
    );
    assert_eq!(s.max_hops, 5);
    let flow = &s.flows[&FlowId(0)];
    assert_eq!(
        flow.out_of_order, 0,
        "no disordering on a deterministic detour"
    );
}

#[test]
fn seeds_reproduce_and_differ() {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let run = |seed| {
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(seed)
            .build();
        net.encode(&EncodeRequest::new(as1, as3)).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 400);
        }
        sim.run_to_quiescence();
        (sim.stats().total_hops, sim.stats().total_latency_ns)
    };
    assert_eq!(run(1), run(1), "same seed, same outcome");
    assert_ne!(
        run(1),
        run(2),
        "different seeds explore different deflections"
    );
}
