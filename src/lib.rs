//! Umbrella crate re-exporting the KAR reproduction workspace.
pub use kar;
pub use kar_baselines as baselines;
pub use kar_rns as rns;
pub use kar_simnet as simnet;
pub use kar_tcp as tcp;
pub use kar_topology as topology;
