//! Explore route-ID encoding size (paper §2.3): how header bits grow
//! with path length, ID-assignment strategy, and protection budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --example encoding_size
//! ```

use kar::{protection, EncodedRoute, Protection, RouteSpec};
use kar_rns::{route_id_bit_length, IdStrategy};
use kar_topology::{gen, paths, topo15, LinkParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Header bits vs path length (Eq. 9) ==");
    println!(
        "{:<6} {:>15} {:>16} {:>15}",
        "hops", "SmallestPrimes", "SmallestCoprime", "PrimesFrom(100)"
    );
    for n in [2usize, 4, 8, 12, 16, 24, 32] {
        let bits = |strategy| {
            let topo = gen::line(n, strategy, LinkParams::default());
            let path = paths::bfs_shortest_path(&topo, topo.expect("H0"), topo.expect("H1"))
                .expect("line is connected");
            EncodedRoute::encode(&topo, &RouteSpec::unprotected(path))
                .expect("line encodes")
                .bit_length()
        };
        println!(
            "{:<6} {:>15} {:>16} {:>15}",
            n,
            bits(IdStrategy::SmallestPrimes),
            bits(IdStrategy::SmallestCoprime),
            bits(IdStrategy::PrimesFrom(100)),
        );
    }

    println!("\n== Protection budget vs switches folded in (topo15) ==");
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    println!(
        "{:<14} {:>10} {:>10}",
        "budget (bits)", "used bits", "switches"
    );
    for budget in [15u32, 20, 24, 28, 34, 43, 64] {
        let route = protection::encode_with_protection(
            &topo,
            primary.clone(),
            &Protection::AutoBudget { max_bits: budget },
        )?;
        println!(
            "{:<14} {:>10} {:>10}",
            budget,
            route.bit_length(),
            route.pairs.len()
        );
    }
    println!("\nTable 1 of the paper corresponds to budgets 15 / 28 / 43.");
    println!("Bigger IDs (PrimesFrom(100)) waste header bits — the allocator matters.");

    println!("\n== Route IDs beyond native integer width ==");
    // A 40-switch ring walk: ports vary per switch, so the route ID is a
    // genuinely large integer (on a straight line every port is 1 and
    // the CRT solution collapses to R = 1 — a fun property in itself).
    let topo = gen::ring(40, IdStrategy::SmallestPrimes, LinkParams::default());
    let path = paths::bfs_shortest_path(&topo, topo.expect("H0"), topo.expect("H20")).unwrap();
    let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(path))?;
    let digits = route.route_id.to_string();
    println!(
        "a 20-hop ring walk over 40 switch IDs: field {} bits, route ID {} ({} digits)",
        route.bit_length(),
        if digits.len() > 24 {
            format!("{}…", &digits[..24])
        } else {
            digits.clone()
        },
        digits.len(),
    );
    let ids: Vec<u64> = route.pairs.iter().map(|&(id, _)| id).collect();
    assert_eq!(route.bit_length(), route_id_bit_length(&ids));
    Ok(())
}
