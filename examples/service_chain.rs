//! The paper's future-work directions, implemented: service chaining
//! (waypoint routes) and multipath flow spreading, with per-packet path
//! traces proving the behaviour.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_chain
//! ```

use kar::{chain_path, DeflectionTechnique, KarForwarder, KarNetwork, MultipathEdge, Protection};
use kar_simnet::{FlowId, PacketKind, Sim, SimConfig};
use kar_topology::{rnp28, topo15};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Service chaining (§5: "service chaining of virtualized
    // network functions") -------------------------------------------
    println!("== Service chain: AS1 → firewall@SW17 → DPI@SW41 → AS3 ==");
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let waypoints = [topo.expect("SW17"), topo.expect("SW41")];
    let path = chain_path(&topo, as1, &waypoints, as3)?;
    let names: Vec<&str> = path.iter().map(|&n| topo.node(n).name.as_str()).collect();
    println!("planned chain: {}", names.join(" → "));

    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(1)
        .tracing()
        .build();
    let route = net.install_explicit(path, &Protection::None)?;
    println!(
        "encoded into one {}-bit route ID: {}",
        route.bit_length(),
        route.route_id
    );
    let mut sim = net.into_sim();
    sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 800);
    sim.run_to_quiescence();
    let trace = sim.trace().get(0).expect("traced");
    println!("packet actually took: {}\n", trace.pretty(&topo));

    // --- Multipath (§5: "explore the use of multiple paths") --------
    println!("== Multipath over the Fig. 8 redundant branches ==");
    let rnp = rnp28::build();
    let src = rnp.expect("E_BH");
    let dst = rnp.expect("E_113");
    let mut edge = MultipathEdge::new();
    let n = edge.install(&rnp, src, dst, 2, &Protection::None)?;
    println!("installed {n} core-disjoint route IDs Belo Horizonte → SW113");
    let mut sim = Sim::new(
        &rnp,
        Box::new(KarForwarder::new(DeflectionTechnique::None)),
        Box::new(edge),
        SimConfig {
            trace_paths: true,
            ..SimConfig::default()
        },
    );
    for flow in 0..6u32 {
        sim.inject(src, dst, FlowId(flow), 0, PacketKind::Probe, 800);
    }
    sim.run_to_quiescence();
    for (id, trace) in {
        let mut v: Vec<_> = sim.trace().iter().collect();
        v.sort_by_key(|&(id, _)| id);
        v
    } {
        println!("flow {id}: {}", trace.pretty(&rnp));
    }
    println!(
        "\nFlows are spread across the SW107 and SW109 branches, so a single\n\
         failure only disturbs half of them — the redundant-link remedy the\n\
         paper sketches as future work (single route IDs cannot encode both\n\
         branches, the Fig. 8 constraint)."
    );
    Ok(())
}
