//! Quickstart: encode a route, fail a link, watch deflection save the day.
//!
//! Reproduces the paper's §2 worked example end to end:
//!
//! 1. Encode the route {4, 7, 11} × ports {0, 2, 0} → route ID 44.
//! 2. Fold in the protection switch 5 → route ID 660.
//! 3. Build the paper's 15-node network, install a protected route,
//!    fail the primary path, and verify every packet still arrives.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_rns::{crt_encode, crt_extend, residue, RnsBasis};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::topo15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the paper's arithmetic -------------------------------
    println!("== RNS route encoding (paper §2.2) ==");
    let basis = RnsBasis::new(vec![4, 7, 11])?;
    let route_id = crt_encode(&basis, &[0, 2, 0])?;
    println!("switches {{4,7,11}} × ports {{0,2,0}}  →  route ID {route_id}");
    assert_eq!(route_id.to_u64(), Some(44));

    let (protected, extended) = crt_extend(&route_id, &basis, 5, 0)?;
    println!("fold in protection switch 5 (port 0)  →  route ID {protected}");
    assert_eq!(protected.to_u64(), Some(660));
    println!(
        "any switch forwards with one modulo: 660 mod 7 = {}, 660 mod 5 = {}",
        residue(&protected, 7),
        residue(&protected, 5),
    );
    println!(
        "header needs {} bits for this basis (Eq. 9)\n",
        extended.bit_length()
    );

    // --- Part 2: a failure on the 15-node network ---------------------
    println!("== Driven deflection on the 15-node network (paper §3.1) ==");
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");

    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(42)
        .build();
    let route = net
        .encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))?
        .route;
    println!(
        "installed AS1→AS3: switches {:?}, {} header bits",
        route.pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        route.bit_length()
    );

    let mut sim = net.into_sim();
    // Fail the middle of the primary route before any packet is sent.
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
    for i in 0..100 {
        sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
    }
    sim.run_to_quiescence();

    let stats = sim.stats();
    println!(
        "SW7-SW13 failed: delivered {}/{} probes, {} deflections, mean {:.1} hops",
        stats.delivered,
        stats.injected,
        stats.deflections,
        stats.mean_hops().unwrap_or(0.0)
    );
    assert_eq!(
        stats.delivered, 100,
        "driven deflection must save all packets"
    );
    println!("no packet was lost — the paper's hitless property");
    Ok(())
}
