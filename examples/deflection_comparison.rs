//! Compare the three deflection techniques (HP, AVP, NIP) plus the
//! no-deflection baseline under a live TCP transfer across a failure —
//! a miniature of the paper's Fig. 4.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example deflection_comparison
//! ```

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, SimTime};
use kar_tcp::{BulkFlow, TcpConfig};
use kar_topology::topo15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let failed = topo.expect_link("SW7", "SW13");
    let total = SimTime::from_secs(9);

    println!("bulk TCP AS1→AS3, SW7-SW13 fails at t=3s, repairs at t=6s");
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "technique", "before", "during", "after"
    );
    for technique in DeflectionTechnique::ALL {
        let mut net = KarNetwork::builder(&topo, technique).seed(7).build();
        net.encode(
            &EncodeRequest::new(as1, as3).with_protection(Protection::AutoBudget { max_bits: 43 }),
        )?;
        net.encode(&EncodeRequest::new(as3, as1).with_protection(Protection::AutoFull))?;
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::from_secs(3), failed);
        sim.schedule_link_up(SimTime::from_secs(6), failed);
        let flow = BulkFlow::install(
            &mut sim,
            as1,
            as3,
            FlowId(1),
            TcpConfig::default(),
            SimTime::from_secs(1),
        );
        sim.run_until(total);
        let mbps = |a: u64, b: u64| flow.mean_mbps(SimTime::from_secs(a), SimTime::from_secs(b));
        println!(
            "{:<14} {:>7.1}M {:>7.1}M {:>7.1}M",
            technique.label(),
            mbps(1, 3),
            mbps(4, 6),
            mbps(7, 9),
        );
    }
    println!("\nExpected shape: NoDeflection starves during the failure;");
    println!("NIP sustains the most throughput; HP is the worst deflector.");
    Ok(())
}
