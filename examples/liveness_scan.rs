//! Exhaustive scan for counterexamples to the hitless-delivery property
//! (used to pin down liveness regressions; see tests/liveness_properties.rs).
//!
//! Usage: cargo run --release --example liveness_scan [min_seed] [max_seed]

use kar::{DeflectionTechnique, KarNetwork, Protection};
use kar_rns::IdStrategy;
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::{gen, paths, LinkParams};
use std::collections::HashSet;

fn main() {
    let min_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let max_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(min_seed + 60);
    let mut tested = 0u64;
    let mut failures = 0u64;
    for n in 6usize..16 {
        for extra in 3usize..12 {
            for seed in min_seed..max_seed {
                let topo = gen::random_connected(
                    n,
                    extra,
                    seed,
                    IdStrategy::SmallestPrimes,
                    LinkParams::default(),
                );
                let src = topo.expect("H0");
                let dst = topo.expect("H1");
                let primary = paths::bfs_shortest_path(&topo, src, dst).expect("connected");
                let core_links: Vec<_> = paths::links_along(&topo, &primary)
                    .unwrap()
                    .into_iter()
                    .filter(|&l| {
                        let link = topo.link(l);
                        topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
                    })
                    .collect();
                for (li, &failed) in core_links.iter().enumerate() {
                    // The failure must not disconnect src from dst.
                    let mut seen = HashSet::new();
                    let mut stack = vec![src];
                    seen.insert(src);
                    while let Some(x) = stack.pop() {
                        for (_, l, peer) in topo.neighbors(x) {
                            if l != failed && seen.insert(peer) {
                                stack.push(peer);
                            }
                        }
                    }
                    if !seen.contains(&dst) {
                        continue;
                    }
                    let route = kar::protection::encode_with_protection(
                        &topo,
                        primary.clone(),
                        &Protection::AutoFull,
                    )
                    .unwrap();
                    let coverage =
                        kar::analysis::failure_coverage(&topo, &route, &primary, failed, dst);
                    if coverage.candidates.is_empty() || (coverage.fraction() - 1.0).abs() > 1e-9 {
                        continue;
                    }
                    tested += 1;
                    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                        .seed(seed ^ 0xabcd)
                        .ttl(255)
                        .build();
                    net.install_explicit(primary.clone(), &Protection::AutoFull)
                        .unwrap();
                    let mut sim = net.into_sim();
                    sim.schedule_link_down(SimTime::ZERO, failed);
                    for i in 0..40 {
                        sim.run_until(SimTime(i * 200_000));
                        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 300);
                    }
                    sim.run_to_quiescence();
                    let s = sim.stats();
                    if s.delivered != 40 {
                        failures += 1;
                        println!(
                            "FAIL n={n} extra={extra} seed={seed} link_idx={li} \
                             failed={failed:?} delivered={} dropped={} stats={s:?}",
                            s.delivered,
                            s.dropped()
                        );
                    }
                }
            }
        }
    }
    println!("scanned: {tested} qualifying cases, {failures} failures");
}
