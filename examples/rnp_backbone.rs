//! Drive the Brazilian RNP backbone reconstruction: route traffic from
//! Boa Vista to São Paulo with the paper's partial protection, fail
//! links along the route, and report delivery, deflections, hop
//! inflation, and protection coverage — the dataplane view behind the
//! paper's Fig. 6/7.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rnp_backbone
//! ```

use kar::analysis::failure_coverage;
use kar::{DeflectionTechnique, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::rnp28;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = rnp28::build();
    println!(
        "RNP backbone: {} PoPs, {} links (paper Fig. 6)",
        topo.core_nodes().len(),
        topo.link_count() - 3 // minus host access links
    );
    for sw in ["SW7", "SW13", "SW41", "SW73"] {
        println!("  {sw} = {}", rnp28::pop_label(sw).unwrap_or("?"));
    }

    let primary: Vec<_> = rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG7_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );

    // Static coverage analysis first: what fraction of each failure's
    // deflection candidates is driven to the destination?
    let mut probe_net = KarNetwork::new(&topo, DeflectionTechnique::Nip);
    let route = probe_net.install_explicit(primary.clone(), &protection)?;
    println!(
        "\nroute Boa Vista → São Paulo: switches {:?}, {} header bits",
        route.pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        route.bit_length()
    );
    let dst = topo.expect("E_SP");
    println!("\nstatic driven-deflection coverage (paper §3.2 narrative):");
    for (a, b) in rnp28::FIG7_FAILURES {
        let cov = failure_coverage(&topo, &route, &primary, topo.expect_link(a, b), dst);
        println!(
            "  {a}-{b}: {}/{} candidates driven ({:.0}%)",
            cov.driven.len(),
            cov.candidates.len(),
            cov.fraction() * 100.0
        );
    }

    // Then dynamic: probes across each failure.
    println!("\n200 probes per failure location (NIP, partial protection):");
    for (a, b) in rnp28::FIG7_FAILURES {
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(11)
            .ttl(255)
            .build();
        net.install_explicit(primary.clone(), &protection)?;
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
        let src = topo.expect("E_BV");
        for i in 0..200 {
            // Pace the probes so queues don't overflow artificially.
            sim.run_until(SimTime(i * 1_000_000));
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        println!(
            "  {a}-{b}: delivered {}/{} | mean hops {:.1} (nominal 4) | {} deflections",
            s.delivered,
            s.injected,
            s.mean_hops().unwrap_or(0.0),
            s.deflections
        );
    }
    println!("\nSW7-SW13 adds exactly one hop (deterministic detour via SW11/SW17);");
    println!("SW13-SW41 scatters packets five ways; SW41-SW73 splits them two ways.");
    Ok(())
}
