//! # kar-tcp — TCP-Reno transport model for the KAR reproduction
//!
//! The KAR paper quantifies failure reaction by its effect on **iperf TCP
//! throughput**: deflected packets survive a link failure but arrive
//! reordered, and reordering provokes duplicate-ACK fast retransmits that
//! halve the congestion window. This crate supplies that measurement
//! instrument for the simulator in `kar-simnet`:
//!
//! * [`RenoSender`] / [`RenoReceiver`] — a NewReno-flavoured TCP with
//!   slow start, congestion avoidance, triple-dup-ACK fast retransmit,
//!   RTO estimation with backoff, and out-of-order receive buffering;
//! * [`BulkFlow`] — one-call installation of an iperf-like bulk flow;
//! * [`IntervalMeter`] / [`SampleStats`] — the goodput series of Fig. 4
//!   and the mean ± 95% CI aggregation of Figs. 5 and 7;
//! * [`CbrSender`] / [`CbrSink`] — UDP-like constant-bit-rate traffic
//!   with one-way delay and RFC 3550 jitter metering (the paper's
//!   stated "disordering and jitter" goal, without TCP in the way).
//!
//! # Examples
//!
//! See [`BulkFlow::install`] and the crate tests; the full experiment
//! drivers live in `kar-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cbr;
mod flow;
mod meter;
mod reno;

pub use cbr::{CbrSender, CbrSink, JitterStats, SharedJitter};
pub use flow::BulkFlow;
pub use meter::{shared_meter, IntervalMeter, SampleStats, SharedMeter};
pub use reno::{
    CongestionControl, ReceiverStats, RenoReceiver, RenoSender, SenderStats, TcpConfig,
};
