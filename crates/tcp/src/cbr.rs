//! Constant-bit-rate (UDP-like) traffic with delay/jitter metering.
//!
//! The paper's evaluation goal is "the impact of the packet disordering
//! and jitter due to a link failure and the deflection routing" (§3).
//! TCP throughput captures disordering; this module captures the other
//! half: a CBR source (think `iperf -u`) plus a receiver that measures
//! one-way delay, RFC 3550-style smoothed jitter, and loss — without
//! congestion control in the way.

use kar_simnet::{App, FlowId, HostCtx, Packet, PacketKind, SimTime};
use kar_topology::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// A constant-bit-rate sender: `packet_bytes` every `interval`.
pub struct CbrSender {
    dst: NodeId,
    flow: FlowId,
    interval: SimTime,
    packet_bytes: u32,
    sent: u64,
    /// Stop after this many packets (`u64::MAX` = run forever).
    limit: u64,
}

impl CbrSender {
    /// Creates a sender pacing `packet_bytes`-byte datagrams every
    /// `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(dst: NodeId, flow: FlowId, interval: SimTime, packet_bytes: u32) -> Self {
        assert!(interval.as_nanos() > 0, "zero CBR interval");
        CbrSender {
            dst,
            flow,
            interval,
            packet_bytes,
            sent: 0,
            limit: u64::MAX,
        }
    }

    /// Limits the number of datagrams sent.
    pub fn with_limit(mut self, packets: u64) -> Self {
        self.limit = packets;
        self
    }

    /// The rate this sender offers, in bits per second.
    pub fn rate_bps(&self) -> u64 {
        (self.packet_bytes as u128 * 8 * 1_000_000_000 / self.interval.as_nanos() as u128) as u64
    }

    fn send_one(&mut self, ctx: &mut HostCtx<'_>) {
        if self.sent >= self.limit {
            return;
        }
        ctx.send(
            self.dst,
            self.flow,
            self.sent, // sequence number = datagram index
            PacketKind::Probe,
            self.packet_bytes,
        );
        self.sent += 1;
        if self.sent < self.limit {
            ctx.set_timer(self.interval, self.sent);
        }
    }
}

impl App for CbrSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.send_one(ctx);
    }

    fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: &Packet) {}

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _id: u64) {
        self.send_one(ctx);
    }
}

/// Delay/jitter/loss statistics observed by a [`CbrSink`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JitterStats {
    /// Datagrams received.
    pub received: u64,
    /// Datagrams received out of order (sequence below the maximum seen).
    pub reordered: u64,
    /// Mean one-way delay in seconds.
    pub mean_delay_s: f64,
    /// Maximum one-way delay in seconds.
    pub max_delay_s: f64,
    /// RFC 3550 smoothed interarrival jitter, in seconds.
    pub jitter_s: f64,
    /// Highest sequence number seen (for loss estimation against the
    /// sender's count).
    pub max_seq: u64,
}

impl JitterStats {
    /// Loss estimate given how many datagrams the sender emitted.
    pub fn loss_ratio(&self, sent: u64) -> f64 {
        if sent == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / sent as f64
    }
}

/// Shared handle to a sink's statistics.
pub type SharedJitter = Rc<RefCell<JitterStats>>;

/// Receiver side of a CBR flow: measures delay, jitter, reordering.
pub struct CbrSink {
    flow: FlowId,
    stats: SharedJitter,
    last_transit: Option<f64>,
    delay_sum: f64,
}

impl CbrSink {
    /// Creates a sink; read results through the returned shared handle.
    pub fn new(flow: FlowId) -> (Self, SharedJitter) {
        let stats: SharedJitter = Rc::default();
        (
            CbrSink {
                flow,
                stats: stats.clone(),
                last_transit: None,
                delay_sum: 0.0,
            },
            stats,
        )
    }
}

impl App for CbrSink {
    fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: &Packet) {
        if pkt.flow != self.flow {
            return;
        }
        let transit = ctx.now.since(pkt.created).as_nanos() as f64 / 1e9;
        let mut s = self.stats.borrow_mut();
        s.received += 1;
        self.delay_sum += transit;
        s.mean_delay_s = self.delay_sum / s.received as f64;
        s.max_delay_s = s.max_delay_s.max(transit);
        if let Some(prev) = self.last_transit {
            // RFC 3550 §6.4.1: J += (|D| - J) / 16.
            let d = (transit - prev).abs();
            s.jitter_s += (d - s.jitter_s) / 16.0;
        }
        self.last_transit = Some(transit);
        if pkt.seq < s.max_seq {
            s.reordered += 1;
        }
        s.max_seq = s.max_seq.max(pkt.seq);
    }

    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _id: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_rns::{crt_encode, RnsBasis};
    use kar_simnet::{ModuloForwarder, Sim, SimConfig, StaticRoutes};
    use kar_topology::{paths, LinkParams, TopologyBuilder};

    fn line() -> (kar_topology::Topology, StaticRoutes) {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        let p = LinkParams::new(100, 100);
        b.link(s, c, p);
        b.link(c, d, p);
        let topo = b.build().unwrap();
        let mut routes = StaticRoutes::new();
        let path = paths::bfs_shortest_path(&topo, topo.expect("S"), topo.expect("D")).unwrap();
        let pairs = paths::switch_port_pairs(&topo, &path).unwrap();
        let basis = RnsBasis::new(pairs.iter().map(|&(id, _)| id).collect()).unwrap();
        let r = crt_encode(&basis, &pairs.iter().map(|&(_, p)| p).collect::<Vec<_>>()).unwrap();
        routes.insert(topo.expect("S"), topo.expect("D"), r, 0);
        (topo, routes)
    }

    #[test]
    fn steady_line_has_zero_jitter() {
        let (topo, routes) = line();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            SimConfig::default(),
        );
        let tx = CbrSender::new(topo.expect("D"), FlowId(1), SimTime::from_millis(1), 1000)
            .with_limit(100);
        assert_eq!(tx.rate_bps(), 8_000_000);
        sim.add_app(topo.expect("S"), Box::new(tx));
        let (rx, stats) = CbrSink::new(FlowId(1));
        sim.add_app(topo.expect("D"), Box::new(rx));
        sim.run_to_quiescence();
        let s = *stats.borrow();
        assert_eq!(s.received, 100);
        assert_eq!(s.reordered, 0);
        assert_eq!(s.loss_ratio(100), 0.0);
        // Uncontended line: every datagram sees the same delay → no jitter.
        assert!(s.jitter_s < 1e-9, "jitter {}", s.jitter_s);
        assert!(s.mean_delay_s > 0.0);
        assert!((s.max_delay_s - s.mean_delay_s).abs() < 1e-9);
    }

    #[test]
    fn limit_stops_the_sender() {
        let (topo, routes) = line();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            SimConfig::default(),
        );
        let tx =
            CbrSender::new(topo.expect("D"), FlowId(1), SimTime::from_millis(1), 500).with_limit(7);
        sim.add_app(topo.expect("S"), Box::new(tx));
        let (rx, stats) = CbrSink::new(FlowId(1));
        sim.add_app(topo.expect("D"), Box::new(rx));
        sim.run_to_quiescence();
        assert_eq!(stats.borrow().received, 7);
    }
}
