//! A TCP-Reno-style transport model.
//!
//! The paper measures KAR's failure reaction through **iperf TCP
//! throughput**: deflection keeps packets alive but reorders them, and
//! reordering triggers spurious duplicate-ACK fast retransmits that
//! halve the congestion window — the mechanism behind every throughput
//! number in Figs. 4, 5, 7 and 8. This module implements exactly the
//! pieces of Reno/NewReno that produce that behaviour:
//!
//! * slow start and congestion avoidance,
//! * triple-duplicate-ACK fast retransmit and NewReno-style recovery
//!   with partial-ACK retransmission,
//! * RTO with RFC 6298 SRTT/RTTVAR estimation, exponential backoff and
//!   Karn's rule (no RTT samples from retransmitted segments),
//! * a cumulative-ACK receiver with out-of-order buffering that emits an
//!   immediate duplicate ACK per out-of-order segment.
//!
//! Simplifications (documented, irrelevant to the reproduced effects):
//! no delayed ACKs, no SACK, a fixed large receive window, bulk data
//! (the sender always has segments to send, like `iperf -t`).

use crate::meter::SharedMeter;
use kar_simnet::{App, FlowId, HostCtx, Packet, PacketKind, SimTime};
use kar_topology::NodeId;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Congestion-control algorithm for the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionControl {
    /// Classic Reno/NewReno: additive increase of one MSS per RTT.
    #[default]
    Reno,
    /// CUBIC (RFC 8312) — the Linux default since 2.6.19: window grows
    /// as a cubic of time since the last reduction, probing the old
    /// maximum quickly and plateauing around it.
    Cubic,
}

/// Transport parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per data packet).
    pub mss: u32,
    /// Header overhead added to every packet on the wire (IP + TCP + the
    /// KAR route-ID shim).
    pub header_bytes: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u32,
    /// Initial slow-start threshold, in bytes.
    pub init_ssthresh: u64,
    /// Receive window advertised by the peer, in bytes.
    pub rwnd: u64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimTime,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimTime,
    /// Base duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Model Linux's SACK-based adaptive `tcp_reordering`: the receiver
    /// reports its observed reordering displacement and the sender raises
    /// its duplicate-ACK threshold to match (capped at
    /// [`TcpConfig::max_reordering`]). Without this, the persistent
    /// reordering that deflection creates makes NewReno collapse far
    /// below the throughputs the paper measured on real Linux stacks.
    pub adaptive_reordering: bool,
    /// Cap on the adaptive threshold, like Linux's reordering cap.
    pub max_reordering: u32,
    /// Congestion-control algorithm.
    pub congestion: CongestionControl,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            header_bytes: 52,
            init_cwnd_segs: 3,
            init_ssthresh: 1 << 30,
            rwnd: 4 << 20,
            min_rto: SimTime::from_millis(200),
            max_rto: SimTime::from_secs(60),
            dupack_threshold: 3,
            adaptive_reordering: true,
            max_reordering: 300,
            congestion: CongestionControl::Reno,
        }
    }
}

/// Bulk-transfer Reno sender (the `iperf` client side).
///
/// Install it as an [`App`] on the source edge; pair it with a
/// [`RenoReceiver`] on the destination edge.
pub struct RenoSender {
    dst: NodeId,
    flow: FlowId,
    cfg: TcpConfig,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    /// Congestion window in bytes (fractional growth in avoidance).
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// NewReno recovery: `Some(recover)` while in fast recovery.
    recovery: Option<u64>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimTime,
    backoff: u32,
    /// Segment being timed for RTT (Karn's rule): `(seq, sent_at)`.
    timed: Option<(u64, SimTime)>,
    /// Timer generation; stale timer ids are ignored.
    timer_gen: u64,
    /// Sender-side estimate of the path's reordering extent (segments).
    reorder_est: u32,
    /// Counters for assertions and experiment output.
    stats: SenderStats,
    /// Optional mirror of `stats` readable from outside the simulation.
    shared: Option<Rc<RefCell<SenderStats>>>,
    /// Pre-reduction state for DSACK undo: `(cwnd, ssthresh, expiry)` —
    /// a DSACK arriving after the expiry refers to some older duplicate
    /// and must not restore the window.
    undo: Option<(f64, f64, SimTime)>,
    /// Set when a DSACK arrived during the current recovery episode:
    /// the episode is reordering, not loss, so hole retransmission on
    /// partial ACKs is suppressed (the SACK scoreboard equivalent).
    recovery_dsack: bool,
    /// CUBIC: window (segments) before the last reduction.
    cubic_wmax: f64,
    /// CUBIC: start of the current growth epoch.
    cubic_epoch: Option<SimTime>,
}

/// Observable sender counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Spurious reductions undone after a DSACK-style signal.
    pub undos: u64,
    /// Highest cumulatively acknowledged byte.
    pub acked_bytes: u64,
    /// Congestion window at the last snapshot, in bytes.
    pub cwnd_bytes: u64,
    /// Duplicate-ACK threshold in force at the last snapshot.
    pub dupack_threshold: u32,
}

impl RenoSender {
    /// Creates a bulk sender toward `dst` with flow id `flow`.
    pub fn new(dst: NodeId, flow: FlowId, cfg: TcpConfig) -> Self {
        RenoSender {
            dst,
            flow,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (cfg.init_cwnd_segs * cfg.mss) as f64,
            ssthresh: cfg.init_ssthresh as f64,
            dup_acks: 0,
            recovery: None,
            srtt: None,
            rttvar: 0.0,
            rto: SimTime::from_secs(1),
            backoff: 0,
            timed: None,
            timer_gen: 0,
            reorder_est: 0,
            cfg,
            stats: SenderStats::default(),
            shared: None,
            undo: None,
            recovery_dsack: false,
            cubic_wmax: 0.0,
            cubic_epoch: None,
        }
    }

    /// Mirrors the sender's counters into a shared cell that remains
    /// readable after the sender moves into the simulation.
    pub fn with_shared_stats(mut self, cell: Rc<RefCell<SenderStats>>) -> Self {
        self.shared = Some(cell);
        self
    }

    fn publish(&mut self) {
        if let Some(cell) = &self.shared {
            let mut snap = self.stats;
            snap.cwnd_bytes = self.cwnd as u64;
            snap.dupack_threshold = self.dupack_threshold();
            *cell.borrow_mut() = snap;
        }
    }

    /// Sender counters (read after the run).
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// The duplicate-ACK threshold currently in force: the configured
    /// base, raised to the observed reordering extent when adaptive
    /// reordering is on. The extent is estimated sender-side, as Linux
    /// does with SACK: a hole that fills *without* a retransmission
    /// after `d` duplicate ACKs proves a reordering extent of `d`, and a
    /// DSACK-proven spurious fast retransmit escalates the estimate.
    pub fn dupack_threshold(&self) -> u32 {
        if self.cfg.adaptive_reordering {
            self.cfg
                .dupack_threshold
                .max(self.reorder_est + 1)
                .min(self.cfg.max_reordering)
        } else {
            self.cfg.dupack_threshold
        }
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn window(&self) -> u64 {
        (self.cwnd as u64).min(self.cfg.rwnd)
    }

    fn wire_size(&self) -> u32 {
        self.cfg.mss + self.cfg.header_bytes
    }

    fn send_segment(&mut self, ctx: &mut HostCtx<'_>, seq: u64, retransmit: bool) {
        ctx.send(self.dst, self.flow, seq, PacketKind::Data, self.wire_size());
        self.stats.segments_sent += 1;
        if !retransmit && self.timed.is_none() {
            self.timed = Some((seq, ctx.now));
        }
        if retransmit {
            // Karn: a retransmitted sequence number must not be timed.
            if matches!(self.timed, Some((s, _)) if s == seq) {
                self.timed = None;
            }
        }
    }

    fn send_available(&mut self, ctx: &mut HostCtx<'_>) {
        while self.flight() + self.cfg.mss as u64 <= self.window() {
            let seq = self.snd_nxt;
            self.snd_nxt += self.cfg.mss as u64;
            self.send_segment(ctx, seq, false);
        }
    }

    fn arm_rto(&mut self, ctx: &mut HostCtx<'_>) {
        self.timer_gen += 1;
        let shifted =
            SimTime((self.rto.as_nanos() << self.backoff.min(16)).min(self.cfg.max_rto.as_nanos()));
        ctx.set_timer(shifted, self.timer_gen);
    }

    fn update_rtt(&mut self, sample_s: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_s);
                self.rttvar = sample_s / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 1.0 / 8.0;
                const BETA: f64 = 1.0 / 4.0;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - sample_s).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * sample_s);
            }
        }
        let rto_s = self.srtt.unwrap() + (4.0 * self.rttvar).max(0.000_1);
        let rto = SimTime((rto_s * 1e9) as u64);
        self.rto = rto.max(self.cfg.min_rto).min(self.cfg.max_rto);
    }

    /// Congestion-avoidance growth per newly-acked full ACK.
    fn grow_avoidance(&mut self, now: SimTime) {
        let mss = self.cfg.mss as f64;
        match self.cfg.congestion {
            CongestionControl::Reno => {
                self.cwnd += mss * mss / self.cwnd;
            }
            CongestionControl::Cubic => {
                // RFC 8312 with C = 0.4, in segment units.
                const C: f64 = 0.4;
                const BETA: f64 = 0.7;
                let epoch = *self.cubic_epoch.get_or_insert(now);
                if self.cubic_wmax <= 0.0 {
                    self.cubic_wmax = self.cwnd / mss;
                }
                let t = now.since(epoch).as_nanos() as f64 / 1e9;
                let k = (self.cubic_wmax * (1.0 - BETA) / C).cbrt();
                let target_segs = C * (t - k).powi(3) + self.cubic_wmax;
                let target = target_segs * mss;
                if target > self.cwnd {
                    // Approach the cubic target ACK by ACK.
                    self.cwnd += ((target - self.cwnd) / (self.cwnd / mss)).min(mss);
                } else {
                    // TCP-friendly floor: at least Reno's growth.
                    self.cwnd += 0.3 * mss * mss / self.cwnd;
                }
            }
        }
    }

    /// Records a genuine congestion reduction for CUBIC's epoch state.
    fn note_reduction(&mut self, now: SimTime) {
        if self.cfg.congestion == CongestionControl::Cubic {
            self.cubic_wmax = self.cwnd / self.cfg.mss as f64;
            self.cubic_epoch = Some(now);
        }
    }

    fn on_ack(&mut self, ctx: &mut HostCtx<'_>, ack: u64) {
        if ack > self.snd_una {
            // New data acknowledged.
            if let Some((seq, sent_at)) = self.timed {
                if ack > seq {
                    let sample = ctx.now.since(sent_at).as_nanos() as f64 / 1e9;
                    self.update_rtt(sample);
                    self.timed = None;
                }
            }
            self.backoff = 0;
            if self.dup_acks > 0 && self.recovery.is_none() {
                // The hole filled by itself after `dup_acks` duplicate
                // ACKs and no retransmission: pure reordering of that
                // extent (Linux's tcp_update_reordering equivalent).
                self.reorder_est = self.reorder_est.max(self.dup_acks + 1);
            }
            let newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            // After an RTO the sender rewinds snd_nxt (go-back-N); an ACK
            // for data from before the rewind can overtake it.
            self.snd_nxt = self.snd_nxt.max(ack);
            self.stats.acked_bytes = ack;
            match self.recovery {
                Some(recover) if ack < recover => {
                    // NewReno partial ACK. With a DSACK already proving
                    // this episode spurious, the "holes" are reordering
                    // in flight — retransmitting them would only breed
                    // more duplicates, so skip (what a SACK scoreboard
                    // would conclude).
                    if !self.recovery_dsack {
                        self.send_segment(ctx, ack, true);
                        self.cwnd = (self.cwnd - newly_acked as f64).max(self.cfg.mss as f64);
                    }
                }
                Some(_) => {
                    // Full ACK: leave recovery.
                    self.recovery = None;
                    self.dup_acks = 0;
                    self.recovery_dsack = false;
                    self.cwnd = self.ssthresh;
                }
                None => {
                    self.dup_acks = 0;
                    let mss = self.cfg.mss as f64;
                    if self.cwnd < self.ssthresh {
                        self.cwnd += mss; // slow start
                    } else {
                        self.grow_avoidance(ctx.now); // Reno or CUBIC
                    }
                }
            }
            self.arm_rto(ctx);
            self.send_available(ctx);
        } else if ack == self.snd_una && self.flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            let mss = self.cfg.mss as f64;
            match self.recovery {
                Some(_) => {
                    // Window inflation keeps the pipe full in recovery.
                    self.cwnd += mss;
                    self.send_available(ctx);
                }
                None if self.dup_acks == self.dupack_threshold() => {
                    self.stats.fast_retransmits += 1;
                    // Remember the pre-reduction state: if the receiver
                    // reports within roughly one RTO that the
                    // retransmission was a duplicate (DSACK), the
                    // reduction was spurious and is undone.
                    self.undo = Some((self.cwnd, self.ssthresh, ctx.now + self.rto));
                    self.note_reduction(ctx.now);
                    self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * mss);
                    self.cwnd = self.ssthresh + 3.0 * mss;
                    self.recovery = Some(self.snd_nxt);
                    self.send_segment(ctx, self.snd_una, true);
                }
                None => {}
            }
        }
    }
}

impl App for RenoSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.send_available(ctx);
        self.arm_rto(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: &Packet) {
        if pkt.flow != self.flow {
            return;
        }
        if let PacketKind::Ack { ack, dsack, .. } = pkt.kind {
            if dsack {
                if self.recovery.is_some() {
                    self.recovery_dsack = true;
                }
                // The receiver saw a duplicate segment: our last fast
                // retransmit was spurious (the original was merely
                // reordered). Undo the reduction, as Linux's DSACK undo
                // does — but only while the undo state is fresh.
                if let Some((cwnd, ssthresh, expiry)) = self.undo.take() {
                    if ctx.now <= expiry {
                        self.cwnd = self.cwnd.max(cwnd);
                        self.ssthresh = self.ssthresh.max(ssthresh);
                        self.recovery = None;
                        self.dup_acks = 0;
                        self.recovery_dsack = false;
                        self.stats.undos += 1;
                        // The proven-spurious retransmit means the real
                        // reordering extent exceeds the threshold that
                        // fired — escalate (bounded by the flight, the
                        // largest extent that can matter) to adapt in
                        // O(log) steps.
                        let flight_segs = (self.flight() / self.cfg.mss as u64) as u32;
                        self.reorder_est = (self.dupack_threshold() * 2)
                            .max(flight_segs)
                            .min(self.cfg.max_reordering);
                    }
                }
            }
            self.on_ack(ctx, ack);
            self.publish();
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id != self.timer_gen {
            return; // stale timer
        }
        if self.flight() == 0 {
            // Nothing outstanding; keep the timer parked.
            self.arm_rto(ctx);
            return;
        }
        // Retransmission timeout: multiplicative backoff, go-back-N.
        self.stats.timeouts += 1;
        self.undo = None;
        self.note_reduction(ctx.now);
        self.reorder_est /= 2;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.recovery = None;
        self.dup_acks = 0;
        self.recovery_dsack = false;
        self.backoff += 1;
        self.snd_nxt = self.snd_una + self.cfg.mss as u64;
        self.timed = None;
        self.send_segment(ctx, self.snd_una, true);
        self.arm_rto(ctx);
        self.publish();
    }
}

/// Cumulative-ACK receiver with out-of-order buffering (the `iperf`
/// server side). Reports in-order goodput to a [`SharedMeter`].
pub struct RenoReceiver {
    src: NodeId,
    flow: FlowId,
    mss: u32,
    ack_wire_bytes: u32,
    rcv_nxt: u64,
    /// Buffered out-of-order segments: `seq → payload length`.
    ooo: BTreeMap<u64, u32>,
    meter: Option<SharedMeter>,
    /// Running max of observed reordering displacement (segments).
    max_displacement: u16,
    /// Pending DSACK signal: a duplicate segment arrived.
    dsack_pending: bool,
    /// In-order segments since the last out-of-order event (for decay).
    in_order_streak: u32,
    stats: ReceiverStats,
}

/// Observable receiver counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Segments that arrived out of order (buffered or duplicate).
    pub out_of_order: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
    /// In-order bytes delivered to the application.
    pub goodput_bytes: u64,
}

impl RenoReceiver {
    /// Creates a receiver for flow `flow`, ACKing back to `src`.
    pub fn new(src: NodeId, flow: FlowId, cfg: TcpConfig, meter: Option<SharedMeter>) -> Self {
        RenoReceiver {
            src,
            flow,
            mss: cfg.mss,
            ack_wire_bytes: cfg.header_bytes + 12,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            meter,
            max_displacement: 0,
            dsack_pending: false,
            in_order_streak: 0,
            stats: ReceiverStats::default(),
        }
    }

    /// Receiver counters (read after the run).
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The reordering displacement currently advertised to the sender.
    pub fn reported_reorder(&self) -> u16 {
        self.max_displacement
    }

    fn advance(&mut self, now: SimTime) {
        let before = self.rcv_nxt;
        let mut drained: u16 = 0;
        while let Some((&seq, &len)) = self.ooo.first_key_value() {
            if seq > self.rcv_nxt {
                break;
            }
            self.ooo.pop_first();
            drained = drained.saturating_add(1);
            let end = seq + len as u64;
            if end > self.rcv_nxt {
                self.rcv_nxt = end;
            }
        }
        // The hole filler was displaced by every segment it released:
        // the RFC 4737-style reordering extent, which Linux's SACK
        // machinery would observe as its `tcp_reordering` metric.
        self.max_displacement = self.max_displacement.max(drained);
        let delta = self.rcv_nxt - before;
        if delta > 0 {
            self.stats.goodput_bytes += delta;
            if let Some(m) = &self.meter {
                m.borrow_mut().record(now, delta);
            }
        }
    }
}

impl App for RenoReceiver {
    fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: &Packet) {
        if pkt.flow != self.flow || !matches!(pkt.kind, PacketKind::Data) {
            return;
        }
        self.stats.segments_received += 1;
        let len = self.mss; // bulk flows use full-MSS segments
        if pkt.seq == self.rcv_nxt {
            self.rcv_nxt += len as u64;
            self.stats.goodput_bytes += len as u64;
            if let Some(m) = &self.meter {
                m.borrow_mut().record(ctx.now, len as u64);
            }
            if self.ooo.is_empty() {
                // Pure in-order progress: decay the reordering metric
                // after a long clean streak (Linux decays its metric on
                // timeouts and idle periods).
                self.in_order_streak += 1;
                if self.in_order_streak >= 2_000 {
                    self.max_displacement /= 2;
                    self.in_order_streak = 0;
                }
            } else {
                self.in_order_streak = 0;
            }
            self.advance(ctx.now);
        } else if pkt.seq > self.rcv_nxt {
            self.stats.out_of_order += 1;
            self.in_order_streak = 0;
            self.ooo.insert(pkt.seq, len);
        } else {
            // Duplicate of already-delivered data: both the original and
            // a (spurious) retransmission arrived. Report it like a
            // DSACK block.
            self.stats.out_of_order += 1;
            self.dsack_pending = true;
        }
        // Immediate cumulative ACK (duplicate when out of order).
        ctx.send(
            self.src,
            self.flow,
            0,
            PacketKind::Ack {
                ack: self.rcv_nxt,
                reorder: self.max_displacement,
                dsack: std::mem::take(&mut self.dsack_pending),
            },
            self.ack_wire_bytes,
        );
        self.stats.acks_sent += 1;
    }

    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _id: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_rns::{crt_encode, RnsBasis};
    use kar_simnet::{ModuloForwarder, Sim, SimConfig, SimTime, StaticRoutes};
    use kar_topology::{paths, LinkParams, Topology, TopologyBuilder};

    /// S — C3 — C5 — D line with symmetric static routes.
    fn line(rate_mbps: u64) -> (Topology, StaticRoutes) {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c3 = b.core("C3", 3);
        let c5 = b.core("C5", 5);
        let d = b.edge("D");
        let p = LinkParams::new(rate_mbps, 100);
        b.link(s, c3, p);
        b.link(c3, c5, p);
        b.link(c5, d, p);
        let topo = b.build().unwrap();
        let mut routes = StaticRoutes::new();
        for (src, dst) in [("S", "D"), ("D", "S")] {
            let path = paths::bfs_shortest_path(&topo, topo.expect(src), topo.expect(dst)).unwrap();
            let pairs = paths::switch_port_pairs(&topo, &path).unwrap();
            let basis = RnsBasis::new(pairs.iter().map(|&(id, _)| id).collect()).unwrap();
            let ports: Vec<u64> = pairs.iter().map(|&(_, p)| p).collect();
            let r = crt_encode(&basis, &ports).unwrap();
            routes.insert(topo.expect(src), topo.expect(dst), r, 0);
        }
        (topo, routes)
    }

    fn run_bulk(rate_mbps: u64, secs: u64, fail_window: Option<(u64, u64)>) -> (f64, Vec<f64>) {
        let (topo, routes) = line(rate_mbps);
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            SimConfig::default(),
        );
        let s = topo.expect("S");
        let d = topo.expect("D");
        let meter = crate::meter::shared_meter(SimTime::from_secs(1));
        let cfg = TcpConfig::default();
        sim.add_app(s, Box::new(RenoSender::new(d, FlowId(1), cfg)));
        sim.add_app(
            d,
            Box::new(RenoReceiver::new(s, FlowId(1), cfg, Some(meter.clone()))),
        );
        if let Some((down, up)) = fail_window {
            let l = topo.expect_link("C3", "C5");
            sim.schedule_link_down(SimTime::from_secs(down), l);
            sim.schedule_link_up(SimTime::from_secs(up), l);
        }
        sim.run_until(SimTime::from_secs(secs));
        let m = meter.borrow();
        (
            m.mean_mbps(SimTime::ZERO, SimTime::from_secs(secs)),
            m.series_mbps(SimTime::from_secs(secs)),
        )
    }

    #[test]
    fn bulk_flow_saturates_the_line() {
        let (mean, series) = run_bulk(50, 10, None);
        // Goodput should reach ≳85% of the 50 Mbit/s line rate
        // (header overhead ≈ 3.5%, slow start in the first second).
        assert!(mean > 42.0, "mean {mean} Mbps too low");
        assert!(series[9] > 44.0, "steady-state {series:?}");
        // Never exceeds the physical rate.
        assert!(series.iter().all(|&s| s <= 50.0 + 1e-6), "{series:?}");
    }

    #[test]
    fn blackout_stalls_then_recovers() {
        let (_, series) = run_bulk(50, 14, Some((4, 8)));
        // Throughput collapses during the outage …
        assert!(series[5] < 1.0, "during outage: {series:?}");
        assert!(series[6] < 1.0, "during outage: {series:?}");
        // … and recovers after repair (allow a couple of RTO backoffs).
        let post: f64 = series[10..14].iter().sum::<f64>() / 4.0;
        assert!(post > 30.0, "after repair: {series:?}");
    }

    #[test]
    fn slow_start_doubles_cwnd() {
        let mut sender = RenoSender::new(NodeId(1), FlowId(0), TcpConfig::default());
        let mss = TcpConfig::default().mss as u64;
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        sender.on_start(&mut ctx);
        let initial = sender.cwnd();
        assert_eq!(initial, 3 * mss);
        // ACK the three initial segments one by one: cwnd += mss each.
        for i in 1..=3 {
            sender.on_ack(&mut ctx, i * mss);
        }
        assert_eq!(sender.cwnd(), 6 * mss);
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let mut sender = RenoSender::new(NodeId(1), FlowId(0), TcpConfig::default());
        let cfg = TcpConfig::default();
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        sender.on_start(&mut ctx);
        // Grow the window a bit so there is flight to halve.
        for i in 1..=3u64 {
            sender.on_ack(&mut ctx, i * cfg.mss as u64);
        }
        let before = sender.stats().fast_retransmits;
        let una = 3 * cfg.mss as u64;
        for _ in 0..3 {
            sender.on_ack(&mut ctx, una);
        }
        assert_eq!(sender.stats().fast_retransmits, before + 1);
        // In recovery now; further dup ACKs inflate, not re-trigger.
        sender.on_ack(&mut ctx, una);
        assert_eq!(sender.stats().fast_retransmits, before + 1);
    }

    #[test]
    fn receiver_buffers_and_dupacks() {
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut rx = RenoReceiver::new(NodeId(0), FlowId(1), cfg, None);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(1), SimTime::ZERO, &mut actions);
        let data = |seq: u64| Packet {
            id: 0,
            flow: FlowId(1),
            seq,
            kind: PacketKind::Data,
            size_bytes: cfg.mss + cfg.header_bytes,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        rx.on_packet(&mut ctx, &data(0));
        rx.on_packet(&mut ctx, &data(2 * mss)); // hole at mss
        rx.on_packet(&mut ctx, &data(3 * mss));
        assert_eq!(rx.stats().out_of_order, 2);
        assert_eq!(rx.rcv_nxt, mss);
        rx.on_packet(&mut ctx, &data(mss)); // fill the hole
        assert_eq!(rx.rcv_nxt, 4 * mss);
        assert_eq!(rx.stats().goodput_bytes, 4 * mss);
        assert_eq!(rx.stats().acks_sent, 4);
        // The two middle ACKs were duplicates of ack=mss.
        let acks: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                kar_simnet::AppAction::Send {
                    kind: PacketKind::Ack { ack, .. },
                    ..
                } => Some(*ack),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![mss, mss, mss, 4 * mss]);
    }

    #[test]
    fn natural_hole_fill_raises_dupack_threshold() {
        // Three dup ACKs then a cumulative ACK *without* a retransmit
        // having fired (threshold raised first) must raise the
        // reordering estimate — the sender-side tcp_update_reordering.
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut tx = RenoSender::new(NodeId(1), FlowId(0), cfg);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        tx.on_start(&mut ctx);
        for i in 1..=3u64 {
            tx.on_ack(&mut ctx, i * mss);
        }
        assert_eq!(tx.dupack_threshold(), 3);
        // Two dup ACKs (below threshold), then the hole fills naturally.
        tx.on_ack(&mut ctx, 3 * mss);
        tx.on_ack(&mut ctx, 3 * mss);
        tx.on_ack(&mut ctx, 5 * mss);
        assert_eq!(tx.stats().fast_retransmits, 0);
        assert!(tx.dupack_threshold() > 3, "threshold adapts upward");
    }

    #[test]
    fn dsack_undo_restores_cwnd() {
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut tx = RenoSender::new(NodeId(1), FlowId(0), cfg);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        tx.on_start(&mut ctx);
        for i in 1..=6u64 {
            tx.on_ack(&mut ctx, i * mss);
        }
        let before = tx.cwnd();
        // Trigger a (spurious) fast retransmit with three dup ACKs.
        for _ in 0..3 {
            tx.on_ack(&mut ctx, 6 * mss);
        }
        assert_eq!(tx.stats().fast_retransmits, 1);
        assert!(tx.cwnd() < before, "reduction applied");
        // The DSACK arrives: receiver saw the duplicate.
        let dsack_pkt = Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Ack {
                ack: 6 * mss,
                reorder: 0,
                dsack: true,
            },
            size_bytes: 64,
            src: NodeId(1),
            dst: NodeId(0),
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        tx.on_packet(&mut ctx, &dsack_pkt);
        assert_eq!(tx.stats().undos, 1);
        assert!(
            tx.cwnd() >= before,
            "reduction undone: {} vs {before}",
            tx.cwnd()
        );
        assert!(tx.dupack_threshold() > 3, "undo escalates the estimate");
    }

    #[test]
    fn stale_dsack_does_not_undo() {
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut tx = RenoSender::new(NodeId(1), FlowId(0), cfg);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        tx.on_start(&mut ctx);
        for i in 1..=6u64 {
            tx.on_ack(&mut ctx, i * mss);
        }
        for _ in 0..3 {
            tx.on_ack(&mut ctx, 6 * mss);
        }
        assert_eq!(tx.stats().fast_retransmits, 1);
        // The DSACK arrives *after* the undo window expired.
        let mut late = Vec::new();
        let mut late_ctx = HostCtx::new(NodeId(0), SimTime::from_secs(120), &mut late);
        let dsack_pkt = Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Ack {
                ack: 6 * mss,
                reorder: 0,
                dsack: true,
            },
            size_bytes: 64,
            src: NodeId(1),
            dst: NodeId(0),
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        tx.on_packet(&mut late_ctx, &dsack_pkt);
        assert_eq!(tx.stats().undos, 0, "expired undo must not fire");
    }

    #[test]
    fn fixed_threshold_when_adaptation_disabled() {
        let cfg = TcpConfig {
            adaptive_reordering: false,
            ..TcpConfig::default()
        };
        let mss = cfg.mss as u64;
        let mut tx = RenoSender::new(NodeId(1), FlowId(0), cfg);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        tx.on_start(&mut ctx);
        for i in 1..=3u64 {
            tx.on_ack(&mut ctx, i * mss);
        }
        tx.on_ack(&mut ctx, 3 * mss);
        tx.on_ack(&mut ctx, 3 * mss);
        tx.on_ack(&mut ctx, 5 * mss);
        assert_eq!(tx.dupack_threshold(), 3, "classic Reno threshold");
    }

    #[test]
    fn receiver_reports_dsack_once() {
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut rx = RenoReceiver::new(NodeId(0), FlowId(1), cfg, None);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(1), SimTime::ZERO, &mut actions);
        let data = |seq: u64| Packet {
            id: 0,
            flow: FlowId(1),
            seq,
            kind: PacketKind::Data,
            size_bytes: cfg.mss + cfg.header_bytes,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        rx.on_packet(&mut ctx, &data(0));
        rx.on_packet(&mut ctx, &data(0)); // duplicate → DSACK
        rx.on_packet(&mut ctx, &data(mss));
        let dsacks: Vec<bool> = actions
            .iter()
            .filter_map(|a| match a {
                kar_simnet::AppAction::Send {
                    kind: PacketKind::Ack { dsack, .. },
                    ..
                } => Some(*dsack),
                _ => None,
            })
            .collect();
        assert_eq!(dsacks, vec![false, true, false], "one-shot DSACK flag");
    }

    #[test]
    fn receiver_displacement_metric_tracks_drains() {
        let cfg = TcpConfig::default();
        let mss = cfg.mss as u64;
        let mut rx = RenoReceiver::new(NodeId(0), FlowId(1), cfg, None);
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(1), SimTime::ZERO, &mut actions);
        let data = |seq: u64| Packet {
            id: 0,
            flow: FlowId(1),
            seq,
            kind: PacketKind::Data,
            size_bytes: cfg.mss + cfg.header_bytes,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        // Segments 1..=4 arrive before segment 0: displacement 4.
        for seq in 1..=4u64 {
            rx.on_packet(&mut ctx, &data(seq * mss));
        }
        assert_eq!(rx.reported_reorder(), 0);
        rx.on_packet(&mut ctx, &data(0));
        assert_eq!(rx.reported_reorder(), 4);
    }

    #[test]
    fn cubic_outgrows_reno_after_a_deep_epoch() {
        // After a reduction, CUBIC races back toward W_max while Reno
        // adds one MSS per RTT.
        let mss = TcpConfig::default().mss as f64;
        let grow = |cc: CongestionControl| -> f64 {
            let cfg = TcpConfig {
                congestion: cc,
                init_ssthresh: 1, // force avoidance immediately
                ..TcpConfig::default()
            };
            let mut tx = RenoSender::new(NodeId(1), FlowId(0), cfg);
            tx.cwnd = 50.0 * mss;
            tx.ssthresh = 50.0 * mss;
            // Simulate a reduction from 100 segments at t = 0.
            tx.cubic_wmax = 100.0;
            tx.cubic_epoch = Some(SimTime::ZERO);
            // 2000 ACKs spread over two seconds.
            for i in 0..2000u64 {
                tx.grow_avoidance(SimTime::from_millis(i));
            }
            tx.cwnd / mss
        };
        let cubic = grow(CongestionControl::Cubic);
        let reno = grow(CongestionControl::Reno);
        assert!(
            cubic > reno * 1.1,
            "cubic {cubic:.1} segs should outgrow reno {reno:.1} segs"
        );
        // CUBIC plateaus near W_max rather than blowing past it instantly.
        assert!(cubic > 90.0 && cubic < 160.0, "cubic {cubic:.1}");
    }

    #[test]
    fn cubic_end_to_end_saturates() {
        use kar_rns::{crt_encode, RnsBasis};
        use kar_simnet::{ModuloForwarder, Sim, SimConfig, StaticRoutes};
        use kar_topology::{paths, LinkParams, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        let p = LinkParams::new(50, 100);
        b.link(s, c, p);
        b.link(c, d, p);
        let topo = b.build().unwrap();
        let mut routes = StaticRoutes::new();
        for (a, z) in [("S", "D"), ("D", "S")] {
            let path = paths::bfs_shortest_path(&topo, topo.expect(a), topo.expect(z)).unwrap();
            let pairs = paths::switch_port_pairs(&topo, &path).unwrap();
            let basis = RnsBasis::new(pairs.iter().map(|&(id, _)| id).collect()).unwrap();
            let r =
                crt_encode(&basis, &pairs.iter().map(|&(_, pt)| pt).collect::<Vec<_>>()).unwrap();
            routes.insert(topo.expect(a), topo.expect(z), r, 0);
        }
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            SimConfig::default(),
        );
        let cfg = TcpConfig {
            congestion: CongestionControl::Cubic,
            ..TcpConfig::default()
        };
        let meter = crate::meter::shared_meter(SimTime::from_secs(1));
        sim.add_app(
            topo.expect("S"),
            Box::new(RenoSender::new(topo.expect("D"), FlowId(1), cfg)),
        );
        sim.add_app(
            topo.expect("D"),
            Box::new(RenoReceiver::new(
                topo.expect("S"),
                FlowId(1),
                cfg,
                Some(meter.clone()),
            )),
        );
        sim.run_until(SimTime::from_secs(6));
        let mean = meter
            .borrow()
            .mean_mbps(SimTime::from_secs(1), SimTime::from_secs(6));
        assert!(mean > 42.0, "CUBIC saturates the 50 Mbit/s line: {mean}");
    }

    #[test]
    fn rto_backoff_caps() {
        let mut sender = RenoSender::new(NodeId(1), FlowId(0), TcpConfig::default());
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        sender.on_start(&mut ctx);
        for _ in 0..40 {
            let gen = sender.timer_gen;
            sender.on_timer(&mut ctx, gen);
        }
        assert_eq!(sender.stats().timeouts, 40);
        // All timers were scheduled at most max_rto in the future.
        let max = TcpConfig::default().max_rto;
        for a in &actions {
            if let kar_simnet::AppAction::Timer { at, .. } = a {
                assert!(*at <= max + SimTime::ZERO || at.as_nanos() <= max.as_nanos());
            }
        }
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut sender = RenoSender::new(NodeId(1), FlowId(0), TcpConfig::default());
        let mut actions = Vec::new();
        let mut ctx = HostCtx::new(NodeId(0), SimTime::ZERO, &mut actions);
        sender.on_start(&mut ctx);
        sender.on_timer(&mut ctx, 0); // generation 0 is stale (gen is 1)
        assert_eq!(sender.stats().timeouts, 0);
    }
}
