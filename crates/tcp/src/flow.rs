//! Convenience wiring of an iperf-like bulk TCP flow onto a simulation.

use crate::meter::{shared_meter, SharedMeter};
use crate::reno::{RenoReceiver, RenoSender, TcpConfig};
use kar_simnet::{FlowId, Sim, SimTime};
use kar_topology::NodeId;

/// A bulk TCP flow installed on a simulation: sender at `src`, receiver
/// (with goodput meter) at `dst` — the equivalent of one `iperf`
/// client/server pair in the paper's testbed.
#[derive(Debug)]
pub struct BulkFlow {
    /// Flow id shared by sender and receiver.
    pub flow: FlowId,
    /// Source edge node.
    pub src: NodeId,
    /// Destination edge node.
    pub dst: NodeId,
    /// The receiver's goodput meter.
    pub meter: SharedMeter,
}

impl BulkFlow {
    /// Installs sender and receiver apps with a meter of `bin` width.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is a core switch (apps live on edges).
    pub fn install(
        sim: &mut Sim<'_>,
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        cfg: TcpConfig,
        bin: SimTime,
    ) -> BulkFlow {
        let meter = shared_meter(bin);
        sim.add_app(src, Box::new(RenoSender::new(dst, flow, cfg)));
        sim.add_app(
            dst,
            Box::new(RenoReceiver::new(src, flow, cfg, Some(meter.clone()))),
        );
        BulkFlow {
            flow,
            src,
            dst,
            meter,
        }
    }

    /// Mean goodput in Mbit/s over `[from, to)`.
    pub fn mean_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        self.meter.borrow().mean_mbps(from, to)
    }

    /// Per-bin goodput series in Mbit/s up to `until`.
    pub fn series_mbps(&self, until: SimTime) -> Vec<f64> {
        self.meter.borrow().series_mbps(until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_rns::{crt_encode, RnsBasis};
    use kar_simnet::{ModuloForwarder, SimConfig, StaticRoutes};
    use kar_topology::{paths, LinkParams, TopologyBuilder};

    #[test]
    fn install_and_measure() {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        let p = LinkParams::new(20, 100);
        b.link(s, c, p);
        b.link(c, d, p);
        let topo = b.build().unwrap();
        let mut routes = StaticRoutes::new();
        for (a, z) in [("S", "D"), ("D", "S")] {
            let path = paths::bfs_shortest_path(&topo, topo.expect(a), topo.expect(z)).unwrap();
            let pairs = paths::switch_port_pairs(&topo, &path).unwrap();
            let basis = RnsBasis::new(pairs.iter().map(|&(id, _)| id).collect()).unwrap();
            let r = crt_encode(&basis, &pairs.iter().map(|&(_, p)| p).collect::<Vec<_>>()).unwrap();
            routes.insert(topo.expect(a), topo.expect(z), r, 0);
        }
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            SimConfig::default(),
        );
        let flow = BulkFlow::install(
            &mut sim,
            topo.expect("S"),
            topo.expect("D"),
            FlowId(3),
            TcpConfig::default(),
            SimTime::from_secs(1),
        );
        sim.run_until(SimTime::from_secs(5));
        let mean = flow.mean_mbps(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!(mean > 16.0 && mean <= 20.0, "mean {mean}");
        assert_eq!(flow.series_mbps(SimTime::from_secs(5)).len(), 5);
    }
}
