//! Goodput metering and the statistics the paper reports (interval
//! throughput series for Fig. 4, mean ± 95% confidence interval for
//! Figs. 5 and 7).

use kar_simnet::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Accumulates delivered (in-order) bytes into fixed-width time bins —
/// the iperf-interval-report equivalent.
#[derive(Debug, Clone)]
pub struct IntervalMeter {
    bin: SimTime,
    bins: Vec<u64>,
    total: u64,
    last_event: SimTime,
}

impl IntervalMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: SimTime) -> Self {
        assert!(bin.as_nanos() > 0, "zero bin width");
        IntervalMeter {
            bin,
            bins: Vec::new(),
            total: 0,
            last_event: SimTime::ZERO,
        }
    }

    /// Records `bytes` of new in-order goodput at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        let idx = (now.as_nanos() / self.bin.as_nanos()) as usize;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
        self.total += bytes;
        self.last_event = self.last_event.max(now);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Time of the last recorded delivery.
    pub fn last_event(&self) -> SimTime {
        self.last_event
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimTime {
        self.bin
    }

    /// Goodput of each bin in Mbit/s, padded with zeros up to `until`.
    pub fn series_mbps(&self, until: SimTime) -> Vec<f64> {
        let n = (until.as_nanos() / self.bin.as_nanos()) as usize;
        let secs = self.bin.as_secs_f64();
        (0..n.max(self.bins.len()))
            .map(|i| {
                let b = self.bins.get(i).copied().unwrap_or(0);
                b as f64 * 8.0 / 1e6 / secs
            })
            .collect()
    }

    /// Mean goodput in Mbit/s over the window `[from, to)`.
    pub fn mean_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty measurement window");
        let lo = (from.as_nanos() / self.bin.as_nanos()) as usize;
        let hi = (to.as_nanos() / self.bin.as_nanos()) as usize;
        let bytes: u64 = (lo..hi)
            .map(|i| self.bins.get(i).copied().unwrap_or(0))
            .sum();
        bytes as f64 * 8.0 / 1e6 / (to - from).as_secs_f64()
    }
}

/// A shareable meter handle: the receiver app writes, the experiment
/// reads after the run (the simulator is single-threaded, so `Rc` is the
/// right tool).
pub type SharedMeter = Rc<RefCell<IntervalMeter>>;

/// Creates a [`SharedMeter`] with the given bin width.
pub fn shared_meter(bin: SimTime) -> SharedMeter {
    Rc::new(RefCell::new(IntervalMeter::new(bin)))
}

/// Mean, standard deviation and 95% confidence half-width of a sample,
/// as used for the paper's 30-repetition iperf experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval
    /// (`t · s/√n`, with the t-quantile for the sample size).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl SampleStats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return SampleStats {
                mean,
                stddev: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let t = t_quantile_975(n - 1);
        SampleStats {
            mean,
            stddev,
            ci95: t * stddev / (n as f64).sqrt(),
            n,
        }
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom
/// (tabulated for small df, asymptotic 1.96 beyond).
fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_by_time() {
        let mut m = IntervalMeter::new(SimTime::from_secs(1));
        m.record(SimTime::from_millis(100), 1000);
        m.record(SimTime::from_millis(900), 500);
        m.record(SimTime::from_millis(1100), 2000);
        assert_eq!(m.total_bytes(), 3500);
        let series = m.series_mbps(SimTime::from_secs(3));
        assert_eq!(series.len(), 3);
        assert!((series[0] - 1500.0 * 8.0 / 1e6).abs() < 1e-12);
        assert!((series[1] - 2000.0 * 8.0 / 1e6).abs() < 1e-12);
        assert_eq!(series[2], 0.0);
    }

    #[test]
    fn mean_over_window() {
        let mut m = IntervalMeter::new(SimTime::from_secs(1));
        for s in 0..10u64 {
            m.record(SimTime::from_millis(s * 1000 + 500), 1_000_000);
        }
        // 1 MB/s = 8 Mbit/s everywhere.
        assert!((m.mean_mbps(SimTime::ZERO, SimTime::from_secs(10)) - 8.0).abs() < 1e-9);
        assert!((m.mean_mbps(SimTime::from_secs(2), SimTime::from_secs(4)) - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty measurement window")]
    fn empty_window_panics() {
        let m = IntervalMeter::new(SimTime::from_secs(1));
        let _ = m.mean_mbps(SimTime::from_secs(1), SimTime::from_secs(1));
    }

    #[test]
    fn sample_stats_basic() {
        let s = SampleStats::from_samples(&[10.0, 12.0, 8.0, 10.0]);
        assert!((s.mean - 10.0).abs() < 1e-12);
        assert!(s.stddev > 1.6 && s.stddev < 1.7);
        // df = 3 → t = 3.182.
        assert!((s.ci95 - 3.182 * s.stddev / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sample_stats_singleton_and_thirty() {
        let one = SampleStats::from_samples(&[5.0]);
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.ci95, 0.0);
        let thirty: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let s = SampleStats::from_samples(&thirty);
        assert_eq!(s.n, 30);
        // df = 29 → t = 2.045 (the paper's 30-run setting).
        assert!((s.ci95 - 2.045 * s.stddev / 30f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn shared_meter_is_shared() {
        let m = shared_meter(SimTime::from_secs(1));
        let m2 = m.clone();
        m.borrow_mut().record(SimTime::from_millis(10), 42);
        assert_eq!(m2.borrow().total_bytes(), 42);
    }
}
