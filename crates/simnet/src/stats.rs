//! Delivery, drop, reordering and hop statistics collected by the engine.

use crate::forwarder::DropReason;
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::SimTime;
use kar_topology::LinkId;
use std::collections::{BTreeMap, HashMap};

/// Per-flow delivery accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Data/probe packets delivered to the destination edge.
    pub delivered_pkts: u64,
    /// Sum of their on-wire sizes.
    pub delivered_bytes: u64,
    /// Data packets that arrived with a sequence number below one already
    /// seen — the network-level reordering the paper's TCP throughput
    /// degradations stem from.
    pub out_of_order: u64,
    /// Highest data sequence number delivered so far.
    pub max_seq: Option<u64>,
}

/// Whole-simulation statistics.
///
/// Implements `PartialEq` so determinism tests can assert that two runs
/// of the same seeded scenario are byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Bytes that finished serializing on each link (both directions),
    /// indexed by `LinkId` — the utilization view that exposes e.g. the
    /// load multiplication of Fig. 8's protection loop.
    pub link_bytes: Vec<u64>,
    /// Packets accepted into the network at an ingress edge.
    pub injected: u64,
    /// Packets delivered to their destination edge.
    pub delivered: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Drop counters by reason.
    pub drops: BTreeMap<DropReason, u64>,
    /// Per-flow accounting.
    pub flows: HashMap<FlowId, FlowStats>,
    /// Sum of hop counts over delivered packets.
    pub total_hops: u64,
    /// Largest hop count seen on any delivered packet.
    pub max_hops: u16,
    /// Sum of deflections over delivered packets.
    pub deflections: u64,
    /// Delivered packets that were deflected at least once — packets
    /// that a scheme without deflection would have lost to the failure
    /// ("packets saved by deflection").
    pub deflected_delivered: u64,
    /// Sum of in-network latency (created → delivered) in nanoseconds.
    pub total_latency_ns: u128,
    /// Physical link up→down transitions processed by the engine.
    pub link_failures: u64,
    /// Physical link down→up transitions processed by the engine.
    pub link_repairs: u64,
    /// Packets a Byzantine switch pushed out of a port the honest
    /// forwarder did not choose ([`Behavior::Misforward`](crate::Behavior)).
    pub byzantine_misforwards: u64,
    /// Route tags rewritten in flight by a Byzantine switch
    /// ([`Behavior::CorruptResidue`](crate::Behavior)).
    pub byzantine_corruptions: u64,
    /// Packets silently discarded by a Byzantine switch
    /// ([`Behavior::DropSilently`](crate::Behavior)) — also counted in
    /// [`Stats::drops`] under [`DropReason::AdversaryDrop`].
    pub byzantine_drops: u64,
}

impl Stats {
    /// Total packets dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Drops recorded for one reason.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.drops.get(&reason).copied().unwrap_or(0)
    }

    /// Delivered / injected, in `[0, 1]`; `1.0` for an idle network.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Mean hops per delivered packet; `None` when nothing was delivered
    /// (a 0.0 would silently read as "delivered at zero hops").
    pub fn mean_hops(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_hops as f64 / self.delivered as f64)
    }

    /// Mean in-network latency per delivered packet, in seconds; `None`
    /// when nothing was delivered.
    pub fn mean_latency_s(&self) -> Option<f64> {
        (self.delivered > 0).then(|| (self.total_latency_ns as f64 / self.delivered as f64) / 1e9)
    }

    pub(crate) fn record_injection(&mut self) {
        self.injected += 1;
    }

    pub(crate) fn record_link_tx(&mut self, link: LinkId, bytes: u64) {
        if self.link_bytes.len() <= link.0 {
            self.link_bytes.resize(link.0 + 1, 0);
        }
        self.link_bytes[link.0] += bytes;
    }

    /// Bytes carried by `link` in both directions.
    pub fn bytes_on(&self, link: LinkId) -> u64 {
        self.link_bytes.get(link.0).copied().unwrap_or(0)
    }

    pub(crate) fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, pkt: &Packet, now: SimTime) {
        self.delivered += 1;
        self.delivered_bytes += pkt.size_bytes as u64;
        self.total_hops += pkt.hops as u64;
        self.max_hops = self.max_hops.max(pkt.hops);
        self.deflections += pkt.deflections as u64;
        if pkt.deflections > 0 {
            self.deflected_delivered += 1;
        }
        self.total_latency_ns += now.since(pkt.created).as_nanos() as u128;
        let flow = self.flows.entry(pkt.flow).or_default();
        flow.delivered_pkts += 1;
        flow.delivered_bytes += pkt.size_bytes as u64;
        if matches!(pkt.kind, PacketKind::Data | PacketKind::Probe) {
            match flow.max_seq {
                Some(max) if pkt.seq < max => flow.out_of_order += 1,
                Some(max) => flow.max_seq = Some(max.max(pkt.seq)),
                None => flow.max_seq = Some(pkt.seq),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::NodeId;

    fn pkt(seq: u64, hops: u16) -> Packet {
        Packet {
            id: 0,
            flow: FlowId(1),
            seq,
            kind: PacketKind::Data,
            size_bytes: 1000,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl: 10,
            hops,
            deflections: 1,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn delivery_accounting() {
        let mut s = Stats::default();
        s.record_injection();
        s.record_injection();
        s.record_delivery(&pkt(0, 3), SimTime::from_millis(1));
        s.record_delivery(&pkt(1000, 5), SimTime::from_millis(2));
        assert_eq!(s.delivered, 2);
        assert_eq!(s.delivered_bytes, 2000);
        assert_eq!(s.mean_hops(), Some(4.0));
        assert_eq!(s.max_hops, 5);
        assert_eq!(s.deflections, 2);
        assert_eq!(s.delivery_ratio(), 1.0);
        assert!((s.mean_latency_s().unwrap() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn reordering_detection() {
        let mut s = Stats::default();
        s.record_delivery(&pkt(0, 1), SimTime::ZERO);
        s.record_delivery(&pkt(2000, 1), SimTime::ZERO);
        s.record_delivery(&pkt(1000, 1), SimTime::ZERO); // late
        s.record_delivery(&pkt(3000, 1), SimTime::ZERO);
        let f = &s.flows[&FlowId(1)];
        assert_eq!(f.out_of_order, 1);
        assert_eq!(f.max_seq, Some(3000));
    }

    #[test]
    fn drop_accounting() {
        let mut s = Stats::default();
        s.record_drop(DropReason::TtlExpired);
        s.record_drop(DropReason::TtlExpired);
        s.record_drop(DropReason::NoRoute);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.dropped_for(DropReason::TtlExpired), 2);
        assert_eq!(s.dropped_for(DropReason::QueueOverflow), 0);
    }

    #[test]
    fn idle_network_ratios() {
        let s = Stats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        // An empty run has no mean: `None`, not a misleading 0.0.
        assert_eq!(s.mean_hops(), None);
        assert_eq!(s.mean_latency_s(), None);
    }
}
