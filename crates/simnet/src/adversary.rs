//! Byzantine switch behaviors for adversarial scenarios.
//!
//! The paper's threat model is benign — links fail, switches stay
//! faithful. This module relaxes that: each core switch can be assigned
//! a [`Behavior`] describing how it deviates from the forwarding
//! algorithm. The engine interposes the behavior *around* the
//! [`Forwarder`](crate::Forwarder) so a Byzantine switch subverts any
//! dataplane (KAR or the table baselines) identically.
//!
//! The hard invariant: a configuration where every switch is
//! [`Behavior::Honest`] (the default) executes the exact same code path
//! — and draws the exact same RNG sequence — as an engine without the
//! adversary model, so honest runs are byte-identical to the
//! pre-adversary tree (enforced by `crates/bench/tests/
//! adversary_determinism.rs`).

/// How a core switch treats packets passing through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Behavior {
    /// Runs the configured forwarder faithfully (the default).
    #[default]
    Honest,
    /// Ignores the forwarder and emits every packet out of a uniformly
    /// random healthy port — the misrouting attacker. Downstream honest
    /// switches see a packet whose residue no longer matches the link it
    /// arrived on.
    Misforward,
    /// Forwards where the honest algorithm says, but rewrites the
    /// packet's route-ID tag to a random value in flight — the
    /// header-tampering attacker. Downstream residues are garbage: some
    /// land in range (silent misroutes), some fall outside every port's
    /// range and surface as
    /// [`DropReason::CorruptedResidue`](crate::DropReason::CorruptedResidue).
    CorruptResidue,
    /// Silently discards every transiting packet — the blackhole
    /// attacker. Distinguished from link failures by the
    /// `adversary-drop` reason so reachability loss is attributable.
    DropSilently,
}

impl Behavior {
    /// Every behavior, in declaration order.
    pub const ALL: [Behavior; 4] = [
        Behavior::Honest,
        Behavior::Misforward,
        Behavior::CorruptResidue,
        Behavior::DropSilently,
    ];

    /// Stable kebab-case name (used in metric labels and experiment
    /// output).
    pub fn label(self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::Misforward => "misforward",
            Behavior::CorruptResidue => "corrupt-residue",
            Behavior::DropSilently => "drop-silently",
        }
    }

    /// `true` for every behavior except [`Behavior::Honest`].
    pub fn is_byzantine(self) -> bool {
        self != Behavior::Honest
    }
}

impl std::fmt::Display for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(Behavior::default(), Behavior::Honest);
        assert!(!Behavior::default().is_byzantine());
    }

    #[test]
    fn labels_are_distinct_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for b in Behavior::ALL {
            let l = b.label();
            assert!(seen.insert(l), "duplicate label {l}");
            assert!(
                l.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "label {l} not kebab-case"
            );
            assert_eq!(b.to_string(), l);
            assert_eq!(b.is_byzantine(), b != Behavior::Honest);
        }
        assert_eq!(seen.len(), Behavior::ALL.len());
    }
}
