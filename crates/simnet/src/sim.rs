//! The discrete-event simulation engine.
//!
//! This replaces the paper's Mininet + OpenFlow-softswitch emulation: links
//! serialize packets at their configured rate into drop-tail queues,
//! propagation is a fixed delay, link failures are scheduled events that a
//! switch observes instantly as port status (the paper assumes fast local
//! failure detection), and all randomness flows from one seeded RNG so
//! every run is reproducible.

use crate::adversary::Behavior;
use crate::calendar::CalendarQueue;
use crate::forwarder::{DropReason, ForwardDecision, Forwarder, SwitchCtx};
use crate::host::{App, AppAction, EdgeLogic, HostCtx, RerouteDecision};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::stats::Stats;
use crate::time::{tx_time, SimTime};
use crate::trace::{PacketFate, TraceLog};
use kar_obs::{pkt_span, Entity, Event as ObsEvent, EventKind, Obs, ObsHandle, Profiler};
use kar_rns::{BigUint, Reducer};
use kar_topology::{LinkId, NodeId, NodeKind, PortIx, Topology};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed: equal seeds give bit-identical runs.
    pub seed: u64,
    /// Hop budget given to each injected packet. Deflection random walks
    /// are cut off here (the paper's transient loops are bounded the same
    /// way in its softswitch prototype).
    pub default_ttl: u16,
    /// Per-packet service time of a *shared* switching CPU, if any.
    ///
    /// The paper's evaluation runs every OpenFlow softswitch in user
    /// space on one Mininet host, so the aggregate forwarding capacity
    /// is fixed and goodput falls as deflections inflate per-packet hop
    /// counts. `Some(t)` models that: every core-switch traversal is
    /// serialized through one shared server taking `t` per packet.
    /// `None` (the default) forwards at infinite speed.
    pub switch_service: Option<SimTime>,
    /// Record every packet's node path in a [`TraceLog`] (costs memory;
    /// off by default).
    pub trace_paths: bool,
    /// How long the adjacent switches take to observe a link state
    /// change, in both directions: after a failure the port still reads
    /// up (packets forwarded into it are lost), and after a repair it
    /// still reads down (the working port is avoided). The paper assumes
    /// instantaneous local detection (`ZERO`, the default); real
    /// detection (loss-of-light, BFD) takes from microseconds to tens of
    /// milliseconds. Fault plans can override the delay per event to
    /// model jitter.
    pub detection_delay: SimTime,
    /// Use the precomputed-residue fast path: one [`Reducer`] per core
    /// switch, handed to the forwarder via [`SwitchCtx::reducer`].
    /// Results are bit-identical either way (the determinism tests
    /// compare full experiment output with this on and off); `false`
    /// exists to measure the fast path and to bisect suspected
    /// miscompilations.
    pub fast_path: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            default_ttl: 64,
            switch_service: None,
            trace_paths: false,
            detection_delay: SimTime::ZERO,
            fast_path: true,
        }
    }
}

/// One direction of a link at runtime.
#[derive(Debug, Default)]
struct DirState {
    queue: VecDeque<Packet>,
    transmitting: Option<Packet>,
    /// Bumped whenever the direction is force-cleared (link failure) so
    /// stale `TxDone` events can be recognized and ignored.
    epoch: u64,
}

#[derive(Debug, Default)]
struct LinkState {
    /// Physical state: a down link refuses traffic regardless of what the
    /// adjacent switches believe.
    down: bool,
    /// What the adjacent switches currently believe (lags the physical
    /// state by the detection delay, in *both* directions: a freshly
    /// failed link still reads up, and a freshly repaired link still
    /// reads down until the repair is detected).
    observed_down: bool,
    /// Bumped on every physical transition; detection events carry the
    /// seq of the transition they observed so a stale detection (e.g. a
    /// slow failure report racing a fast repair report under jitter)
    /// never overwrites a newer observation.
    change_seq: u64,
    /// `change_seq` of the most recently applied observation.
    observed_seq: u64,
    dirs: [DirState; 2],
}

enum Event {
    Start(NodeId),
    Arrive {
        pkt: Packet,
        node: NodeId,
        in_port: Option<PortIx>,
        /// Whether the shared switching CPU already served this arrival.
        cpu_done: bool,
    },
    TxDone {
        link: LinkId,
        dir: usize,
        epoch: u64,
    },
    Timer {
        node: NodeId,
        id: u64,
    },
    LinkDown {
        link: LinkId,
        /// Per-event detection delay override (`None` = config default).
        detection: Option<SimTime>,
    },
    LinkUp {
        link: LinkId,
        detection: Option<SimTime>,
    },
    /// The adjacent switches resolve a link state change (`down` is the
    /// newly observed state); `seq` guards against stale observations.
    Detect {
        link: LinkId,
        seq: u64,
        down: bool,
    },
    Reinject {
        pkt: Packet,
        node: NodeId,
        port: PortIx,
    },
}

impl Event {
    /// Static label for the profiler's self-time table.
    fn label(&self) -> &'static str {
        match self {
            Event::Start(_) => "start",
            Event::Arrive { .. } => "arrive",
            Event::TxDone { .. } => "tx-done",
            Event::Timer { .. } => "timer",
            Event::LinkDown { .. } => "link-down",
            Event::LinkUp { .. } => "link-up",
            Event::Detect { .. } => "detect",
            Event::Reinject { .. } => "reinject",
        }
    }
}

/// Pre-resolved instrument handles for the engine's hot paths. Built
/// once when an enabled [`ObsHandle`] is attached, so recording never
/// takes the registry lock (the per-flow histograms on delivery are the
/// one cold-path exception).
struct SimObs {
    bundle: Arc<Obs>,
    /// `deflect.<technique>` per switch, technique from the forwarder.
    node_deflect: Vec<kar_obs::Counter>,
    /// Packets a core switch chose an output port for.
    node_forwarded: Vec<kar_obs::Counter>,
    /// Packets injected at each edge.
    node_injected: Vec<kar_obs::Counter>,
    /// Packets delivered at each edge.
    node_delivered: Vec<kar_obs::Counter>,
    /// Bytes that finished serializing on each link.
    link_bytes: Vec<kar_obs::Counter>,
    /// Packets lost on each link (overflow or failure).
    link_drops: Vec<kar_obs::Counter>,
    /// Queue depth of the most recently changed direction (the max is
    /// the per-link high-water mark over both directions).
    link_queue: Vec<kar_obs::Gauge>,
    /// Queue depth over time, decimated.
    link_queue_series: Vec<kar_obs::Series>,
    /// Global delivery latency, nanoseconds.
    latency: kar_obs::Histogram,
    /// Global delivered hop counts.
    hops: kar_obs::Histogram,
}

impl SimObs {
    fn build(handle: &ObsHandle, topo: &Topology, technique: &str) -> Option<SimObs> {
        let bundle = handle.arc()?;
        let reg = &bundle.metrics;
        let deflect_metric = format!("deflect.{technique}");
        let nodes = 0..topo.node_count() as u32;
        let links = 0..topo.link_count() as u32;
        let per_node = |m: &str| -> Vec<_> {
            nodes
                .clone()
                .map(|i| reg.counter(Entity::Node(i), m))
                .collect()
        };
        Some(SimObs {
            node_deflect: per_node(&deflect_metric),
            node_forwarded: per_node("forwarded"),
            node_injected: per_node("injected"),
            node_delivered: per_node("delivered"),
            link_bytes: links
                .clone()
                .map(|i| reg.counter(Entity::Link(i), "bytes"))
                .collect(),
            link_drops: links
                .clone()
                .map(|i| reg.counter(Entity::Link(i), "drops"))
                .collect(),
            link_queue: links
                .clone()
                .map(|i| reg.gauge(Entity::Link(i), "queue"))
                .collect(),
            link_queue_series: links
                .map(|i| reg.series(Entity::Link(i), "queue"))
                .collect(),
            latency: reg.histogram(Entity::Global, "latency_ns"),
            hops: reg.histogram(Entity::Global, "hops"),
            bundle,
        })
    }

    fn event(&self, ev: ObsEvent) {
        self.bundle.events.push(ev);
    }
}

/// The discrete-event network simulator.
///
/// Wire up a topology, a [`Forwarder`] (the core dataplane), an
/// [`EdgeLogic`] (ingress/egress), and apps on edge nodes; schedule
/// failures; then [`Sim::run_until`] an end time and read [`Sim::stats`].
///
/// # Examples
///
/// A two-switch network delivering a probe end to end is exercised in the
/// crate tests (`sim::tests::probe_crosses_static_route`); realistic
/// usage goes through the `kar` crate's [`KarNetwork`] façade, which
/// assembles all the pieces.
///
/// [`KarNetwork`]: https://docs.rs/kar
pub struct Sim<'t> {
    topo: &'t Topology,
    now: SimTime,
    /// Pending events in `(at, seq)` order — a bucketed calendar queue
    /// (see [`crate::calendar`]) that reproduces the old binary heap's
    /// order exactly.
    events: CalendarQueue<Event>,
    /// Per-node reduction constants for core switches (`None` for edges,
    /// or everywhere when [`SimConfig::fast_path`] is off).
    reducers: Vec<Option<Reducer>>,
    links: Vec<LinkState>,
    /// Per-node Byzantine behavior, indexed by `NodeId` (see
    /// [`crate::adversary`]). Empty means every switch is honest — the
    /// default, and the only state existing scenarios ever see.
    behaviors: Vec<Behavior>,
    forwarder: Box<dyn Forwarder>,
    edge_logic: Box<dyn EdgeLogic>,
    apps: Vec<Option<Box<dyn App>>>,
    rng: StdRng,
    stats: Stats,
    config: SimConfig,
    next_pkt_id: u64,
    next_event_seq: u64,
    in_flight: u64,
    /// Shared switching CPU is busy until this time (see
    /// [`SimConfig::switch_service`]).
    cpu_busy_until: SimTime,
    trace: TraceLog,
    /// Pre-resolved metrics/event handles (`None` = observability off,
    /// which costs one pointer check per hook).
    obs: Option<SimObs>,
    /// Wall-clock self-time profiler for the dispatch loop.
    profiler: Option<Arc<Profiler>>,
}

impl<'t> Sim<'t> {
    /// Creates an engine over `topo` with the given dataplane and edge
    /// logic.
    pub fn new(
        topo: &'t Topology,
        forwarder: Box<dyn Forwarder>,
        edge_logic: Box<dyn EdgeLogic>,
        config: SimConfig,
    ) -> Self {
        let mut links = Vec::with_capacity(topo.link_count());
        links.resize_with(topo.link_count(), LinkState::default);
        let reducers = (0..topo.node_count())
            .map(|i| match topo.node(NodeId(i)).kind {
                NodeKind::Core { switch_id } if config.fast_path => Some(Reducer::new(switch_id)),
                _ => None,
            })
            .collect();
        Sim {
            topo,
            now: SimTime::ZERO,
            events: CalendarQueue::default(),
            reducers,
            links,
            behaviors: Vec::new(),
            forwarder,
            edge_logic,
            apps: (0..topo.node_count()).map(|_| None).collect(),
            rng: StdRng::seed_from_u64(config.seed),
            stats: Stats::default(),
            config,
            next_pkt_id: 0,
            next_event_seq: 0,
            in_flight: 0,
            cpu_busy_until: SimTime::ZERO,
            trace: TraceLog::default(),
            obs: None,
            profiler: None,
        }
    }

    /// Attaches an observability bundle. Instrument handles are resolved
    /// once here, so the hot paths record lock-free; attaching a
    /// disabled handle (the default everywhere) keeps observability off.
    /// Metrics are pure observation — they never touch the RNG or any
    /// simulation state, so runs are byte-identical with or without.
    pub fn attach_obs(&mut self, handle: &ObsHandle) {
        self.obs = SimObs::build(handle, self.topo, self.forwarder.name());
    }

    /// The attached observability bundle (disabled handle when none).
    pub fn obs(&self) -> ObsHandle {
        match &self.obs {
            Some(o) => ObsHandle::from_obs(o.bundle.clone()),
            None => ObsHandle::disabled(),
        }
    }

    /// Attaches a wall-clock profiler: every dispatched event is timed
    /// under its type label. Profiling measures the host, not the
    /// simulation — it never affects simulated behavior.
    pub fn attach_profiler(&mut self, profiler: Arc<Profiler>) {
        self.profiler = Some(profiler);
    }

    /// Assigns a (possibly Byzantine) [`Behavior`] to a core switch.
    ///
    /// Misbehavior is enforced by the engine around the forwarder, so it
    /// subverts every dataplane identically. Leaving a node unset (or
    /// setting [`Behavior::Honest`]) keeps the engine on the exact honest
    /// code path — an all-honest run draws the same RNG sequence as one
    /// on a build without the adversary model.
    ///
    /// # Panics
    ///
    /// Panics if `node` is an edge — only core switches forward, so only
    /// they can misbehave.
    pub fn set_behavior(&mut self, node: NodeId, behavior: Behavior) {
        assert!(
            matches!(self.topo.node(node).kind, NodeKind::Core { .. }),
            "behaviors attach to core switches, {} is an edge",
            self.topo.node(node).name
        );
        if self.behaviors.len() <= node.0 {
            self.behaviors.resize(node.0 + 1, Behavior::Honest);
        }
        self.behaviors[node.0] = behavior;
    }

    /// The behavior assigned to `node` ([`Behavior::Honest`] if never
    /// set).
    pub fn behavior(&self, node: NodeId) -> Behavior {
        self.behaviors.get(node.0).copied().unwrap_or_default()
    }

    /// Marks traces of packets still in flight as
    /// [`PacketFate::TruncatedAtSimEnd`]; call when a run ends before
    /// the network drains. Returns how many traces were truncated.
    pub fn finalize_traces(&mut self) -> usize {
        self.trace.finalize()
    }

    /// Attaches an application to an edge node; its `on_start` runs at
    /// time zero (or immediately if the simulation already started).
    ///
    /// # Panics
    ///
    /// Panics if `node` is a core switch — apps live on edges.
    pub fn add_app(&mut self, node: NodeId, app: Box<dyn App>) {
        assert!(
            matches!(self.topo.node(node).kind, NodeKind::Edge),
            "apps attach to edge nodes, {} is a core switch",
            self.topo.node(node).name
        );
        self.apps[node.0] = Some(app);
        self.push(self.now, Event::Start(node));
    }

    /// Schedules a link failure at `at`. Queued and serializing packets on
    /// the link are lost; the adjacent switches see the port down after
    /// [`SimConfig::detection_delay`].
    pub fn schedule_link_down(&mut self, at: SimTime, link: LinkId) {
        self.push(
            at,
            Event::LinkDown {
                link,
                detection: None,
            },
        );
    }

    /// Like [`Sim::schedule_link_down`] but with a per-event detection
    /// delay (used by fault plans to jitter detection).
    pub fn schedule_link_down_detected(&mut self, at: SimTime, link: LinkId, detection: SimTime) {
        self.push(
            at,
            Event::LinkDown {
                link,
                detection: Some(detection),
            },
        );
    }

    /// Schedules a link repair at `at`. The link physically re-admits
    /// traffic immediately; the adjacent switches keep reading the port
    /// as down until the repair is detected.
    pub fn schedule_link_up(&mut self, at: SimTime, link: LinkId) {
        self.push(
            at,
            Event::LinkUp {
                link,
                detection: None,
            },
        );
    }

    /// Like [`Sim::schedule_link_up`] but with a per-event detection
    /// delay.
    pub fn schedule_link_up_detected(&mut self, at: SimTime, link: LinkId, detection: SimTime) {
        self.push(
            at,
            Event::LinkUp {
                link,
                detection: Some(detection),
            },
        );
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology this engine runs over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Collected statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Packets currently inside the network (queued, serializing,
    /// propagating, or awaiting controller reinjection). Together with
    /// [`Stats`] this gives the conservation invariant
    /// `injected == delivered + dropped + in_flight`.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether `link` is currently up (physical state).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        !self.links[link.0].down
    }

    /// Whether the switches adjacent to `link` currently *observe* it as
    /// up. Lags [`Sim::link_is_up`] by the detection delay in both
    /// directions.
    pub fn link_observed_up(&self, link: LinkId) -> bool {
        !self.links[link.0].observed_down
    }

    /// The engine's forwarder (for post-run inspection, e.g. state-table
    /// sizes in the Table 2 experiment).
    pub fn forwarder(&self) -> &dyn Forwarder {
        self.forwarder.as_ref()
    }

    /// Per-packet path traces (empty unless
    /// [`SimConfig::trace_paths`] was set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Runs the event loop until simulated time reaches `until`.
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((at, _)) = self.events.peek_key() {
            if at > until {
                break;
            }
            let entry = self.events.pop().expect("peeked entry exists");
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            self.dispatch(entry.item);
        }
        self.now = self.now.max(until);
    }

    /// Runs until the event queue drains completely (useful for letting
    /// in-flight packets settle after traffic stops).
    pub fn run_to_quiescence(&mut self) {
        while let Some(entry) = self.events.pop() {
            self.now = entry.at;
            self.dispatch(entry.item);
        }
    }

    fn push(&mut self, at: SimTime, ev: Event) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.push(at, seq, ev);
    }

    fn dispatch(&mut self, ev: Event) {
        if let Some(profiler) = self.profiler.clone() {
            let label = ev.label();
            let t0 = std::time::Instant::now();
            self.dispatch_inner(ev);
            profiler.record(label, t0.elapsed());
        } else {
            self.dispatch_inner(ev);
        }
    }

    fn dispatch_inner(&mut self, ev: Event) {
        match ev {
            Event::Start(node) => self.run_app(node, AppEntry::Start),
            Event::Timer { node, id } => self.run_app(node, AppEntry::Timer(id)),
            Event::Arrive {
                pkt,
                node,
                in_port,
                cpu_done,
            } => self.on_arrive(pkt, node, in_port, cpu_done),
            Event::TxDone { link, dir, epoch } => self.on_tx_done(link, dir, epoch),
            Event::LinkDown { link, detection } => self.on_link_down(link, detection),
            Event::LinkUp { link, detection } => self.on_link_up(link, detection),
            Event::Detect { link, seq, down } => self.apply_observation(link, seq, down),
            Event::Reinject { pkt, node, port } => self.send_out_port(node, port, pkt),
        }
    }

    fn on_link_down(&mut self, link: LinkId, detection: Option<SimTime>) {
        let ls = &mut self.links[link.0];
        if ls.down {
            return; // already down (overlapping fault clauses): no-op
        }
        ls.down = true;
        ls.change_seq += 1;
        let seq = ls.change_seq;
        let mut lost_ids = Vec::new();
        for dir in &mut ls.dirs {
            lost_ids.extend(dir.queue.drain(..).map(|p| p.id));
            lost_ids.extend(dir.transmitting.take().map(|p| p.id));
            dir.epoch += 1;
        }
        for &id in &lost_ids {
            self.stats.record_drop(DropReason::LinkFailure);
            if self.config.trace_paths {
                // Queued/serializing packets die with the link; without
                // this their traces would read InFlight forever.
                self.trace
                    .finish(id, PacketFate::Dropped(DropReason::LinkFailure));
            }
        }
        self.in_flight -= lost_ids.len() as u64;
        self.stats.link_failures += 1;
        if let Some(o) = &self.obs {
            let at = self.now.as_nanos();
            o.link_drops[link.0].add(lost_ids.len() as u64);
            o.link_queue[link.0].set(0);
            // The fault opens a causal span; the packets it killed and
            // the eventual detection both parent to it.
            let span = o.bundle.spans.fault(link.0 as u32);
            for &id in &lost_ids {
                o.bundle
                    .metrics
                    .counter(Entity::Global, "drop.link-failure")
                    .add(1);
                let mut ev = ObsEvent::new(at, EventKind::Drop);
                ev.pkt = Some(id);
                ev.link = Some(link.0 as u32);
                ev.tag = DropReason::LinkFailure.as_str();
                ev.span = Some(pkt_span(id));
                ev.parent = Some(span);
                o.event(ev);
            }
            let mut ev = ObsEvent::new(at, EventKind::Fault);
            ev.link = Some(link.0 as u32);
            ev.aux = lost_ids.len() as u64;
            ev.tag = "down";
            ev.span = Some(span);
            o.event(ev);
        }
        self.observe_after(link, seq, true, detection);
    }

    fn on_link_up(&mut self, link: LinkId, detection: Option<SimTime>) {
        let ls = &mut self.links[link.0];
        if !ls.down {
            return; // already up: no-op
        }
        // Both directions were force-cleared when the link failed and the
        // epoch bump retired any in-flight TxDone, and enqueue refuses
        // traffic while physically down — so a repaired link re-admits
        // packets on a clean, current-epoch channel.
        debug_assert!(ls
            .dirs
            .iter()
            .all(|d| d.queue.is_empty() && d.transmitting.is_none()));
        ls.down = false;
        ls.change_seq += 1;
        let seq = ls.change_seq;
        self.stats.link_repairs += 1;
        if let Some(o) = &self.obs {
            let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Repair);
            ev.link = Some(link.0 as u32);
            ev.tag = "up";
            // A repair is a link transition like a fault: it re-binds the
            // link's transition span so the "up" detection parents here.
            ev.span = Some(o.bundle.spans.fault(link.0 as u32));
            o.event(ev);
        }
        self.observe_after(link, seq, false, detection);
    }

    /// Schedules (or, at zero delay, applies) the switches' observation
    /// of a physical link transition.
    fn observe_after(&mut self, link: LinkId, seq: u64, down: bool, detection: Option<SimTime>) {
        let delay = detection.unwrap_or(self.config.detection_delay);
        if delay == SimTime::ZERO {
            self.apply_observation(link, seq, down);
        } else {
            let at = self.now + delay;
            self.push(at, Event::Detect { link, seq, down });
        }
    }

    fn apply_observation(&mut self, link: LinkId, seq: u64, down: bool) {
        let ls = &mut self.links[link.0];
        if seq <= ls.observed_seq {
            return; // a newer transition was already observed (jitter race)
        }
        ls.observed_seq = seq;
        ls.observed_down = down;
        if let Some(o) = &self.obs {
            let (span, parent) = o.bundle.spans.detect(link.0 as u32);
            let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Detect);
            ev.link = Some(link.0 as u32);
            ev.aux = seq;
            ev.tag = if down { "down" } else { "up" };
            ev.span = Some(span);
            ev.parent = parent;
            o.event(ev);
        }
        self.edge_logic
            .on_link_event(self.topo, link, !down, self.now);
    }

    fn on_tx_done(&mut self, link: LinkId, dir: usize, epoch: u64) {
        let delay = SimTime(self.topo.link(link).params.delay_ns);
        let rate = self.topo.link(link).params.rate_bps;
        let ls = &mut self.links[link.0];
        if ls.dirs[dir].epoch != epoch {
            return; // stale: the direction was cleared by a failure
        }
        let pkt = ls.dirs[dir]
            .transmitting
            .take()
            .expect("TxDone with current epoch implies a packet in service");
        self.stats.record_link_tx(link, pkt.size_bytes as u64);
        if let Some(o) = &self.obs {
            o.link_bytes[link.0].add(pkt.size_bytes as u64);
        }
        // Serialization finished: the packet is on the wire and will
        // arrive after the propagation delay.
        let l = self.topo.link(link);
        let (to_node, in_port) = if dir == 0 {
            (l.b, l.b_port)
        } else {
            (l.a, l.a_port)
        };
        let at = self.now + delay;
        self.push(
            at,
            Event::Arrive {
                pkt,
                node: to_node,
                in_port: Some(in_port),
                cpu_done: false,
            },
        );
        // Start serving the next queued packet, if any.
        let ls = &mut self.links[link.0];
        if let Some(next) = ls.dirs[dir].queue.pop_front() {
            let t = tx_time(next.size_bytes, rate);
            let epoch = ls.dirs[dir].epoch;
            ls.dirs[dir].transmitting = Some(next);
            let at = self.now + t;
            let depth = self.links[link.0].dirs[dir].queue.len();
            self.note_queue_depth(link, depth);
            self.push(at, Event::TxDone { link, dir, epoch });
        }
    }

    /// Records the queue depth of a link direction that just changed.
    fn note_queue_depth(&self, link: LinkId, depth: usize) {
        if let Some(o) = &self.obs {
            o.link_queue[link.0].set(depth as i64);
            o.link_queue_series[link.0].sample(self.now.as_nanos(), depth as f64);
        }
    }

    fn enqueue_on_link(&mut self, from: NodeId, link: LinkId, pkt: Packet) {
        let l = self.topo.link(link);
        let rate = l.params.rate_bps;
        let cap = l.params.queue_pkts;
        let dir = if from == l.a { 0 } else { 1 };
        let ls = &mut self.links[link.0];
        if ls.down {
            self.drop_pkt(pkt.id, DropReason::LinkFailure);
            return;
        }
        let d = &mut ls.dirs[dir];
        if d.transmitting.is_some() {
            if d.queue.len() >= cap {
                if let Some(o) = &self.obs {
                    o.link_drops[link.0].inc();
                }
                self.drop_pkt(pkt.id, DropReason::QueueOverflow);
            } else {
                d.queue.push_back(pkt);
                let depth = d.queue.len();
                self.note_queue_depth(link, depth);
            }
        } else {
            let t = tx_time(pkt.size_bytes, rate);
            let epoch = d.epoch;
            d.transmitting = Some(pkt);
            let at = self.now + t;
            self.push(at, Event::TxDone { link, dir, epoch });
        }
    }

    fn drop_pkt(&mut self, pkt_id: u64, reason: DropReason) {
        self.stats.record_drop(reason);
        self.in_flight -= 1;
        if self.config.trace_paths {
            self.trace.finish(pkt_id, PacketFate::Dropped(reason));
        }
        if let Some(o) = &self.obs {
            // Drops are rare enough that the registry lookup (one lock)
            // beats pre-resolving a counter per reason.
            o.bundle
                .metrics
                .counter(Entity::Global, &format!("drop.{}", reason.as_str()))
                .inc();
            let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Drop);
            ev.pkt = Some(pkt_id);
            ev.tag = reason.as_str();
            ev.span = Some(pkt_span(pkt_id));
            // Anomalous fates trip the flight recorder: it freezes the
            // recent event window plus this packet's causal chain.
            let trigger = match reason {
                DropReason::TtlExpired => Some("loop"),
                DropReason::PortDown => Some("blackhole"),
                DropReason::CorruptedResidue => Some("corrupted-residue"),
                _ => None,
            };
            if trigger.is_some() {
                // The drop can't always name the link that doomed it (a
                // loop has no single culprit), so blame the most recent
                // fault — that stitches the fault into the causal chain.
                ev.parent = o.bundle.spans.last_fault_any();
            }
            o.event(ev);
            if let Some(trigger) = trigger {
                o.bundle.forensics.capture(
                    trigger,
                    self.now.as_nanos(),
                    Some(pkt_id),
                    &o.bundle.events,
                );
            }
        }
    }

    fn send_out_port(&mut self, node: NodeId, port: PortIx, pkt: Packet) {
        match self.topo.node(node).ports.get(port as usize) {
            Some(&link) => self.enqueue_on_link(node, link, pkt),
            None => self.drop_pkt(pkt.id, DropReason::BadPort),
        }
    }

    fn on_arrive(
        &mut self,
        mut pkt: Packet,
        node: NodeId,
        in_port: Option<PortIx>,
        cpu_done: bool,
    ) {
        let topo = self.topo;
        if self.config.trace_paths && !cpu_done {
            self.trace.visit(pkt.id, node);
        }
        // Core-switch traversals optionally pass through the shared
        // switching CPU first (Mininet-style userspace forwarding).
        if !cpu_done && matches!(topo.node(node).kind, NodeKind::Core { .. }) {
            if let Some(service) = self.config.switch_service {
                let start = self.cpu_busy_until.max(self.now);
                self.cpu_busy_until = start + service;
                let at = self.cpu_busy_until;
                self.push(
                    at,
                    Event::Arrive {
                        pkt,
                        node,
                        in_port,
                        cpu_done: true,
                    },
                );
                return;
            }
        }
        match topo.node(node).kind {
            NodeKind::Edge => {
                if pkt.dst == node {
                    self.edge_logic.egress(topo, node, &mut pkt);
                    self.stats.record_delivery(&pkt, self.now);
                    self.in_flight -= 1;
                    if self.config.trace_paths {
                        self.trace.finish(pkt.id, PacketFate::Delivered);
                    }
                    if let Some(o) = &self.obs {
                        let lat = self.now.since(pkt.created).as_nanos();
                        o.node_delivered[node.0].inc();
                        o.latency.observe(lat);
                        o.hops.observe(pkt.hops as u64);
                        // Per-flow histograms resolve through the
                        // registry: flows are few, deliveries cold
                        // enough for one uncontended lock.
                        let flow = Entity::Flow(pkt.flow.0);
                        o.bundle.metrics.histogram(flow, "latency_ns").observe(lat);
                        o.bundle
                            .metrics
                            .histogram(flow, "hops")
                            .observe(pkt.hops as u64);
                        let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Deliver);
                        ev.pkt = Some(pkt.id);
                        ev.flow = Some(pkt.flow.0);
                        ev.node = Some(node.0 as u32);
                        ev.aux = pkt.hops as u64;
                        ev.span = Some(pkt_span(pkt.id));
                        o.event(ev);
                    }
                    self.run_app(node, AppEntry::Packet(pkt));
                } else {
                    // Wrong edge: paper §2.1 — consult the controller to
                    // rewrite the route ID, then send the packet back in.
                    match self.edge_logic.reroute(topo, node, &mut pkt) {
                        RerouteDecision::Forward { port, delay } => {
                            pkt.ttl = self.config.default_ttl;
                            let at = self.now + delay;
                            self.push(at, Event::Reinject { pkt, node, port });
                        }
                        RerouteDecision::Drop => self.drop_pkt(pkt.id, DropReason::Misdelivery),
                    }
                }
            }
            NodeKind::Core { switch_id } => {
                if !pkt.tick_ttl() {
                    self.drop_pkt(pkt.id, DropReason::TtlExpired);
                    return;
                }
                // Hierarchical controllers rewrite the route tag here
                // when the packet just crossed a domain boundary; the
                // default edge logic is a no-op (no RNG, no state), so
                // flat runs stay byte-identical.
                self.edge_logic.core_ingress(topo, node, in_port, &mut pkt);
                let statuses: Vec<bool> = topo
                    .node(node)
                    .ports
                    .iter()
                    .map(|&l| !self.links[l.0].observed_down)
                    .collect();
                // Byzantine interposition (see [`crate::adversary`]).
                // Honest switches take exactly the pre-adversary code
                // path — same branches, zero extra RNG draws — so
                // all-honest runs stay byte-identical (enforced by
                // `crates/bench/tests/adversary_determinism.rs`).
                let behavior = self.behavior(node);
                if behavior == Behavior::DropSilently {
                    self.stats.byzantine_drops += 1;
                    self.drop_pkt(pkt.id, DropReason::AdversaryDrop);
                    return;
                }
                let ctx = SwitchCtx {
                    topo,
                    node,
                    switch_id,
                    in_port,
                    ports: &statuses,
                    now: self.now,
                    reducer: self.reducers[node.0].as_ref(),
                    behavior,
                };
                let deflections_before = pkt.deflections;
                let mut decision = if behavior == Behavior::Misforward {
                    // Ignore the forwarder: pick any healthy port
                    // uniformly. The tag is left untouched, so the
                    // packet continues honestly from its wrong ingress.
                    let healthy: Vec<PortIx> = ctx.healthy_ports().collect();
                    if healthy.is_empty() {
                        ForwardDecision::Drop(DropReason::PortDown)
                    } else {
                        self.stats.byzantine_misforwards += 1;
                        let i: usize = self.rng.gen_range(0..healthy.len());
                        ForwardDecision::Output(healthy[i])
                    }
                } else {
                    self.forwarder.forward(&ctx, &mut pkt, &mut self.rng)
                };
                // An out-of-range residue on a tampered tag is header
                // corruption, not a routing mistake — reclassify so the
                // drop tables can tell the two apart.
                if decision == ForwardDecision::Drop(DropReason::ResidueOutOfRange)
                    && pkt.route.as_ref().is_some_and(|t| t.tampered)
                {
                    decision = ForwardDecision::Drop(DropReason::CorruptedResidue);
                }
                if behavior == Behavior::CorruptResidue {
                    if let ForwardDecision::Output(_) = decision {
                        // Forward where the honest algorithm said, but
                        // rewrite the route ID in flight. `tamper`
                        // clears the residue memo so downstream switches
                        // reduce the garbage ID, not a cached value.
                        if let Some(tag) = pkt.route.as_mut() {
                            tag.tamper(BigUint::from(self.rng.next_u64()));
                            self.stats.byzantine_corruptions += 1;
                        }
                    }
                }
                match decision {
                    ForwardDecision::Output(p) => {
                        if let Some(o) = &self.obs {
                            let at = self.now.as_nanos();
                            o.node_forwarded[node.0].inc();
                            let mut ev = ObsEvent::new(at, EventKind::Hop);
                            ev.pkt = Some(pkt.id);
                            ev.flow = Some(pkt.flow.0);
                            ev.node = Some(node.0 as u32);
                            ev.aux = p;
                            ev.span = Some(pkt_span(pkt.id));
                            o.event(ev);
                            if pkt.deflections > deflections_before {
                                o.node_deflect[node.0].inc();
                                let mut ev = ObsEvent::new(at, EventKind::Deflect);
                                ev.pkt = Some(pkt.id);
                                ev.flow = Some(pkt.flow.0);
                                ev.node = Some(node.0 as u32);
                                ev.aux = p;
                                ev.span = Some(pkt_span(pkt.id));
                                o.event(ev);
                            }
                        }
                        if !statuses.get(p as usize).copied().unwrap_or(false) {
                            self.drop_pkt(pkt.id, DropReason::BadPort);
                        } else {
                            self.send_out_port(node, p, pkt);
                        }
                    }
                    ForwardDecision::Drop(reason) => self.drop_pkt(pkt.id, reason),
                }
            }
        }
    }

    fn run_app(&mut self, node: NodeId, entry: AppEntry) {
        let Some(mut app) = self.apps[node.0].take() else {
            return; // deliveries to app-less edges are still counted in stats
        };
        let mut actions = Vec::new();
        {
            let mut ctx = HostCtx {
                node,
                now: self.now,
                actions: &mut actions,
            };
            match entry {
                AppEntry::Start => app.on_start(&mut ctx),
                AppEntry::Timer(id) => app.on_timer(&mut ctx, id),
                AppEntry::Packet(pkt) => app.on_packet(&mut ctx, &pkt),
            }
        }
        self.apps[node.0] = Some(app);
        for action in actions {
            match action {
                AppAction::Timer { at, id } => self.push(at, Event::Timer { node, id }),
                AppAction::Send {
                    dst,
                    flow,
                    seq,
                    kind,
                    size_bytes,
                } => self.inject(node, dst, flow, seq, kind, size_bytes),
                AppAction::Observe { label, value } => {
                    if let Some(o) = &self.obs {
                        o.bundle
                            .metrics
                            .counter(Entity::Node(node.0 as u32), label)
                            .add(value);
                        let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Note);
                        ev.node = Some(node.0 as u32);
                        ev.aux = value;
                        ev.tag = label;
                        o.event(ev);
                    }
                }
            }
        }
    }

    /// Injects one packet at `src` (normally called via app actions, but
    /// public so tests and delivery-ratio experiments can drive the
    /// network without a transport stack).
    pub fn inject(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        seq: u64,
        kind: PacketKind,
        size_bytes: u32,
    ) {
        let mut pkt = Packet {
            id: self.next_pkt_id,
            flow,
            seq,
            kind,
            size_bytes,
            src,
            dst,
            route: None,
            ttl: self.config.default_ttl,
            hops: 0,
            deflections: 0,
            created: self.now,
        };
        self.next_pkt_id += 1;
        self.stats.record_injection();
        self.in_flight += 1;
        if self.config.trace_paths {
            self.trace.visit(pkt.id, src);
        }
        if let Some(o) = &self.obs {
            o.node_injected[src.0].inc();
            let mut ev = ObsEvent::new(self.now.as_nanos(), EventKind::Inject);
            ev.pkt = Some(pkt.id);
            ev.flow = Some(pkt.flow.0);
            ev.node = Some(src.0 as u32);
            ev.aux = pkt.size_bytes as u64;
            ev.span = Some(pkt_span(pkt.id));
            o.event(ev);
        }
        let topo = self.topo;
        match self.edge_logic.ingress(topo, src, &mut pkt) {
            Some(port) => self.send_out_port(src, port, pkt),
            None => {
                let id = pkt.id;
                self.drop_pkt(id, DropReason::NoRoute)
            }
        }
    }
}

enum AppEntry {
    Start,
    Timer(u64),
    Packet(Packet),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteTag;
    use kar_rns::{crt_encode, RnsBasis};
    use kar_topology::{LinkParams, TopologyBuilder};

    /// Forwarder that follows `route_id mod switch_id` and drops on
    /// failure — the minimal KAR dataplane, used here to test the engine
    /// itself (richer deflection lives in the `kar` crate).
    struct ModuloDrop;

    impl Forwarder for ModuloDrop {
        fn forward(
            &mut self,
            ctx: &SwitchCtx<'_>,
            pkt: &mut Packet,
            _rng: &mut StdRng,
        ) -> ForwardDecision {
            let Some(tag) = &mut pkt.route else {
                return ForwardDecision::Drop(DropReason::MissingTag);
            };
            let port = ctx.residue(tag);
            if ctx.port_available(port) {
                ForwardDecision::Output(port)
            } else {
                ForwardDecision::Drop(DropReason::PortDown)
            }
        }

        fn name(&self) -> &str {
            "modulo-drop"
        }
    }

    /// Edge logic with one fixed route tag for every packet.
    struct FixedTag {
        route_id: kar_rns::BigUint,
        uplink: PortIx,
    }

    impl EdgeLogic for FixedTag {
        fn ingress(&mut self, _t: &Topology, _e: NodeId, pkt: &mut Packet) -> Option<PortIx> {
            pkt.route = Some(RouteTag::new(self.route_id.clone()));
            Some(self.uplink)
        }
    }

    /// S — SW4 — SW7 — D with the paper's example encoding.
    fn line_world() -> (Topology, kar_rns::BigUint) {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let sw4 = b.core("SW4", 4);
        let sw7 = b.core("SW7", 7);
        let d = b.edge("D");
        b.link(s, sw4, LinkParams::new(100, 10));
        b.link(sw4, sw7, LinkParams::new(100, 10));
        b.link(sw7, d, LinkParams::new(100, 10));
        let topo = b.build().unwrap();
        // SW4 must exit port 1 (towards SW7), SW7 port 1 (towards D).
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let r = crt_encode(&basis, &[1, 1]).unwrap();
        (topo, r)
    }

    #[test]
    fn probe_crosses_static_route() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        let s = topo.expect("S");
        let d = topo.expect("D");
        sim.inject(s, d, FlowId(0), 0, PacketKind::Probe, 1000);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().dropped(), 0);
        assert_eq!(sim.in_flight(), 0);
        assert_eq!(sim.stats().max_hops, 2);
    }

    #[test]
    fn latency_matches_store_and_forward_math() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        sim.run_to_quiescence();
        // Three store-and-forward hops at 100 Mbit/s: 3 × (80 µs tx + 10 µs prop).
        assert!((sim.stats().mean_latency_s().unwrap() - 3.0 * 90e-6).abs() < 1e-9);
    }

    #[test]
    fn link_failure_drops_and_conserves() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        let failed = topo.expect_link("SW4", "SW7");
        sim.schedule_link_down(SimTime::ZERO, failed);
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped_for(DropReason::PortDown), 1);
        assert_eq!(sim.in_flight(), 0);
        assert!(!sim.link_is_up(failed));
    }

    #[test]
    fn link_repair_restores_delivery() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        let l = topo.expect_link("SW4", "SW7");
        sim.schedule_link_down(SimTime::ZERO, l);
        sim.schedule_link_up(SimTime::from_millis(1), l);
        sim.run_until(SimTime::from_millis(2));
        assert!(sim.link_is_up(l));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn queue_overflow_is_bounded_drop_tail() {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        // Slow link with a 2-packet queue.
        b.link(s, c, LinkParams::new(1000, 1));
        let slow = LinkParams::new(1, 1).with_queue(2);
        b.link(c, d, slow);
        let topo = b.build().unwrap();
        let basis = RnsBasis::new(vec![5]).unwrap();
        let r = crt_encode(&basis, &[1]).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        for i in 0..10 {
            sim.inject(
                topo.expect("S"),
                topo.expect("D"),
                FlowId(0),
                i,
                PacketKind::Probe,
                1500,
            );
        }
        sim.run_to_quiescence();
        // 1 serializing + 2 queued survive; 7 overflow.
        assert_eq!(sim.stats().dropped_for(DropReason::QueueOverflow), 7);
        assert_eq!(sim.stats().delivered, 3);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn failure_loses_queued_packets() {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        b.link(s, c, LinkParams::new(1000, 1));
        b.link(c, d, LinkParams::new(1, 1)); // 12 ms per 1500 B packet
        let topo = b.build().unwrap();
        let basis = RnsBasis::new(vec![5]).unwrap();
        let r = crt_encode(&basis, &[1]).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        for i in 0..5 {
            sim.inject(
                topo.expect("S"),
                topo.expect("D"),
                FlowId(0),
                i,
                PacketKind::Probe,
                1500,
            );
        }
        // Fail C-D while packets sit in its queue.
        sim.schedule_link_down(SimTime::from_millis(5), topo.expect_link("C", "D"));
        sim.run_to_quiescence();
        assert!(sim.stats().dropped_for(DropReason::LinkFailure) >= 4);
        assert_eq!(
            sim.stats().delivered + sim.stats().dropped(),
            sim.stats().injected
        );
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn ttl_expiry_kills_looping_packets() {
        // Two switches pointing at each other: route id chosen so each
        // sends back to the other forever.
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c1 = b.core("C1", 5);
        let c2 = b.core("C2", 7);
        b.link(s, c1, LinkParams::new(100, 1));
        b.link(c1, c2, LinkParams::new(100, 1));
        let topo = b.build().unwrap();
        // C1 exits port 1 (to C2); C2 exits port 0 (back to C1).
        let basis = RnsBasis::new(vec![5, 7]).unwrap();
        let r = crt_encode(&basis, &[1, 0]).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                seed: 1,
                default_ttl: 16,
                ..SimConfig::default()
            },
        );
        sim.inject(
            topo.expect("S"),
            NodeId(999).min(topo.expect("S")), // destination never reached; use S itself
            FlowId(0),
            0,
            PacketKind::Probe,
            100,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_for(DropReason::TtlExpired), 1);
        assert_eq!(sim.in_flight(), 0);
    }

    /// An app that sends one probe on start and records deliveries.
    struct PingApp {
        dst: NodeId,
        got: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl App for PingApp {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send(self.dst, FlowId(9), 0, PacketKind::Probe, 500);
            ctx.set_timer(SimTime::from_millis(1), 42);
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, pkt: &Packet) {
            assert_eq!(pkt.flow, FlowId(9));
            self.got.set(self.got.get() + 1);
        }
        fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, id: u64) {
            assert_eq!(id, 42);
        }
    }

    #[test]
    fn apps_send_receive_and_time() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let s = topo.expect("S");
        let d = topo.expect("D");
        sim.add_app(
            s,
            Box::new(PingApp {
                dst: d,
                got: got.clone(),
            }),
        );
        sim.add_app(
            d,
            Box::new(PingApp {
                dst: s,
                got: got.clone(),
            }),
        );
        // D's probe back to S has no usable reverse route tag in this
        // fixture (same tag, so SW7 computes port 1 → D again: the packet
        // surfaces at D, the wrong edge, and default reroute drops it).
        sim.run_until(SimTime::from_secs(1));
        assert!(got.get() >= 1);
        assert_eq!(
            sim.stats().injected,
            sim.stats().delivered + sim.stats().dropped() + sim.in_flight()
        );
    }

    #[test]
    #[should_panic(expected = "apps attach to edge nodes")]
    fn app_on_core_switch_panics() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        sim.add_app(topo.expect("SW4"), Box::new(ModuloApp));
    }

    struct ModuloApp;
    impl App for ModuloApp {
        fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: &Packet) {}
        fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _id: u64) {}
    }

    #[test]
    fn traces_record_full_paths() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                trace_paths: true,
                ..SimConfig::default()
            },
        );
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            500,
        );
        sim.run_to_quiescence();
        let trace = sim.trace().get(0).expect("packet 0 traced");
        let names: Vec<&str> = trace
            .path
            .iter()
            .map(|&n| topo.node(n).name.as_str())
            .collect();
        assert_eq!(names, vec!["S", "SW4", "SW7", "D"]);
        assert_eq!(trace.fate, crate::trace::PacketFate::Delivered);
        assert_eq!(trace.revisits(), 0);
        assert!(trace.pretty(&topo).contains("S → SW4 → SW7 → D"));
    }

    #[test]
    fn traces_record_drop_fate() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                trace_paths: true,
                ..SimConfig::default()
            },
        );
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW4", "SW7"));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            500,
        );
        sim.run_to_quiescence();
        let trace = sim.trace().get(0).unwrap();
        assert_eq!(
            trace.fate,
            crate::trace::PacketFate::Dropped(DropReason::PortDown)
        );
        assert_eq!(trace.path.len(), 2); // S, SW4
    }

    #[test]
    fn link_bytes_are_accounted() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        for i in 0..5 {
            sim.inject(
                topo.expect("S"),
                topo.expect("D"),
                FlowId(0),
                i,
                PacketKind::Probe,
                1000,
            );
        }
        sim.run_to_quiescence();
        for name in [("S", "SW4"), ("SW4", "SW7"), ("SW7", "D")] {
            let l = topo.expect_link(name.0, name.1);
            assert_eq!(sim.stats().bytes_on(l), 5000, "{name:?}");
        }
    }

    #[test]
    fn detection_delay_blackholes_packets_until_detected() {
        // With a 1 ms detection delay, a switch keeps forwarding into a
        // dead port — those packets are lost. After detection the
        // (drop-on-failure) forwarder reports NoRoute instead.
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                detection_delay: SimTime::from_millis(1),
                ..SimConfig::default()
            },
        );
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW4", "SW7"));
        // Before detection: forwarded into the dead link → LinkFailure.
        sim.run_until(SimTime::from_micros(100));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            500,
        );
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.stats().dropped_for(DropReason::LinkFailure), 1);
        // After detection: the forwarder sees the port down → PortDown.
        sim.run_until(SimTime::from_millis(2));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            1,
            PacketKind::Probe,
            500,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_for(DropReason::PortDown), 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn obs_records_metrics_and_events_without_changing_the_run() {
        let run = |with_obs: bool| {
            let (topo, r) = line_world();
            let mut sim = Sim::new(
                &topo,
                Box::new(ModuloDrop),
                Box::new(FixedTag {
                    route_id: r,
                    uplink: 0,
                }),
                SimConfig::default(),
            );
            let handle = if with_obs {
                ObsHandle::enabled()
            } else {
                ObsHandle::disabled()
            };
            sim.attach_obs(&handle);
            for i in 0..5 {
                sim.inject(
                    topo.expect("S"),
                    topo.expect("D"),
                    FlowId(0),
                    i,
                    PacketKind::Probe,
                    1000,
                );
            }
            sim.run_to_quiescence();
            (sim.stats().clone(), handle)
        };
        let (stats_off, _) = run(false);
        let (stats_on, handle) = run(true);
        // Pure observation: identical stats either way.
        assert_eq!(stats_off, stats_on);
        let obs = handle.get().expect("enabled handle");
        let snap = obs.metrics.snapshot();
        let counter = |e: Entity, m: &str| {
            snap.counters
                .iter()
                .find(|(ce, cm, _)| *ce == e && cm == m)
                .map(|&(_, _, v)| v)
        };
        let (topo, _) = line_world();
        let s = topo.expect("S").0 as u32;
        let d = topo.expect("D").0 as u32;
        let sw4 = topo.expect("SW4").0 as u32;
        assert_eq!(counter(Entity::Node(s), "injected"), Some(5));
        assert_eq!(counter(Entity::Node(d), "delivered"), Some(5));
        assert_eq!(counter(Entity::Node(sw4), "forwarded"), Some(5));
        // Global latency histogram saw every delivery.
        let lat = snap
            .histograms
            .iter()
            .find(|h| h.entity == Entity::Global && h.metric == "latency_ns")
            .expect("latency histogram");
        assert_eq!(lat.count, 5);
        // Events: 5 injects, hops at both switches, 5 delivers.
        let events = obs.events.events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Inject), 5);
        assert_eq!(count(EventKind::Hop), 10);
        assert_eq!(count(EventKind::Deliver), 5);
        // Span: packet 0's events are time-ordered and share its flow.
        let span: Vec<_> = events.iter().filter(|e| e.pkt == Some(0)).collect();
        assert_eq!(span.len(), 4);
        assert!(span.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(span.iter().all(|e| e.flow == Some(0)));
    }

    #[test]
    fn obs_counts_fault_drop_and_detect_events() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                detection_delay: SimTime::from_micros(10),
                ..SimConfig::default()
            },
        );
        let handle = ObsHandle::enabled();
        sim.attach_obs(&handle);
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW4", "SW7"));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            500,
        );
        sim.run_to_quiescence();
        let obs = handle.get().unwrap();
        let events = obs.events.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Fault));
        assert!(kinds.contains(&EventKind::Detect));
        assert!(kinds.contains(&EventKind::Drop));
        let drop = events
            .iter()
            .find(|e| e.kind == EventKind::Drop)
            .expect("drop event");
        assert_eq!(drop.tag, "port-down");
    }

    #[test]
    fn profiler_times_the_dispatch_loop() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig::default(),
        );
        let profiler = Arc::new(Profiler::new());
        sim.attach_profiler(profiler.clone());
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        sim.run_to_quiescence();
        let rows = profiler.rows();
        let arrive = rows.iter().find(|r| r.label == "arrive").expect("arrive");
        assert_eq!(arrive.count, 3); // SW4, SW7, D (injection is not an arrival)
        let tx = rows.iter().find(|r| r.label == "tx-done").expect("tx-done");
        assert_eq!(tx.count, 3);
    }

    #[test]
    fn finalize_traces_marks_unfinished_journeys() {
        let (topo, r) = line_world();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                trace_paths: true,
                ..SimConfig::default()
            },
        );
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        // Stop while the packet is still serializing on the first link.
        sim.run_until(SimTime::from_micros(1));
        assert_eq!(sim.in_flight(), 1);
        assert_eq!(sim.finalize_traces(), 1);
        assert_eq!(
            sim.trace().get(0).unwrap().fate,
            PacketFate::TruncatedAtSimEnd
        );
    }

    #[test]
    fn link_failure_finishes_traces_of_lost_packets() {
        // Regression: packets queued on a failing link used to keep
        // InFlight traces forever.
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        b.link(s, c, LinkParams::new(1000, 1));
        b.link(c, d, LinkParams::new(1, 1)); // 12 ms per 1500 B packet
        let topo = b.build().unwrap();
        let basis = RnsBasis::new(vec![5]).unwrap();
        let r = crt_encode(&basis, &[1]).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloDrop),
            Box::new(FixedTag {
                route_id: r,
                uplink: 0,
            }),
            SimConfig {
                trace_paths: true,
                ..SimConfig::default()
            },
        );
        for i in 0..5 {
            sim.inject(
                topo.expect("S"),
                topo.expect("D"),
                FlowId(0),
                i,
                PacketKind::Probe,
                1500,
            );
        }
        sim.schedule_link_down(SimTime::from_millis(5), topo.expect_link("C", "D"));
        sim.run_to_quiescence();
        let lost = sim.stats().dropped_for(DropReason::LinkFailure);
        assert!(lost >= 4);
        let failure_fates = sim
            .trace()
            .iter()
            .filter(|(_, t)| t.fate == PacketFate::Dropped(DropReason::LinkFailure))
            .count() as u64;
        assert_eq!(failure_fates, lost);
        assert_eq!(sim.finalize_traces(), 0); // nothing left in flight
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let (topo, r) = line_world();
            let mut sim = Sim::new(
                &topo,
                Box::new(ModuloDrop),
                Box::new(FixedTag {
                    route_id: r,
                    uplink: 0,
                }),
                SimConfig {
                    seed,
                    default_ttl: 64,
                    ..SimConfig::default()
                },
            );
            for i in 0..50 {
                sim.inject(
                    topo.expect("S"),
                    topo.expect("D"),
                    FlowId(0),
                    i,
                    PacketKind::Probe,
                    1000 + (i as u32 % 500),
                );
            }
            sim.run_to_quiescence();
            (
                sim.stats().delivered,
                sim.stats().delivered_bytes,
                sim.stats().total_latency_ns,
            )
        };
        assert_eq!(run(7), run(7));
    }
}
