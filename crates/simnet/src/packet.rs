//! Packets and the KAR route tag they carry through the core.

use crate::time::SimTime;
use kar_rns::BigUint;
use kar_topology::NodeId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of one transport flow (e.g. one iperf TCP connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Transport-level payload classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data segment carrying `seq .. seq + payload`.
    Data,
    /// A cumulative acknowledgment: everything below `ack` was received.
    Ack {
        /// The next byte the receiver expects.
        ack: u64,
        /// The receiver's observed reordering displacement, in segments —
        /// the simulator's stand-in for Linux's SACK-based adaptive
        /// `tcp_reordering` metric (senders raise their duplicate-ACK
        /// threshold accordingly).
        reorder: u16,
        /// Set when this ACK was triggered by a duplicate segment — the
        /// stand-in for a DSACK block, letting senders undo spurious
        /// congestion-window reductions as Linux does.
        dsack: bool,
    },
    /// A probe used by tests and delivery-ratio experiments.
    Probe,
}

/// The KAR header attached by the ingress edge: the RNS route ID plus the
/// deflection state a core switch needs.
///
/// The route ID is shared (`Arc`): cloning a packet — retransmit
/// buffers, fan-out, queue snapshots — bumps a reference count instead
/// of copying limbs. Tags for the same installed route can share one
/// allocation via [`RouteArena`].
#[derive(Debug, Clone)]
pub struct RouteTag {
    /// The CRT-encoded route ID (paper Eq. 4). Replace the whole tag
    /// (e.g. [`RouteTag::new`]) rather than assigning this field in
    /// place, or a memoized residue from the old ID could survive.
    pub route_id: Arc<BigUint>,
    /// Set once the packet has been deflected at least once (used by the
    /// hot-potato technique, which random-walks after the first
    /// deflection).
    pub deflected: bool,
    /// Set once a Byzantine switch rewrote `route_id` in flight (via
    /// [`RouteTag::tamper`]). Lets the engine classify a later
    /// out-of-range residue as corruption rather than a routing mistake.
    pub tampered: bool,
    /// `(switch_id, residue)` of the most recent reduction — a pure
    /// cache, excluded from equality/hashing. Deflection loops and
    /// controller bounces revisit switches; the memo makes the repeat
    /// hop free.
    memo: Option<(u64, u64)>,
}

impl PartialEq for RouteTag {
    fn eq(&self, other: &Self) -> bool {
        self.route_id == other.route_id
            && self.deflected == other.deflected
            && self.tampered == other.tampered
    }
}
impl Eq for RouteTag {}
impl std::hash::Hash for RouteTag {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.route_id.hash(state);
        self.deflected.hash(state);
        self.tampered.hash(state);
    }
}

impl RouteTag {
    /// Wraps a route ID with clean deflection state. Accepts an owned
    /// [`BigUint`] or a shared `Arc<BigUint>` (e.g. from a
    /// [`RouteArena`]).
    pub fn new(route_id: impl Into<Arc<BigUint>>) -> Self {
        RouteTag {
            route_id: route_id.into(),
            deflected: false,
            tampered: false,
            memo: None,
        }
    }

    /// Replaces the route ID with an attacker-chosen value, marking the
    /// tag tampered. Clears the residue memo — a memoized residue of the
    /// old ID must not survive the rewrite — while preserving the
    /// deflection bit (the attacker only touches the ID field).
    pub fn tamper(&mut self, new_id: impl Into<Arc<BigUint>>) {
        self.route_id = new_id.into();
        self.tampered = true;
        self.memo = None;
    }

    /// The memoized residue for `switch_id`, if this tag was already
    /// reduced there.
    pub fn memoized_residue(&self, switch_id: u64) -> Option<u64> {
        match self.memo {
            Some((s, r)) if s == switch_id => Some(r),
            _ => None,
        }
    }

    /// Records `route_id mod switch_id = residue` for the next visit.
    pub fn memoize_residue(&mut self, switch_id: u64, residue: u64) {
        self.memo = Some((switch_id, residue));
    }
}

/// Interns route IDs so every packet of a flow shares one `BigUint`
/// allocation (the route-tag arena of the fast-path dataplane).
///
/// Keyed by value, so interning is always sound: re-installing a route
/// with the same ID returns the same allocation, and a changed ID simply
/// interns a new one. Long-running controllers that churn many distinct
/// routes can [`RouteArena::clear`] between phases.
#[derive(Debug, Default)]
pub struct RouteArena {
    pool: HashMap<BigUint, Arc<BigUint>>,
}

impl RouteArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        RouteArena::default()
    }

    /// Returns a shared handle for `route_id`, allocating only on first
    /// sight.
    pub fn intern(&mut self, route_id: &BigUint) -> Arc<BigUint> {
        if let Some(shared) = self.pool.get(route_id) {
            return shared.clone();
        }
        let shared = Arc::new(route_id.clone());
        self.pool.insert(route_id.clone(), shared.clone());
        shared
    }

    /// Interns the route ID carried by a big-endian header field (the
    /// `kar::wire` fixed-field bytes). Keyed by value, so a route ID
    /// arriving as bytes and the same ID arriving as a [`BigUint`]
    /// share one allocation — this is how the simulator's ingress path
    /// consumes exactly the bytes the service puts on the wire.
    pub fn intern_wire(&mut self, field_be: &[u8]) -> Arc<BigUint> {
        self.intern(&BigUint::from_bytes_be(field_be))
    }

    /// Number of distinct route IDs interned.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Drops every interned ID (outstanding `Arc`s stay valid).
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

/// A simulated packet.
///
/// `size_bytes` is the on-wire size (headers included) used for
/// serialization delay; `seq`/`kind` carry transport semantics.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique per-simulation id (assigned by the engine).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Transport sequence number (byte offset for data segments).
    pub seq: u64,
    /// Data / ACK / probe.
    pub kind: PacketKind,
    /// On-wire size in bytes.
    pub size_bytes: u32,
    /// Originating edge node.
    pub src: NodeId,
    /// Destination edge node.
    pub dst: NodeId,
    /// KAR route tag (attached at ingress, stripped at egress).
    pub route: Option<RouteTag>,
    /// Remaining hop budget; the engine drops the packet at zero.
    pub ttl: u16,
    /// Hops traversed so far.
    pub hops: u16,
    /// Number of deflections experienced.
    pub deflections: u16,
    /// Creation time (for latency accounting).
    pub created: SimTime,
}

impl Packet {
    /// Decrements the TTL, returning `false` when expired.
    pub fn tick_ttl(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        self.hops += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ttl: u16) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn ttl_counts_down_and_expires() {
        let mut p = pkt(2);
        assert!(p.tick_ttl());
        assert!(p.tick_ttl());
        assert!(!p.tick_ttl());
        assert_eq!(p.hops, 2);
    }

    #[test]
    fn route_tag_starts_undeflected() {
        let tag = RouteTag::new(BigUint::from(44u64));
        assert!(!tag.deflected);
        assert!(!tag.tampered);
        assert_eq!(tag.route_id.to_u64(), Some(44));
        assert_eq!(tag.memoized_residue(7), None);
    }

    #[test]
    fn tamper_replaces_id_clears_memo_and_marks_tag() {
        let mut tag = RouteTag::new(BigUint::from(44u64));
        tag.deflected = true;
        tag.memoize_residue(7, 2);
        tag.tamper(BigUint::from(99u64));
        assert!(tag.tampered);
        assert!(tag.deflected, "tamper must not touch the deflection bit");
        assert_eq!(tag.route_id.to_u64(), Some(99));
        // A stale residue of the old ID must not survive.
        assert_eq!(tag.memoized_residue(7), None);
        // Tampered tags are distinguishable from clean ones with the
        // same ID.
        assert_ne!(tag, {
            let mut clean = RouteTag::new(BigUint::from(99u64));
            clean.deflected = true;
            clean
        });
    }

    #[test]
    fn residue_memo_is_per_switch_and_ignored_by_eq() {
        let mut tag = RouteTag::new(BigUint::from(44u64));
        tag.memoize_residue(7, 2);
        assert_eq!(tag.memoized_residue(7), Some(2));
        assert_eq!(tag.memoized_residue(11), None);
        // The memo is a cache: it must not distinguish tags.
        assert_eq!(tag, RouteTag::new(BigUint::from(44u64)));
        // Clones carry the memo along.
        assert_eq!(tag.clone().memoized_residue(7), Some(2));
    }

    #[test]
    fn arena_shares_one_allocation_per_route() {
        let mut arena = RouteArena::new();
        let id = BigUint::from(660u64);
        let a = arena.intern(&id);
        let b = arena.intern(&id);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(arena.len(), 1);
        let other = arena.intern(&BigUint::from(44u64));
        assert!(!std::sync::Arc::ptr_eq(&a, &other));
        assert_eq!(arena.len(), 2);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(*a, id); // outstanding handles survive a clear
    }

    #[test]
    fn wire_bytes_and_values_intern_identically() {
        let mut arena = RouteArena::new();
        let id = BigUint::from(660u64);
        let by_value = arena.intern(&id);
        // 660 in a padded big-endian field, as a fixed header carries it.
        let by_wire = arena.intern_wire(&[0x00, 0x02, 0x94]);
        assert!(std::sync::Arc::ptr_eq(&by_value, &by_wire));
        assert_eq!(arena.len(), 1);
    }
}
