//! Packets and the KAR route tag they carry through the core.

use crate::time::SimTime;
use kar_rns::BigUint;
use kar_topology::NodeId;
use std::fmt;

/// Identifier of one transport flow (e.g. one iperf TCP connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Transport-level payload classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data segment carrying `seq .. seq + payload`.
    Data,
    /// A cumulative acknowledgment: everything below `ack` was received.
    Ack {
        /// The next byte the receiver expects.
        ack: u64,
        /// The receiver's observed reordering displacement, in segments —
        /// the simulator's stand-in for Linux's SACK-based adaptive
        /// `tcp_reordering` metric (senders raise their duplicate-ACK
        /// threshold accordingly).
        reorder: u16,
        /// Set when this ACK was triggered by a duplicate segment — the
        /// stand-in for a DSACK block, letting senders undo spurious
        /// congestion-window reductions as Linux does.
        dsack: bool,
    },
    /// A probe used by tests and delivery-ratio experiments.
    Probe,
}

/// The KAR header attached by the ingress edge: the RNS route ID plus the
/// deflection state a core switch needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTag {
    /// The CRT-encoded route ID (paper Eq. 4).
    pub route_id: BigUint,
    /// Set once the packet has been deflected at least once (used by the
    /// hot-potato technique, which random-walks after the first
    /// deflection).
    pub deflected: bool,
}

impl RouteTag {
    /// Wraps a route ID with clean deflection state.
    pub fn new(route_id: BigUint) -> Self {
        RouteTag {
            route_id,
            deflected: false,
        }
    }
}

/// A simulated packet.
///
/// `size_bytes` is the on-wire size (headers included) used for
/// serialization delay; `seq`/`kind` carry transport semantics.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique per-simulation id (assigned by the engine).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Transport sequence number (byte offset for data segments).
    pub seq: u64,
    /// Data / ACK / probe.
    pub kind: PacketKind,
    /// On-wire size in bytes.
    pub size_bytes: u32,
    /// Originating edge node.
    pub src: NodeId,
    /// Destination edge node.
    pub dst: NodeId,
    /// KAR route tag (attached at ingress, stripped at egress).
    pub route: Option<RouteTag>,
    /// Remaining hop budget; the engine drops the packet at zero.
    pub ttl: u16,
    /// Hops traversed so far.
    pub hops: u16,
    /// Number of deflections experienced.
    pub deflections: u16,
    /// Creation time (for latency accounting).
    pub created: SimTime,
}

impl Packet {
    /// Decrements the TTL, returning `false` when expired.
    pub fn tick_ttl(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        self.hops += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ttl: u16) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src: NodeId(0),
            dst: NodeId(1),
            route: None,
            ttl,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn ttl_counts_down_and_expires() {
        let mut p = pkt(2);
        assert!(p.tick_ttl());
        assert!(p.tick_ttl());
        assert!(!p.tick_ttl());
        assert_eq!(p.hops, 2);
    }

    #[test]
    fn route_tag_starts_undeflected() {
        let tag = RouteTag::new(BigUint::from(44u64));
        assert!(!tag.deflected);
        assert_eq!(tag.route_id.to_u64(), Some(44));
    }
}
