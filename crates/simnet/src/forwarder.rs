//! The pluggable core-switch forwarding interface.
//!
//! The paper modified an OpenFlow software switch so that the output port
//! is computed from the packet's route ID instead of looked up in a flow
//! table. [`Forwarder`] is that extension point: the engine calls it for
//! every packet arriving at a core switch, handing it the local view a
//! real switch would have — its own switch ID, the input port, and the
//! liveness of each port. Implementations live in the `kar` crate
//! (modulo forwarding with HP/AVP/NIP deflection) and in `kar-baselines`
//! (drop-on-failure, table-based fast failover, …).

use crate::adversary::Behavior;
use crate::packet::{Packet, RouteTag};
use crate::time::SimTime;
use kar_rns::Reducer;
use kar_topology::{NodeId, PortIx, Topology};
use rand::rngs::StdRng;

/// Everything a core switch can see when making a forwarding decision.
pub struct SwitchCtx<'a> {
    /// The network graph (immutable wiring; used for port lookups, not
    /// for global routing state — KAR cores are stateless).
    pub topo: &'a Topology,
    /// The switch making the decision.
    pub node: NodeId,
    /// This switch's ID (`None` never happens for core switches).
    pub switch_id: u64,
    /// Port the packet came in on (`None` for locally injected packets).
    pub in_port: Option<PortIx>,
    /// `ports[p]` is `true` iff the link behind port `p` is up.
    pub ports: &'a [bool],
    /// Current simulation time.
    pub now: SimTime,
    /// Precomputed reduction constants for `switch_id` (the fast-path
    /// dataplane; `None` falls back to plain division, bit-identically).
    pub reducer: Option<&'a Reducer>,
    /// This switch's assigned (possibly Byzantine) behavior. The engine
    /// enforces it *around* the forwarder call; it is surfaced here so
    /// forwarders and inspectors can observe which switches are
    /// declared adversarial. Always [`Behavior::Honest`] unless the
    /// scenario configured otherwise.
    pub behavior: Behavior,
}

impl SwitchCtx<'_> {
    /// Returns `true` if `port` exists and its link is currently up.
    pub fn port_available(&self, port: PortIx) -> bool {
        self.ports.get(port as usize).copied().unwrap_or(false)
    }

    /// Iterator over the indexes of all healthy ports.
    pub fn healthy_ports(&self) -> impl Iterator<Item = PortIx> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .map(|(p, _)| p as PortIx)
    }

    /// `route_id mod switch_id` — the KAR forwarding operation.
    ///
    /// Uses, in order: the tag's memoized residue from a previous visit
    /// to this switch, the engine's precomputed [`Reducer`], or plain
    /// [`kar_rns::BigUint::rem_u64`]. All three produce the same value
    /// bit for bit; the memo is refreshed so the next visit (deflection
    /// loops, controller bounces) is free.
    pub fn residue(&self, tag: &mut RouteTag) -> u64 {
        if let Some(r) = tag.memoized_residue(self.switch_id) {
            debug_assert_eq!(r, tag.route_id.rem_u64(self.switch_id));
            return r;
        }
        let r = match self.reducer {
            Some(red) => {
                debug_assert_eq!(red.modulus(), self.switch_id);
                red.rem(&tag.route_id)
            }
            None => tag.route_id.rem_u64(self.switch_id),
        };
        tag.memoize_residue(self.switch_id, r);
        r
    }
}

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// No usable route: an ingress edge without an installed route, or a
    /// deflecting forwarder with no deflection candidate left.
    NoRoute,
    /// The packet reached a core switch without a route tag (nothing to
    /// reduce — an edge-logic bug or a baseline that strips tags).
    MissingTag,
    /// The residue named a real port whose link is observed down, and
    /// the forwarder does not deflect.
    PortDown,
    /// The residue is `≥` the switch's port count — the route ID was not
    /// encoded for this switch (e.g. a deflected packet at a foreign
    /// switch under the no-deflection dataplane).
    ResidueOutOfRange,
    /// Same symptom as [`DropReason::ResidueOutOfRange`], but the tag
    /// was tampered with by a Byzantine switch upstream — the residue is
    /// garbage, not a routing mistake. Split out so corruption is
    /// detectable in the drop tables.
    CorruptedResidue,
    /// A Byzantine switch ([`Behavior::DropSilently`]) discarded the
    /// packet in transit.
    AdversaryDrop,
    /// The hop budget ran out (possible with random deflection loops).
    TtlExpired,
    /// A drop-tail queue was full.
    QueueOverflow,
    /// The packet was queued or in flight on a link that failed.
    LinkFailure,
    /// The forwarder returned a port whose link is down or absent.
    BadPort,
    /// An edge declined to reroute a misdelivered packet.
    Misdelivery,
}

impl DropReason {
    /// Stable kebab-case name (used in metric names and event tags).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::NoRoute => "no-route",
            DropReason::MissingTag => "missing-tag",
            DropReason::PortDown => "port-down",
            DropReason::ResidueOutOfRange => "residue-out-of-range",
            DropReason::CorruptedResidue => "corrupted-residue",
            DropReason::AdversaryDrop => "adversary-drop",
            DropReason::TtlExpired => "ttl-expired",
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::LinkFailure => "link-failure",
            DropReason::BadPort => "bad-port",
            DropReason::Misdelivery => "misdelivery",
        }
    }

    /// Every reason, in declaration order (drives `kar-inspect`'s drop
    /// table and the verifier's counters).
    pub const ALL: [DropReason; 11] = [
        DropReason::NoRoute,
        DropReason::MissingTag,
        DropReason::PortDown,
        DropReason::ResidueOutOfRange,
        DropReason::CorruptedResidue,
        DropReason::AdversaryDrop,
        DropReason::TtlExpired,
        DropReason::QueueOverflow,
        DropReason::LinkFailure,
        DropReason::BadPort,
        DropReason::Misdelivery,
    ];
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of a forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Transmit out of this port.
    Output(PortIx),
    /// Discard the packet.
    Drop(DropReason),
}

/// A core-switch forwarding engine.
///
/// One instance serves the whole network (the engine passes the per-switch
/// context on every call); stateful baselines key internal tables by
/// [`SwitchCtx::node`]. KAR itself needs no such state — that is the
/// paper's "stateless core" property, checked in `kar-baselines`'s
/// feature-matrix tests.
pub trait Forwarder {
    /// Decides where `pkt`, arriving at the switch described by `ctx`,
    /// goes next. May mutate the packet (e.g. mark it deflected).
    ///
    /// `rng` is the engine's seeded RNG — using it (rather than an
    /// internal one) keeps whole-simulation runs reproducible.
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        rng: &mut StdRng,
    ) -> ForwardDecision;

    /// Human-readable name used in experiment output ("NIP", "HP", …).
    fn name(&self) -> &str;

    /// Number of forwarding-table entries this scheme stores at `node`
    /// (0 for stateless schemes — the Table 2 "state in core" metric).
    fn state_entries(&self, node: NodeId) -> usize {
        let _ = node;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::{LinkParams, TopologyBuilder};

    #[test]
    fn ctx_port_queries() {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        let y = b.core("Y", 13);
        b.link(a, x, LinkParams::default());
        b.link(a, y, LinkParams::default());
        let topo = b.build().unwrap();
        let ports = vec![true, false];
        let ctx = SwitchCtx {
            topo: &topo,
            node: a,
            switch_id: 7,
            in_port: Some(0),
            ports: &ports,
            now: SimTime::ZERO,
            reducer: None,
            behavior: Behavior::Honest,
        };
        assert!(ctx.port_available(0));
        assert!(!ctx.port_available(1));
        assert!(!ctx.port_available(9));
        assert_eq!(ctx.healthy_ports().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn residue_agrees_with_and_without_reducer_and_memoizes() {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 29);
        let x = b.core("X", 31);
        b.link(a, x, LinkParams::default());
        let topo = b.build().unwrap();
        let ports = vec![true];
        let reducer = Reducer::new(29);
        let route_id = kar_rns::BigUint::from(123_456_789_012_345u64);
        let slow = SwitchCtx {
            topo: &topo,
            node: a,
            switch_id: 29,
            in_port: None,
            ports: &ports,
            now: SimTime::ZERO,
            reducer: None,
            behavior: Behavior::Honest,
        };
        let fast = SwitchCtx {
            reducer: Some(&reducer),
            ports: &ports,
            ..slow
        };
        let mut tag = RouteTag::new(route_id.clone());
        let expect = route_id.rem_u64(29);
        assert_eq!(slow.residue(&mut tag.clone()), expect);
        assert_eq!(fast.residue(&mut tag), expect);
        // The fast path left a memo behind for the next visit.
        assert_eq!(tag.memoized_residue(29), Some(expect));
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::TtlExpired.to_string(), "ttl-expired");
        assert_eq!(DropReason::QueueOverflow.to_string(), "queue-overflow");
        assert_eq!(
            DropReason::CorruptedResidue.to_string(),
            "corrupted-residue"
        );
        assert_eq!(DropReason::AdversaryDrop.to_string(), "adversary-drop");
    }

    /// `ALL` covers every variant exactly once and each `as_str` name is
    /// distinct kebab-case — metric names and drop tables key on these
    /// strings, so a collision or an unlisted variant would silently
    /// merge or hide a drop class.
    #[test]
    fn drop_reason_as_str_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for reason in DropReason::ALL {
            // Exhaustiveness: this match has no wildcard arm, so adding
            // a variant without extending `ALL` (checked below via the
            // count) or `as_str` fails to compile.
            let name = match reason {
                DropReason::NoRoute
                | DropReason::MissingTag
                | DropReason::PortDown
                | DropReason::ResidueOutOfRange
                | DropReason::CorruptedResidue
                | DropReason::AdversaryDrop
                | DropReason::TtlExpired
                | DropReason::QueueOverflow
                | DropReason::LinkFailure
                | DropReason::BadPort
                | DropReason::Misdelivery => reason.as_str(),
            };
            assert!(seen.insert(name), "duplicate as_str {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{name} is not kebab-case"
            );
        }
        assert_eq!(seen.len(), DropReason::ALL.len());
        // ALL itself holds no duplicates.
        let distinct: std::collections::HashSet<_> = DropReason::ALL.into_iter().collect();
        assert_eq!(distinct.len(), DropReason::ALL.len());
    }
}
