//! The pluggable core-switch forwarding interface.
//!
//! The paper modified an OpenFlow software switch so that the output port
//! is computed from the packet's route ID instead of looked up in a flow
//! table. [`Forwarder`] is that extension point: the engine calls it for
//! every packet arriving at a core switch, handing it the local view a
//! real switch would have — its own switch ID, the input port, and the
//! liveness of each port. Implementations live in the `kar` crate
//! (modulo forwarding with HP/AVP/NIP deflection) and in `kar-baselines`
//! (drop-on-failure, table-based fast failover, …).

use crate::packet::Packet;
use crate::time::SimTime;
use kar_topology::{NodeId, PortIx, Topology};
use rand::rngs::StdRng;

/// Everything a core switch can see when making a forwarding decision.
pub struct SwitchCtx<'a> {
    /// The network graph (immutable wiring; used for port lookups, not
    /// for global routing state — KAR cores are stateless).
    pub topo: &'a Topology,
    /// The switch making the decision.
    pub node: NodeId,
    /// This switch's ID (`None` never happens for core switches).
    pub switch_id: u64,
    /// Port the packet came in on (`None` for locally injected packets).
    pub in_port: Option<PortIx>,
    /// `ports[p]` is `true` iff the link behind port `p` is up.
    pub ports: &'a [bool],
    /// Current simulation time.
    pub now: SimTime,
}

impl SwitchCtx<'_> {
    /// Returns `true` if `port` exists and its link is currently up.
    pub fn port_available(&self, port: PortIx) -> bool {
        self.ports.get(port as usize).copied().unwrap_or(false)
    }

    /// Iterator over the indexes of all healthy ports.
    pub fn healthy_ports(&self) -> impl Iterator<Item = PortIx> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .map(|(p, _)| p as PortIx)
    }
}

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// The forwarder chose to drop (e.g. no-deflection baseline hitting a
    /// failed primary port).
    NoRoute,
    /// The hop budget ran out (possible with random deflection loops).
    TtlExpired,
    /// A drop-tail queue was full.
    QueueOverflow,
    /// The packet was queued or in flight on a link that failed.
    LinkFailure,
    /// The forwarder returned a port whose link is down or absent.
    BadPort,
    /// An edge declined to reroute a misdelivered packet.
    Misdelivery,
}

impl DropReason {
    /// Stable kebab-case name (used in metric names and event tags).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::NoRoute => "no-route",
            DropReason::TtlExpired => "ttl-expired",
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::LinkFailure => "link-failure",
            DropReason::BadPort => "bad-port",
            DropReason::Misdelivery => "misdelivery",
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of a forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Transmit out of this port.
    Output(PortIx),
    /// Discard the packet.
    Drop(DropReason),
}

/// A core-switch forwarding engine.
///
/// One instance serves the whole network (the engine passes the per-switch
/// context on every call); stateful baselines key internal tables by
/// [`SwitchCtx::node`]. KAR itself needs no such state — that is the
/// paper's "stateless core" property, checked in `kar-baselines`'s
/// feature-matrix tests.
pub trait Forwarder {
    /// Decides where `pkt`, arriving at the switch described by `ctx`,
    /// goes next. May mutate the packet (e.g. mark it deflected).
    ///
    /// `rng` is the engine's seeded RNG — using it (rather than an
    /// internal one) keeps whole-simulation runs reproducible.
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        rng: &mut StdRng,
    ) -> ForwardDecision;

    /// Human-readable name used in experiment output ("NIP", "HP", …).
    fn name(&self) -> &str;

    /// Number of forwarding-table entries this scheme stores at `node`
    /// (0 for stateless schemes — the Table 2 "state in core" metric).
    fn state_entries(&self, node: NodeId) -> usize {
        let _ = node;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::{LinkParams, TopologyBuilder};

    #[test]
    fn ctx_port_queries() {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        let y = b.core("Y", 13);
        b.link(a, x, LinkParams::default());
        b.link(a, y, LinkParams::default());
        let topo = b.build().unwrap();
        let ports = vec![true, false];
        let ctx = SwitchCtx {
            topo: &topo,
            node: a,
            switch_id: 7,
            in_port: Some(0),
            ports: &ports,
            now: SimTime::ZERO,
        };
        assert!(ctx.port_available(0));
        assert!(!ctx.port_available(1));
        assert!(!ctx.port_available(9));
        assert_eq!(ctx.healthy_ports().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::TtlExpired.to_string(), "ttl-expired");
        assert_eq!(DropReason::QueueOverflow.to_string(), "queue-overflow");
    }
}
