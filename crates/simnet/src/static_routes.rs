//! A minimal [`EdgeLogic`] with statically installed route tags.
//!
//! Useful for tests and microbenchmarks that need packets to carry a
//! fixed route ID without the full KAR controller: each `(src, dst)`
//! pair maps to a pre-encoded route ID and an uplink port. The real
//! controller-backed edge logic lives in the `kar` crate.

use crate::host::EdgeLogic;
use crate::packet::{Packet, RouteTag};
use kar_rns::BigUint;
use kar_topology::{NodeId, PortIx, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Static `(src, dst) → (route id, uplink port)` edge logic.
#[derive(Debug, Default, Clone)]
pub struct StaticRoutes {
    /// Route IDs are stored shared so every injected packet's tag bumps
    /// a refcount instead of cloning limbs.
    routes: HashMap<(NodeId, NodeId), (Arc<BigUint>, PortIx)>,
}

impl StaticRoutes {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the route tag used for packets entering at `src` destined
    /// to `dst`.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, route_id: BigUint, uplink: PortIx) {
        self.routes.insert((src, dst), (Arc::new(route_id), uplink));
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

impl EdgeLogic for StaticRoutes {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        let (route_id, port) = self.routes.get(&(edge, pkt.dst))?;
        pkt.route = Some(RouteTag::new(route_id.clone()));
        Some(*port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimTime;
    use kar_topology::{LinkParams, TopologyBuilder};

    #[test]
    fn ingress_uses_table_and_misses_return_none() {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        let d = b.edge("D");
        b.link(s, c, LinkParams::default());
        b.link(c, d, LinkParams::default());
        let topo = b.build().unwrap();

        let mut table = StaticRoutes::new();
        assert!(table.is_empty());
        table.insert(s, d, BigUint::from(1u64), 0);
        assert_eq!(table.len(), 1);

        let mut pkt = Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src: s,
            dst: d,
            route: None,
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        assert_eq!(table.ingress(&topo, s, &mut pkt), Some(0));
        assert!(pkt.route.is_some());

        let mut back = pkt.clone();
        back.dst = s;
        assert_eq!(table.ingress(&topo, d, &mut back), None);
    }
}
