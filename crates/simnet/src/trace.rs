//! Optional per-packet path tracing.
//!
//! When enabled (see [`crate::SimConfig::trace_paths`]), the engine
//! records the node sequence every packet traverses and its fate. This
//! is the simulator's `tcpdump`: tests assert exact deflection paths
//! with it, and examples print them.

use crate::forwarder::DropReason;
use kar_topology::{NodeId, Topology};
use std::collections::HashMap;

/// Terminal state of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Still inside the network.
    InFlight,
    /// Delivered to its destination edge.
    Delivered,
    /// Dropped for this reason.
    Dropped(DropReason),
    /// The simulation ended while the packet was still in flight — the
    /// journey is incomplete, not lost (see [`TraceLog::finalize`]).
    TruncatedAtSimEnd,
}

/// The recorded journey of one packet.
#[derive(Debug, Clone)]
pub struct PacketTrace {
    /// Nodes visited, in order (starting at the ingress edge).
    pub path: Vec<NodeId>,
    /// How the journey ended.
    pub fate: PacketFate,
}

impl PacketTrace {
    /// Renders the path as `AS1 → SW10 → …` using topology names. Nodes
    /// absent from `topo` (a stale trace rendered against a regenerated
    /// topology) get a `node<i>` fallback instead of panicking.
    pub fn pretty(&self, topo: &Topology) -> String {
        let names: Vec<String> = self
            .path
            .iter()
            .map(|&n| {
                if n.0 < topo.node_count() {
                    topo.node(n).name.clone()
                } else {
                    format!("node{}", n.0)
                }
            })
            .collect();
        format!("{} [{:?}]", names.join(" → "), self.fate)
    }

    /// Number of times each node appears (loop diagnosis).
    pub fn revisits(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.path.iter().filter(|&&n| !seen.insert(n)).count()
    }
}

/// Collected traces, keyed by packet id.
#[derive(Debug, Default)]
pub struct TraceLog {
    traces: HashMap<u64, PacketTrace>,
}

impl TraceLog {
    pub(crate) fn visit(&mut self, pkt_id: u64, node: NodeId) {
        self.traces
            .entry(pkt_id)
            .or_insert_with(|| PacketTrace {
                path: Vec::new(),
                fate: PacketFate::InFlight,
            })
            .path
            .push(node);
    }

    pub(crate) fn finish(&mut self, pkt_id: u64, fate: PacketFate) {
        if let Some(t) = self.traces.get_mut(&pkt_id) {
            t.fate = fate;
        }
    }

    /// Marks every trace still [`PacketFate::InFlight`] as
    /// [`PacketFate::TruncatedAtSimEnd`] and returns how many were
    /// converted. Called when a simulation ends (see
    /// [`crate::Sim::finalize_traces`]) so no trace is left with the
    /// misleading in-flight fate.
    pub fn finalize(&mut self) -> usize {
        let mut truncated = 0;
        for t in self.traces.values_mut() {
            if t.fate == PacketFate::InFlight {
                t.fate = PacketFate::TruncatedAtSimEnd;
                truncated += 1;
            }
        }
        truncated
    }

    /// The trace of a packet, if it was seen.
    pub fn get(&self, pkt_id: u64) -> Option<&PacketTrace> {
        self.traces.get(&pkt_id)
    }

    /// Number of traced packets.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether any packet was traced.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterator over `(packet id, trace)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PacketTrace)> {
        self.traces.iter().map(|(&id, t)| (id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_visits_and_fate() {
        let mut log = TraceLog::default();
        log.visit(7, NodeId(0));
        log.visit(7, NodeId(3));
        log.visit(7, NodeId(0));
        log.finish(7, PacketFate::Delivered);
        let t = log.get(7).unwrap();
        assert_eq!(t.path, vec![NodeId(0), NodeId(3), NodeId(0)]);
        assert_eq!(t.fate, PacketFate::Delivered);
        assert_eq!(t.revisits(), 1);
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert!(log.get(8).is_none());
    }

    #[test]
    fn finish_on_unknown_packet_is_noop() {
        let mut log = TraceLog::default();
        log.finish(1, PacketFate::Dropped(DropReason::TtlExpired));
        assert!(log.is_empty());
    }

    #[test]
    fn finalize_truncates_only_in_flight_traces() {
        let mut log = TraceLog::default();
        log.visit(1, NodeId(0));
        log.visit(2, NodeId(0));
        log.finish(2, PacketFate::Delivered);
        assert_eq!(log.finalize(), 1);
        assert_eq!(log.get(1).unwrap().fate, PacketFate::TruncatedAtSimEnd);
        assert_eq!(log.get(2).unwrap().fate, PacketFate::Delivered);
        assert_eq!(log.finalize(), 0); // idempotent
    }

    #[test]
    fn pretty_falls_back_on_unknown_nodes() {
        use kar_topology::{LinkParams, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let c = b.core("C", 5);
        b.link(s, c, LinkParams::default());
        let topo = b.build().unwrap();
        let trace = PacketTrace {
            path: vec![NodeId(0), NodeId(42)], // 42 is not in the topology
            fate: PacketFate::TruncatedAtSimEnd,
        };
        let rendered = trace.pretty(&topo);
        assert!(rendered.contains("S → node42"), "{rendered}");
        assert!(rendered.contains("TruncatedAtSimEnd"), "{rendered}");
    }
}
