//! Optional per-packet path tracing.
//!
//! When enabled (see [`crate::SimConfig::trace_paths`]), the engine
//! records the node sequence every packet traverses and its fate. This
//! is the simulator's `tcpdump`: tests assert exact deflection paths
//! with it, and examples print them.

use crate::forwarder::DropReason;
use kar_topology::{NodeId, Topology};
use std::collections::HashMap;

/// Terminal state of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Still inside the network.
    InFlight,
    /// Delivered to its destination edge.
    Delivered,
    /// Dropped for this reason.
    Dropped(DropReason),
}

/// The recorded journey of one packet.
#[derive(Debug, Clone)]
pub struct PacketTrace {
    /// Nodes visited, in order (starting at the ingress edge).
    pub path: Vec<NodeId>,
    /// How the journey ended.
    pub fate: PacketFate,
}

impl PacketTrace {
    /// Renders the path as `AS1 → SW10 → …` using topology names.
    pub fn pretty(&self, topo: &Topology) -> String {
        let names: Vec<&str> = self
            .path
            .iter()
            .map(|&n| topo.node(n).name.as_str())
            .collect();
        format!("{} [{:?}]", names.join(" → "), self.fate)
    }

    /// Number of times each node appears (loop diagnosis).
    pub fn revisits(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.path.iter().filter(|&&n| !seen.insert(n)).count()
    }
}

/// Collected traces, keyed by packet id.
#[derive(Debug, Default)]
pub struct TraceLog {
    traces: HashMap<u64, PacketTrace>,
}

impl TraceLog {
    pub(crate) fn visit(&mut self, pkt_id: u64, node: NodeId) {
        self.traces
            .entry(pkt_id)
            .or_insert_with(|| PacketTrace {
                path: Vec::new(),
                fate: PacketFate::InFlight,
            })
            .path
            .push(node);
    }

    pub(crate) fn finish(&mut self, pkt_id: u64, fate: PacketFate) {
        if let Some(t) = self.traces.get_mut(&pkt_id) {
            t.fate = fate;
        }
    }

    /// The trace of a packet, if it was seen.
    pub fn get(&self, pkt_id: u64) -> Option<&PacketTrace> {
        self.traces.get(&pkt_id)
    }

    /// Number of traced packets.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether any packet was traced.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterator over `(packet id, trace)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PacketTrace)> {
        self.traces.iter().map(|(&id, t)| (id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_visits_and_fate() {
        let mut log = TraceLog::default();
        log.visit(7, NodeId(0));
        log.visit(7, NodeId(3));
        log.visit(7, NodeId(0));
        log.finish(7, PacketFate::Delivered);
        let t = log.get(7).unwrap();
        assert_eq!(t.path, vec![NodeId(0), NodeId(3), NodeId(0)]);
        assert_eq!(t.fate, PacketFate::Delivered);
        assert_eq!(t.revisits(), 1);
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert!(log.get(8).is_none());
    }

    #[test]
    fn finish_on_unknown_packet_is_noop() {
        let mut log = TraceLog::default();
        log.finish(1, PacketFate::Dropped(DropReason::TtlExpired));
        assert!(log.is_empty());
    }
}
