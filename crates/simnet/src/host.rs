//! Edge-node interfaces: applications and edge (ingress/egress) logic.
//!
//! In KAR, edge nodes are the only stateful places: they attach a route ID
//! when a packet enters the core and strip it on exit (paper §2,
//! "Step II"/"Step VI"). Transport endpoints (our TCP model, probe
//! generators) run as [`App`]s on edge nodes.

use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::SimTime;
use kar_topology::{LinkId, NodeId, PortIx, Topology};

/// What an application asks the engine to do, accumulated in [`HostCtx`].
#[derive(Debug)]
pub enum AppAction {
    /// Send a freshly built transport segment toward `dst`.
    Send {
        /// Destination edge node.
        dst: NodeId,
        /// Flow id.
        flow: FlowId,
        /// Transport sequence number.
        seq: u64,
        /// Data / ACK / probe.
        kind: PacketKind,
        /// On-wire size in bytes.
        size_bytes: u32,
    },
    /// Request a timer callback at `at` with opaque id `id`.
    Timer {
        /// Absolute expiry time.
        at: SimTime,
        /// Opaque id handed back in [`App::on_timer`].
        id: u64,
    },
    /// Record an application-level observation. When the engine has an
    /// observability layer attached this becomes a `note` event (and a
    /// counter under the node entity); otherwise it is discarded — apps
    /// can observe unconditionally at no cost.
    Observe {
        /// Static label naming the observation (e.g. `"retransmit"`).
        label: &'static str,
        /// Observation value.
        value: u64,
    },
}

/// Execution context handed to applications.
pub struct HostCtx<'a> {
    /// The node the application runs on.
    pub node: NodeId,
    /// Current simulation time.
    pub now: SimTime,
    pub(crate) actions: &'a mut Vec<AppAction>,
}

impl<'a> HostCtx<'a> {
    /// Builds a context that records actions into `actions` — how the
    /// engine invokes apps, and how app unit tests drive them directly.
    pub fn new(node: NodeId, now: SimTime, actions: &'a mut Vec<AppAction>) -> HostCtx<'a> {
        HostCtx { node, now, actions }
    }

    /// Emits a transport segment toward `dst`.
    pub fn send(&mut self, dst: NodeId, flow: FlowId, seq: u64, kind: PacketKind, size_bytes: u32) {
        self.actions.push(AppAction::Send {
            dst,
            flow,
            seq,
            kind,
            size_bytes,
        });
    }

    /// Schedules a timer `delay` from now; `id` is returned verbatim in
    /// [`App::on_timer`]. Timers cannot be cancelled — apps ignore stale
    /// ids instead (the standard DES idiom).
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        self.actions.push(AppAction::Timer {
            at: self.now + delay,
            id,
        });
    }

    /// Records an application-level observation (a `note` event when the
    /// engine has observability attached; free otherwise).
    pub fn observe(&mut self, label: &'static str, value: u64) {
        self.actions.push(AppAction::Observe { label, value });
    }
}

/// A transport application running on an edge node.
pub trait App {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>);

    /// Called when a packet destined to this node is delivered (after the
    /// edge stripped the route tag).
    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: &Packet);

    /// Called when a timer set via [`HostCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64);
}

/// Decision of the edge logic for a packet that surfaced at the wrong
/// edge (paper §2.1, final remark).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RerouteDecision {
    /// Re-inject with a rewritten route tag out of `port`, after the
    /// controller round-trip `delay` (the paper's "second approach").
    Forward {
        /// Output port at the edge node.
        port: PortIx,
        /// Controller consultation latency before re-injection.
        delay: SimTime,
    },
    /// Give up on the packet (the paper's "first approach" degenerate
    /// case, or an unreachable destination).
    Drop,
}

/// Edge-node ingress/egress logic: attaches, rewrites and strips route
/// tags. Implemented by the KAR controller/edge pair in the `kar` crate
/// and by baseline schemes.
pub trait EdgeLogic {
    /// Prepares a packet entering the network at `edge`: attach the route
    /// tag and choose the uplink port. Returning `None` drops the packet
    /// (no route known).
    fn ingress(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx>;

    /// Handles a packet that arrived at an edge that is *not* its
    /// destination. The default consults nobody and drops.
    fn reroute(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> RerouteDecision {
        let _ = (topo, edge, pkt);
        RerouteDecision::Drop
    }

    /// Strips the route tag on delivery. The default clears it.
    fn egress(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) {
        let _ = (topo, edge);
        pkt.route = None;
    }

    /// Called when the failure detector resolves a link state change
    /// (i.e. *after* the detection delay); `up` is the newly observed
    /// state. The default ignores it; recovery-capable controllers
    /// re-encode affected routes here.
    fn on_link_event(&mut self, topo: &Topology, link: LinkId, up: bool, now: SimTime) {
        let _ = (topo, link, up, now);
    }

    /// Observes a packet arriving at core switch `node` over `in_port`
    /// (`None` for locally injected packets), *before* the forwarder
    /// computes the output. Hierarchical controllers rewrite the route
    /// tag here when the packet just crossed a domain boundary — a
    /// planned re-encode, not a fault. The default does nothing, so
    /// flat deployments keep byte-identical behavior.
    fn core_ingress(
        &mut self,
        topo: &Topology,
        node: NodeId,
        in_port: Option<PortIx>,
        pkt: &mut Packet,
    ) {
        let _ = (topo, node, in_port, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_ctx_accumulates_actions() {
        let mut actions = Vec::new();
        let mut ctx = HostCtx {
            node: NodeId(0),
            now: SimTime::from_millis(5),
            actions: &mut actions,
        };
        ctx.send(NodeId(1), FlowId(2), 100, PacketKind::Data, 1500);
        ctx.set_timer(SimTime::from_millis(10), 7);
        assert_eq!(actions.len(), 2);
        match &actions[1] {
            AppAction::Timer { at, id } => {
                assert_eq!(*at, SimTime::from_millis(15));
                assert_eq!(*id, 7);
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }
}
