//! A bucketed calendar queue for the event scheduler.
//!
//! The engine's pending-event set is dominated by near-future events
//! (per-packet `TxDone`/`Arrive` within microseconds of `now`) with a
//! thin tail of far-future ones (TCP retransmit timers, fault trains
//! seconds out). A global `BinaryHeap` pays `O(log n)` per operation on
//! that whole set; a calendar queue [R. Brown, CACM 1988] pays `O(1)`
//! amortized for the near-future bulk by hashing events into fixed-width
//! time buckets, and parks the far tail in an overflow heap that is
//! consulted only when the calendar window rotates past it.
//!
//! **Determinism contract:** [`CalendarQueue::pop`] yields entries in
//! exactly ascending `(at, seq)` order — the same total order the
//! previous `BinaryHeap<Reverse<HeapEntry>>` produced. The engine's
//! byte-identical replay guarantee rests on this; a proptest in
//! `tests/calendar_order.rs` races the two structures on randomized
//! event trains.
//!
//! Invariants (checked in debug builds):
//! * every bucketed entry's slot (`at / width`) lies in the current
//!   window `[window_start, window_start + nbuckets)`;
//! * every overflow entry's slot lies at or beyond the window end;
//! * the serving cursor never passes an occupied slot.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled entry: the payload plus its `(at, seq)` sort key.
#[derive(Debug)]
pub struct CalendarEntry<T> {
    /// Due time.
    pub at: SimTime,
    /// Tie-break sequence number (unique, assigned by the scheduler).
    pub seq: u64,
    /// The scheduled payload.
    pub item: T,
}

impl<T> PartialEq for CalendarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for CalendarEntry<T> {}
impl<T> PartialOrd for CalendarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for CalendarEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct Bucket<T> {
    items: Vec<CalendarEntry<T>>,
    /// `true` when `items` is sorted descending by `(at, seq)` (so the
    /// minimum pops from the back). Cleared on insert, re-established
    /// lazily the next time the bucket is served.
    sorted: bool,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            items: Vec::new(),
            sorted: true,
        }
    }
}

/// A monotone priority queue over `(SimTime, seq)` keys.
///
/// "Monotone" is the engine's usage pattern: entries are only pushed at
/// or after the key of the most recently popped entry (time never runs
/// backwards inside a simulation). Pushing earlier keys is still
/// *correct* — the queue rewinds its window, spilling current buckets to
/// the overflow heap — just slower, and only happens when a driver
/// injects new work between `run_until` calls.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Bucket width in nanoseconds (a power of two, so slot = at >> shift).
    shift: u32,
    buckets: Vec<Bucket<T>>,
    /// First slot of the current window.
    window_start: u64,
    /// Slot currently being served; `window_start ≤ cursor < window_start
    /// + nbuckets`.
    cursor: u64,
    /// Entries whose slot lies beyond the current window.
    overflow: BinaryHeap<Reverse<CalendarEntry<T>>>,
    /// Entries currently in buckets (total length minus overflow).
    in_buckets: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        // 1 µs buckets × 1024 ≈ a 1 ms window: wide enough that packet
        // serialization/propagation events land in the calendar, narrow
        // enough that a bucket holds a handful of entries.
        CalendarQueue::with_geometry(10, 1024)
    }
}

impl<T> CalendarQueue<T> {
    /// Creates a queue with `1 << width_shift` ns buckets, `nbuckets` of
    /// them per window rotation.
    pub fn with_geometry(width_shift: u32, nbuckets: usize) -> Self {
        assert!(nbuckets > 0, "calendar needs at least one bucket");
        CalendarQueue {
            shift: width_shift,
            buckets: (0..nbuckets).map(|_| Bucket::default()).collect(),
            window_start: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            in_buckets: 0,
        }
    }

    /// Total number of pending entries.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot_of(&self, at: SimTime) -> u64 {
        at.0 >> self.shift
    }

    #[inline]
    fn window_end(&self) -> u64 {
        self.window_start + self.buckets.len() as u64
    }

    /// Schedules `item` at `(at, seq)`. `seq` must be unique across the
    /// queue's lifetime (the engine's event counter guarantees this).
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let slot = self.slot_of(at);
        if slot < self.cursor {
            if slot >= self.window_start {
                // Still inside the window: the slots behind the cursor
                // are already drained, so serving can simply back up.
                self.cursor = slot;
            } else {
                self.rewind_to(slot);
            }
        }
        let entry = CalendarEntry { at, seq, item };
        if slot < self.window_end() {
            let n = self.buckets.len() as u64;
            let b = &mut self.buckets[(slot % n) as usize];
            b.items.push(entry);
            b.sorted = false;
            self.in_buckets += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Rewinds the window so `slot` becomes servable again. Only
    /// triggered by a push earlier than the serving cursor (a driver
    /// injecting work after the window skipped ahead over idle time).
    fn rewind_to(&mut self, slot: u64) {
        // Anything already bucketed may lie beyond the rewound window;
        // spill it all to overflow and restart the window at `slot`.
        for b in &mut self.buckets {
            self.overflow.extend(b.items.drain(..).map(Reverse));
            b.sorted = true;
        }
        self.in_buckets = 0;
        self.window_start = slot;
        self.cursor = slot;
        self.refill();
    }

    /// Moves every overflow entry due inside the current window into its
    /// bucket.
    fn refill(&mut self) {
        let end = self.window_end();
        let n = self.buckets.len() as u64;
        while let Some(Reverse(head)) = self.overflow.peek() {
            let slot = self.slot_of(head.at);
            if slot >= end {
                break;
            }
            let Reverse(entry) = self.overflow.pop().expect("peeked entry exists");
            debug_assert!(slot >= self.window_start);
            let b = &mut self.buckets[(slot % n) as usize];
            b.items.push(entry);
            b.sorted = false;
            self.in_buckets += 1;
        }
    }

    /// Advances the cursor to the next occupied slot (rotating the
    /// window and refilling from overflow as needed). Returns `false`
    /// when the queue is empty.
    fn seek(&mut self) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.buckets.len() as u64;
        loop {
            if self.in_buckets == 0 {
                // Nothing inside the window: jump straight to the
                // overflow head's rotation instead of spinning.
                let head_at = match self.overflow.peek() {
                    Some(Reverse(e)) => e.at,
                    None => return false,
                };
                let slot = self.slot_of(head_at);
                self.window_start = slot;
                self.cursor = slot;
                self.refill();
                continue;
            }
            if !self.buckets[(self.cursor % n) as usize].items.is_empty() {
                return true;
            }
            self.cursor += 1;
            if self.cursor == self.window_end() {
                self.window_start = self.cursor;
                self.refill();
            }
        }
    }

    /// Sorts (if needed) the bucket under the cursor and returns it.
    fn serve_bucket(&mut self) -> &mut Bucket<T> {
        let n = self.buckets.len() as u64;
        let b = &mut self.buckets[(self.cursor % n) as usize];
        if !b.sorted {
            // Descending, so the minimum `(at, seq)` sits at the back.
            b.items.sort_unstable_by(|a, z| z.cmp(a));
            b.sorted = true;
        }
        b
    }

    /// The `(at, seq)` key of the next entry, without removing it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.seek() {
            return None;
        }
        let b = self.serve_bucket();
        b.items.last().map(|e| (e.at, e.seq))
    }

    /// Removes and returns the entry with the smallest `(at, seq)` key.
    pub fn pop(&mut self) -> Option<CalendarEntry<T>> {
        if !self.seek() {
            return None;
        }
        let entry = self
            .serve_bucket()
            .items
            .pop()
            .expect("seek() landed on an occupied bucket");
        self.in_buckets -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.0, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::default();
        q.push(SimTime(500), 0, 0);
        q.push(SimTime(100), 1, 1);
        q.push(SimTime(100), 2, 2);
        q.push(SimTime(0), 3, 3);
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(0, 3), (100, 1), (100, 2), (500, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut q = CalendarQueue::<u32>::with_geometry(4, 8); // 16 ns × 8 buckets
        q.push(SimTime(1_000_000), 0, 0); // far beyond the 128 ns window
        q.push(SimTime(10), 1, 1);
        q.push(SimTime(5_000_000), 2, 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (1_000_000, 0), (5_000_000, 2)]);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = CalendarQueue::default();
        q.push(SimTime(10), 0, 0);
        q.push(SimTime(30), 1, 1);
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        // Push between pops, at the already-served time.
        q.push(SimTime(10), 2, 2);
        q.push(SimTime(20), 3, 3);
        assert_eq!(drain(&mut q), vec![(10, 2), (20, 3), (30, 1)]);
    }

    #[test]
    fn rewind_after_idle_jump() {
        let mut q = CalendarQueue::<u32>::with_geometry(4, 8);
        // A lone far-future event forces the window to jump on peek…
        q.push(SimTime(1_000_000), 0, 0);
        assert_eq!(q.peek_key(), Some((SimTime(1_000_000), 0)));
        // …then earlier work arrives (driver injecting between runs).
        q.push(SimTime(50), 1, 1);
        q.push(SimTime(999_999), 2, 2);
        assert_eq!(drain(&mut q), vec![(50, 1), (999_999, 2), (1_000_000, 0)]);
    }

    #[test]
    fn same_bucket_ties_break_by_seq() {
        let mut q = CalendarQueue::default();
        for seq in (0..100).rev() {
            q.push(SimTime(42), seq, seq as u32);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(order, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::default();
        q.push(SimTime(7), 0, 0);
        q.push(SimTime(3), 1, 1);
        let key = q.peek_key().unwrap();
        let e = q.pop().unwrap();
        assert_eq!(key, (e.at, e.seq));
        assert_eq!(key, (SimTime(3), 1));
    }
}
