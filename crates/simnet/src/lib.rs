//! # kar-simnet — deterministic discrete-event network simulator
//!
//! The KAR paper evaluates its routing system in Mininet with a modified
//! OpenFlow 1.3 user-space switch. This crate is the corresponding
//! substrate for the Rust reproduction: a packet-level discrete-event
//! simulator with
//!
//! * store-and-forward links (rate, propagation delay, drop-tail queues),
//! * scheduled link failures *and repairs* observed as port status after
//!   a (possibly jittered) detection delay, with declarative dynamic
//!   fault processes — flap trains, SRLG groups, node crashes, targeted
//!   campaigns and rolling churn — via [`FaultPlan`],
//! * per-switch Byzantine [`Behavior`]s (misforwarding, residue
//!   corruption, silent drops) enforced by the engine around any
//!   dataplane, with all-honest runs byte-identical to a build without
//!   the adversary model,
//! * a pluggable core dataplane ([`Forwarder`] — implemented by KAR's
//!   modulo forwarding + deflection, and by baselines),
//! * pluggable edge logic ([`EdgeLogic`] — route-ID attachment/stripping
//!   and the paper's controller-assisted re-encoding at wrong edges),
//! * transport applications ([`App`] — e.g. the TCP model in `kar-tcp`),
//! * full accounting ([`Stats`]) with a conservation invariant
//!   (`injected == delivered + dropped + in_flight`),
//! * bit-identical reproducibility per RNG seed.
//!
//! The simulator is deliberately simple where the paper's metrics do not
//! need more: packets in propagation survive link failure (only queued
//! and serializing packets are lost), and switch forwarding takes zero
//! processing time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod calendar;
mod faults;
mod forwarder;
mod host;
mod modulo;
mod packet;
mod sim;
mod static_routes;
mod stats;
mod time;
mod trace;

pub use adversary::Behavior;
pub use calendar::{CalendarEntry, CalendarQueue};
pub use faults::{sample_srlg_links, srlg_groups, FaultEvent, FaultPlan};
pub use forwarder::{DropReason, ForwardDecision, Forwarder, SwitchCtx};
pub use host::{App, AppAction, EdgeLogic, HostCtx, RerouteDecision};
pub use modulo::ModuloForwarder;
pub use packet::{FlowId, Packet, PacketKind, RouteArena, RouteTag};
pub use sim::{Sim, SimConfig};
pub use static_routes::StaticRoutes;
pub use stats::{FlowStats, Stats};
pub use time::{tx_time, SimTime};
pub use trace::{PacketFate, PacketTrace, TraceLog};
