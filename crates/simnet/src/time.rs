//! Simulation time: a nanosecond counter with convenience arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant (~584 simulated years).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds from whole seconds, saturating at [`SimTime::MAX`] (the
    /// unchecked multiplication used to wrap silently in release builds
    /// for durations beyond ~584 years).
    pub fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Builds from milliseconds, saturating at [`SimTime::MAX`].
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Builds from microseconds, saturating at [`SimTime::MAX`].
    pub fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Nanoseconds needed to serialize `bytes` at `rate_bps` bits per second.
pub fn tx_time(bytes: u32, rate_bps: u64) -> SimTime {
    debug_assert!(rate_bps > 0, "zero-rate link");
    SimTime((bytes as u128 * 8 * 1_000_000_000 / rate_bps as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(500);
        assert_eq!(a + b, SimTime::from_millis(1500));
        assert_eq!(a - b, SimTime::from_millis(500));
        assert_eq!(b.since(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(1500));
    }

    #[test]
    fn conversion_overflow_saturates() {
        // Largest whole-second value that still fits in u64 nanoseconds.
        let max_secs = u64::MAX / 1_000_000_000;
        assert_eq!(
            SimTime::from_secs(max_secs).as_nanos(),
            max_secs * 1_000_000_000
        );
        // One past the boundary used to wrap around in release builds;
        // now it pins to SimTime::MAX.
        assert_eq!(SimTime::from_secs(max_secs + 1), SimTime::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX / 1_000_000 + 1), SimTime::MAX);
        assert_eq!(SimTime::from_micros(u64::MAX / 1_000 + 1), SimTime::MAX);
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        let mut t = SimTime::MAX;
        t += SimTime(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn tx_times() {
        // 1500 B at 200 Mbit/s = 60 µs.
        assert_eq!(tx_time(1500, 200_000_000), SimTime::from_micros(60));
        // 1500 B at 100 Mbit/s = 120 µs.
        assert_eq!(tx_time(1500, 100_000_000), SimTime::from_micros(120));
        assert_eq!(tx_time(0, 1_000_000), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
