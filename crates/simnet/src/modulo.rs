//! The plain RNS modulo dataplane without deflection.
//!
//! Every core switch forwards out of port `route_id mod switch_id` and
//! drops the packet when that port is absent, down, or the packet has no
//! route tag. This is KAR's forwarding *without* its failure reaction —
//! the "no deflection" reference curve in the paper's Fig. 4 — and a
//! convenient minimal [`Forwarder`] for tests. The deflecting dataplane
//! (HP/AVP/NIP) lives in the `kar` crate.

use crate::forwarder::{DropReason, ForwardDecision, Forwarder, SwitchCtx};
use crate::packet::Packet;
use rand::rngs::StdRng;

/// Modulo forwarding with drop-on-failure (no deflection).
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloForwarder;

impl ModuloForwarder {
    /// Creates the forwarder.
    pub fn new() -> Self {
        ModuloForwarder
    }
}

impl Forwarder for ModuloForwarder {
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        _rng: &mut StdRng,
    ) -> ForwardDecision {
        let Some(tag) = &mut pkt.route else {
            return ForwardDecision::Drop(DropReason::MissingTag);
        };
        let port = ctx.residue(tag);
        if ctx.port_available(port) {
            ForwardDecision::Output(port)
        } else if (port as usize) < ctx.ports.len() {
            ForwardDecision::Drop(DropReason::PortDown)
        } else {
            ForwardDecision::Drop(DropReason::ResidueOutOfRange)
        }
    }

    fn name(&self) -> &str {
        "NoDeflection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind, RouteTag};
    use crate::time::SimTime;
    use kar_rns::BigUint;
    use kar_topology::{LinkParams, NodeId, TopologyBuilder};
    use rand::SeedableRng;

    fn world() -> (kar_topology::Topology, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        let y = b.core("Y", 13);
        b.link(a, x, LinkParams::default());
        b.link(a, y, LinkParams::default());
        let topo = b.build().unwrap();
        (topo, a)
    }

    fn pkt(route: Option<u64>) -> Packet {
        Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 64,
            src: NodeId(0),
            dst: NodeId(2),
            route: route.map(|r| RouteTag::new(BigUint::from(r))),
            ttl: 8,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn follows_residue_and_drops_on_failure() {
        let (topo, a) = world();
        let mut fwd = ModuloForwarder::new();
        let mut rng = StdRng::seed_from_u64(0);
        let up = vec![true, true];
        let ctx = SwitchCtx {
            topo: &topo,
            node: a,
            switch_id: 7,
            in_port: None,
            ports: &up,
            now: SimTime::ZERO,
            reducer: None,
            behavior: crate::Behavior::Honest,
        };
        // 8 mod 7 = 1 → port 1.
        assert_eq!(
            fwd.forward(&ctx, &mut pkt(Some(8)), &mut rng),
            ForwardDecision::Output(1)
        );
        // Port 1 down → the residue is fine but the link is not.
        let down = vec![true, false];
        let ctx = SwitchCtx {
            ports: &down,
            ..ctx
        };
        assert_eq!(
            fwd.forward(&ctx, &mut pkt(Some(8)), &mut rng),
            ForwardDecision::Drop(DropReason::PortDown)
        );
        // Residue names a nonexistent port (5 ≥ 2 ports) → the route ID
        // was not encoded for this switch.
        let up = vec![true, true];
        let ctx = SwitchCtx { ports: &up, ..ctx };
        assert_eq!(
            fwd.forward(&ctx, &mut pkt(Some(5)), &mut rng),
            ForwardDecision::Drop(DropReason::ResidueOutOfRange)
        );
        // No route tag → nothing to reduce.
        assert_eq!(
            fwd.forward(&ctx, &mut pkt(None), &mut rng),
            ForwardDecision::Drop(DropReason::MissingTag)
        );
        assert_eq!(fwd.name(), "NoDeflection");
        assert_eq!(fwd.state_entries(a), 0);
    }

    #[test]
    fn reducer_fast_path_matches_plain_division() {
        let (topo, a) = world();
        let mut fwd = ModuloForwarder::new();
        let mut rng = StdRng::seed_from_u64(0);
        let up = vec![true, true];
        let reducer = kar_rns::Reducer::new(7);
        let slow = SwitchCtx {
            topo: &topo,
            node: a,
            switch_id: 7,
            in_port: None,
            ports: &up,
            now: SimTime::ZERO,
            reducer: None,
            behavior: crate::Behavior::Honest,
        };
        let fast = SwitchCtx {
            reducer: Some(&reducer),
            ports: &up,
            ..slow
        };
        for route in [0u64, 1, 8, 5, 44, 660, u64::MAX] {
            assert_eq!(
                fwd.forward(&slow, &mut pkt(Some(route)), &mut rng),
                fwd.forward(&fast, &mut pkt(Some(route)), &mut rng),
                "route {route}"
            );
        }
    }
}
