//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a declarative description of a dynamic failure
//! process — one-shot failures and repairs, flap trains, correlated
//! SRLG group failures, node crashes — that compiles into a concrete,
//! sorted list of [`FaultEvent`]s and schedules them on a [`Sim`].
//! Compilation is a pure function of `(plan, topology)`: all jitter is
//! drawn from a `StdRng` seeded by the plan's own seed, so the same
//! plan replayed on the same topology yields byte-identical schedules
//! regardless of which worker thread runs it.

use crate::sim::Sim;
use crate::time::SimTime;
use kar_topology::{LinkId, NodeId, NodeKind, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeSet;

/// One authored clause of a plan (expanded by [`FaultPlan::compile`]).
#[derive(Debug, Clone)]
enum Clause {
    Down {
        link: LinkId,
        at: SimTime,
    },
    Up {
        link: LinkId,
        at: SimTime,
    },
    Flap {
        link: LinkId,
        start: SimTime,
        period: SimTime,
        duty: f64,
        cycles: u32,
    },
    Group {
        links: Vec<LinkId>,
        at: SimTime,
        repair_after: Option<SimTime>,
    },
    NodeCrash {
        node: NodeId,
        at: SimTime,
        repair_after: Option<SimTime>,
    },
    Campaign {
        links: Vec<LinkId>,
        start: SimTime,
        interval: SimTime,
    },
    Churn {
        links: Vec<LinkId>,
        start: SimTime,
        horizon: SimTime,
        mean_gap: SimTime,
        mean_downtime: SimTime,
    },
}

/// One concrete scheduled link transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the physical transition happens.
    pub at: SimTime,
    /// The affected link.
    pub link: LinkId,
    /// `true` = repair (link up), `false` = failure (link down).
    pub up: bool,
    /// Detection delay for this transition; `None` uses the sim default.
    pub detection: Option<SimTime>,
}

/// A seeded, declarative fault schedule.
///
/// Build clauses with the fluent methods, then [`FaultPlan::apply`] the
/// plan to a simulation (or [`FaultPlan::compile`] it to inspect the
/// event train). Overlapping clauses are safe: the engine treats a
/// `down` on an already-down link (and an `up` on an up link) as a
/// no-op.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    detection: Option<SimTime>,
    detection_jitter: SimTime,
    clauses: Vec<Clause>,
}

impl FaultPlan {
    /// Creates an empty plan; `seed` drives every random draw the plan
    /// makes (detection jitter, SRLG sampling helpers).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            detection: None,
            detection_jitter: SimTime::ZERO,
            clauses: Vec::new(),
        }
    }

    /// Sets the base detection delay stamped on every compiled event
    /// (without this, events use the sim's configured default).
    pub fn with_detection(mut self, base: SimTime) -> Self {
        self.detection = Some(base);
        self
    }

    /// Adds a uniformly drawn `[0, max]` jitter on top of the base
    /// detection delay, per transition. Implies a base of zero if
    /// [`FaultPlan::with_detection`] was not called.
    pub fn with_detection_jitter(mut self, max: SimTime) -> Self {
        self.detection_jitter = max;
        self
    }

    /// Fails `link` at `at` (permanently, unless repaired later).
    pub fn fail(mut self, link: LinkId, at: SimTime) -> Self {
        self.clauses.push(Clause::Down { link, at });
        self
    }

    /// Repairs `link` at `at`.
    pub fn repair(mut self, link: LinkId, at: SimTime) -> Self {
        self.clauses.push(Clause::Up { link, at });
        self
    }

    /// Fails `link` at `at` and repairs it `duration` later.
    pub fn fail_for(self, link: LinkId, at: SimTime, duration: SimTime) -> Self {
        self.fail(link, at).repair(link, at + duration)
    }

    /// Adds a flap train on `link`: `cycles` repetitions of
    /// down-at-`start + i·period`, up after `duty · period` (the duty
    /// cycle is the *down* fraction, clamped inside the period).
    pub fn flap(
        mut self,
        link: LinkId,
        start: SimTime,
        period: SimTime,
        duty: f64,
        cycles: u32,
    ) -> Self {
        assert!(period > SimTime::ZERO, "flap period must be positive");
        assert!(
            (0.0..=1.0).contains(&duty),
            "duty cycle must be in [0, 1], got {duty}"
        );
        self.clauses.push(Clause::Flap {
            link,
            start,
            period,
            duty,
            cycles,
        });
        self
    }

    /// Fails every link of a shared-risk group atomically at `at`, and
    /// repairs the whole group `repair_after` later if given.
    pub fn srlg(mut self, links: Vec<LinkId>, at: SimTime, repair_after: Option<SimTime>) -> Self {
        self.clauses.push(Clause::Group {
            links,
            at,
            repair_after,
        });
        self
    }

    /// Crashes `node` at `at`: all its incident links go down
    /// atomically. If `repair_after` is given, the node (all links)
    /// comes back that much later.
    pub fn node_crash(mut self, node: NodeId, at: SimTime, repair_after: Option<SimTime>) -> Self {
        self.clauses.push(Clause::NodeCrash {
            node,
            at,
            repair_after,
        });
        self
    }

    /// A failure campaign: `links[i]` goes down at `start + i·interval`
    /// and never comes back. The caller fixes the order — descending
    /// edge betweenness for a targeted attack
    /// (`kar_topology::analysis::ranked_links`), or a seeded shuffle for
    /// the random campaign of matched intensity.
    pub fn campaign(mut self, links: Vec<LinkId>, start: SimTime, interval: SimTime) -> Self {
        self.clauses.push(Clause::Campaign {
            links,
            start,
            interval,
        });
        self
    }

    /// Sustained rolling churn: each link in `links` independently
    /// alternates up → down → up in a Poisson process — healthy periods
    /// are exponential with mean `mean_gap`, outages exponential with
    /// mean `mean_downtime` — from `start` until `horizon` past it. No
    /// new outage begins after the horizon and every outage begun is
    /// eventually repaired, so the network always converges back to
    /// fully up. All draws come from the plan's seeded RNG in link
    /// order: compilation stays a pure function of `(plan, topo)`.
    pub fn churn(
        mut self,
        links: Vec<LinkId>,
        start: SimTime,
        horizon: SimTime,
        mean_gap: SimTime,
        mean_downtime: SimTime,
    ) -> Self {
        assert!(mean_gap > SimTime::ZERO, "mean gap must be positive");
        assert!(
            mean_downtime > SimTime::ZERO,
            "mean downtime must be positive"
        );
        self.clauses.push(Clause::Churn {
            links,
            start,
            horizon,
            mean_gap,
            mean_downtime,
        });
        self
    }

    /// Expands every clause into a time-sorted event train. Pure: the
    /// same `(plan, topo)` always compiles to the same events.
    pub fn compile(&self, topo: &Topology) -> Vec<FaultEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        for clause in &self.clauses {
            match clause {
                Clause::Down { link, at } => events.push((*at, *link, false)),
                Clause::Up { link, at } => events.push((*at, *link, true)),
                Clause::Flap {
                    link,
                    start,
                    period,
                    duty,
                    cycles,
                } => {
                    // Keep the up transition strictly inside the period so
                    // every cycle has both a down and an up window.
                    let down_ns =
                        (((period.0 as f64) * duty).round() as u64).clamp(1, period.0.max(2) - 1);
                    for i in 0..*cycles {
                        let down_at = *start + SimTime(period.0 * i as u64);
                        events.push((down_at, *link, false));
                        events.push((down_at + SimTime(down_ns), *link, true));
                    }
                }
                Clause::Group {
                    links,
                    at,
                    repair_after,
                } => {
                    for &l in links {
                        events.push((*at, l, false));
                    }
                    if let Some(after) = repair_after {
                        for &l in links {
                            events.push((*at + *after, l, true));
                        }
                    }
                }
                Clause::NodeCrash {
                    node,
                    at,
                    repair_after,
                } => {
                    for &l in &topo.node(*node).ports {
                        events.push((*at, l, false));
                    }
                    if let Some(after) = repair_after {
                        for &l in &topo.node(*node).ports {
                            events.push((*at + *after, l, true));
                        }
                    }
                }
                Clause::Campaign {
                    links,
                    start,
                    interval,
                } => {
                    for (i, &l) in links.iter().enumerate() {
                        events.push((*start + SimTime(interval.0 * i as u64), l, false));
                    }
                }
                Clause::Churn {
                    links,
                    start,
                    horizon,
                    mean_gap,
                    mean_downtime,
                } => {
                    let end = *start + *horizon;
                    for &l in links {
                        let mut t = *start + exp_sample(&mut rng, *mean_gap);
                        while t < end {
                            let up_at = t + exp_sample(&mut rng, *mean_downtime);
                            events.push((t, l, false));
                            events.push((up_at, l, true));
                            t = up_at + exp_sample(&mut rng, *mean_gap);
                        }
                    }
                }
            }
        }
        let mut events: Vec<FaultEvent> = events
            .into_iter()
            .map(|(at, link, up)| FaultEvent {
                at,
                link,
                up,
                detection: self.detection_for(&mut rng),
            })
            .collect();
        // `(time, link)` ties resolve down-before-up (`false < true`),
        // never by clause insertion order — a repair clause colliding
        // with a scheduled failure at the same instant must lose
        // deterministically, whichever was authored first.
        events.sort_by_key(|e| (e.at, e.link.0, e.up));
        events
    }

    /// Compiles the plan against the sim's topology and schedules every
    /// event; returns the compiled train for inspection.
    pub fn apply(&self, sim: &mut Sim<'_>) -> Vec<FaultEvent> {
        let events = self.compile(sim.topology());
        for ev in &events {
            match (ev.up, ev.detection) {
                (false, None) => sim.schedule_link_down(ev.at, ev.link),
                (false, Some(d)) => sim.schedule_link_down_detected(ev.at, ev.link, d),
                (true, None) => sim.schedule_link_up(ev.at, ev.link),
                (true, Some(d)) => sim.schedule_link_up_detected(ev.at, ev.link, d),
            }
        }
        events
    }

    fn detection_for(&self, rng: &mut StdRng) -> Option<SimTime> {
        if self.detection.is_none() && self.detection_jitter == SimTime::ZERO {
            return None;
        }
        let base = self.detection.unwrap_or(SimTime::ZERO);
        let jitter = if self.detection_jitter == SimTime::ZERO {
            SimTime::ZERO
        } else {
            SimTime(rng.gen_range(0..=self.detection_jitter.0))
        };
        Some(base + jitter)
    }
}

/// One exponential draw with the given mean, floored at 1 ns so churn
/// trains always advance. The vendored RNG has no float sampling, so the
/// unit uniform is built from the top 53 bits of one `next_u64` (exactly
/// the resolution an `f64` mantissa offers) and inverted through the
/// exponential CDF.
fn exp_sample(rng: &mut StdRng, mean: SimTime) -> SimTime {
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    SimTime(((-(mean.0 as f64)) * (1.0 - unit).ln()).max(1.0) as u64)
}

/// Shared-risk link groups of `topo` under the conduit/linecard model:
/// all core–core links incident to one core switch fail together.
/// Groups with fewer than two links are dropped (those coincide with
/// single-link failures).
pub fn srlg_groups(topo: &Topology) -> Vec<Vec<LinkId>> {
    let is_core = |n: NodeId| -> bool { matches!(topo.node(n).kind, NodeKind::Core { .. }) };
    topo.core_nodes()
        .into_iter()
        .map(|n| {
            topo.node(n)
                .ports
                .iter()
                .copied()
                .filter(|&l| {
                    let link = topo.link(l);
                    is_core(link.a) && is_core(link.b)
                })
                .collect::<Vec<_>>()
        })
        .filter(|g| g.len() >= 2)
        .collect()
}

/// Samples `k` distinct groups (fewer if `k > groups.len()`) and
/// returns the sorted union of their links.
pub fn sample_srlg_links(groups: &[Vec<LinkId>], k: usize, rng: &mut StdRng) -> Vec<LinkId> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.shuffle(rng);
    let mut union = BTreeSet::new();
    for &g in order.iter().take(k) {
        union.extend(groups[g].iter().copied());
    }
    union.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarder::DropReason;
    use crate::modulo::ModuloForwarder;
    use crate::packet::{FlowId, PacketKind};
    use crate::sim::SimConfig;
    use crate::static_routes::StaticRoutes;
    use kar_rns::{crt_encode, RnsBasis};
    use kar_topology::{LinkParams, TopologyBuilder};

    /// S — SW4 — SW7 — D with the paper's example encoding.
    fn line_world() -> (Topology, StaticRoutes) {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let sw4 = b.core("SW4", 4);
        let sw7 = b.core("SW7", 7);
        let d = b.edge("D");
        b.link(s, sw4, LinkParams::new(100, 10));
        b.link(sw4, sw7, LinkParams::new(100, 10));
        b.link(sw7, d, LinkParams::new(100, 10));
        let topo = b.build().unwrap();
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let r = crt_encode(&basis, &[1, 1]).unwrap();
        let mut routes = StaticRoutes::new();
        routes.insert(topo.expect("S"), topo.expect("D"), r, 0);
        (topo, routes)
    }

    fn sim_over<'a>(topo: &'a Topology, routes: StaticRoutes, config: SimConfig) -> Sim<'a> {
        Sim::new(
            topo,
            Box::new(ModuloForwarder::new()),
            Box::new(routes),
            config,
        )
    }

    #[test]
    fn flap_compiles_to_alternating_train() {
        let (topo, _) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let plan =
            FaultPlan::new(1).flap(l, SimTime::from_millis(10), SimTime::from_millis(4), 0.5, 3);
        let evs = plan.compile(&topo);
        assert_eq!(evs.len(), 6);
        let expect = [
            (10_000_000, false),
            (12_000_000, true),
            (14_000_000, false),
            (16_000_000, true),
            (18_000_000, false),
            (20_000_000, true),
        ];
        for (ev, (at_ns, up)) in evs.iter().zip(expect) {
            assert_eq!(ev.at, SimTime(at_ns));
            assert_eq!(ev.up, up);
            assert_eq!(ev.link, l);
            assert_eq!(ev.detection, None);
        }
    }

    #[test]
    fn node_crash_downs_all_incident_links_atomically() {
        let (topo, _) = line_world();
        let sw4 = topo.expect("SW4");
        let plan = FaultPlan::new(1).node_crash(
            sw4,
            SimTime::from_millis(5),
            Some(SimTime::from_millis(3)),
        );
        let evs = plan.compile(&topo);
        assert_eq!(evs.len(), 4); // 2 links down + 2 links up
        assert!(evs[..2]
            .iter()
            .all(|e| !e.up && e.at == SimTime::from_millis(5)));
        assert!(evs[2..]
            .iter()
            .all(|e| e.up && e.at == SimTime::from_millis(8)));
    }

    #[test]
    fn compile_is_deterministic_under_jitter() {
        let (topo, _) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let plan = FaultPlan::new(42)
            .with_detection(SimTime::from_micros(500))
            .with_detection_jitter(SimTime::from_micros(300))
            .flap(l, SimTime::ZERO, SimTime::from_millis(2), 0.25, 8);
        let a = plan.compile(&topo);
        let b = plan.compile(&topo);
        assert_eq!(a, b);
        // Jitter actually varies across events.
        let distinct: BTreeSet<_> = a.iter().map(|e| e.detection.unwrap().0).collect();
        assert!(distinct.len() > 1, "jitter should vary: {distinct:?}");
        for e in &a {
            let d = e.detection.unwrap();
            assert!(d >= SimTime::from_micros(500) && d <= SimTime::from_micros(800));
        }
    }

    #[test]
    fn replaying_a_plan_gives_identical_stats() {
        let run = || {
            let (topo, routes) = line_world();
            let l = topo.expect_link("SW4", "SW7");
            let mut sim = sim_over(&topo, routes, SimConfig::default());
            FaultPlan::new(9)
                .with_detection(SimTime::from_micros(100))
                .with_detection_jitter(SimTime::from_micros(900))
                .flap(l, SimTime::from_millis(1), SimTime::from_millis(3), 0.5, 5)
                .apply(&mut sim);
            for i in 0..200 {
                sim.inject(
                    topo.expect("S"),
                    topo.expect("D"),
                    FlowId(0),
                    i,
                    PacketKind::Probe,
                    1000,
                );
            }
            sim.run_to_quiescence();
            sim.stats().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slow_detection_lags_fast_flapping_in_both_directions() {
        // Flap period 2 ms, detection 5 ms: the observed state trails the
        // physical state by more than a whole flap cycle, so the port
        // reads "up" while the link is down and "down" while it is up.
        let (topo, routes) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let mut sim = sim_over(&topo, routes, SimConfig::default());
        FaultPlan::new(3)
            .with_detection(SimTime::from_millis(5))
            .flap(l, SimTime::from_millis(1), SimTime::from_millis(2), 0.5, 2)
            .apply(&mut sim);
        // Physical: down 1–2 ms, up 2–3 ms, down 3–4 ms, up from 4 ms.
        // Observed: transitions replayed 5 ms later.
        sim.run_until(SimTime::from_micros(1500));
        assert!(!sim.link_is_up(l), "physically down at 1.5 ms");
        assert!(sim.link_observed_up(l), "reads up while actually down");
        sim.run_until(SimTime::from_micros(6500));
        assert!(sim.link_is_up(l), "physically repaired at 6.5 ms");
        assert!(!sim.link_observed_up(l), "reads down while actually up");
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.link_is_up(l));
        assert!(sim.link_observed_up(l), "observation converges eventually");
        assert_eq!(sim.stats().link_failures, 2);
        assert_eq!(sim.stats().link_repairs, 2);
    }

    #[test]
    fn stale_window_drops_have_the_right_reasons() {
        // While the link reads up but is down, SW4 forwards into the dead
        // port → LinkFailure. While it reads down but is up, the
        // drop-on-failure forwarder refuses the healthy port → PortDown.
        let (topo, routes) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let mut sim = sim_over(&topo, routes, SimConfig::default());
        FaultPlan::new(3)
            .with_detection(SimTime::from_millis(5))
            .fail_for(l, SimTime::from_millis(1), SimTime::from_millis(2))
            .apply(&mut sim);
        // Injected at 1.2 ms: link physically down, still observed up.
        sim.run_until(SimTime::from_micros(1200));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            500,
        );
        // Injected at 7 ms: link physically up (since 3 ms) but the 5 ms
        // detection of the 1 ms failure has landed and the 3 ms repair is
        // not observed until 8 ms.
        sim.run_until(SimTime::from_millis(7));
        assert!(sim.link_is_up(l));
        assert!(!sim.link_observed_up(l));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            1,
            PacketKind::Probe,
            500,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().dropped_for(DropReason::LinkFailure), 1);
        assert_eq!(sim.stats().dropped_for(DropReason::PortDown), 1);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn jitter_race_resolves_to_latest_transition() {
        // A slow failure detection racing a fast repair detection: the
        // repair is observed first, and the stale failure report must not
        // overwrite it.
        let (topo, routes) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let mut sim = sim_over(&topo, routes, SimConfig::default());
        sim.schedule_link_down_detected(SimTime::from_millis(1), l, SimTime::from_millis(10));
        sim.schedule_link_up_detected(SimTime::from_millis(2), l, SimTime::from_millis(1));
        // Repair observed at 3 ms, failure report lands at 11 ms (stale).
        sim.run_until(SimTime::from_millis(20));
        assert!(sim.link_is_up(l));
        assert!(
            sim.link_observed_up(l),
            "stale failure detection must not shadow the newer repair"
        );
    }

    #[test]
    fn repaired_link_carries_traffic_again() {
        let (topo, routes) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let mut sim = sim_over(&topo, routes, SimConfig::default());
        FaultPlan::new(1)
            .fail_for(l, SimTime::ZERO, SimTime::from_millis(1))
            .apply(&mut sim);
        sim.run_until(SimTime::from_millis(2));
        sim.inject(
            topo.expect("S"),
            topo.expect("D"),
            FlowId(0),
            0,
            PacketKind::Probe,
            1000,
        );
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().link_failures, 1);
        assert_eq!(sim.stats().link_repairs, 1);
    }

    #[test]
    fn campaign_fails_links_in_order_without_repair() {
        let (topo, _) = line_world();
        let l0 = topo.expect_link("S", "SW4");
        let l1 = topo.expect_link("SW4", "SW7");
        let plan = FaultPlan::new(1).campaign(
            vec![l1, l0],
            SimTime::from_millis(10),
            SimTime::from_millis(5),
        );
        let evs = plan.compile(&topo);
        assert_eq!(evs.len(), 2);
        assert_eq!(
            (evs[0].at, evs[0].link, evs[0].up),
            (SimTime::from_millis(10), l1, false)
        );
        assert_eq!(
            (evs[1].at, evs[1].link, evs[1].up),
            (SimTime::from_millis(15), l0, false)
        );
    }

    #[test]
    fn churn_alternates_and_always_repairs() {
        let (topo, _) = line_world();
        let l0 = topo.expect_link("S", "SW4");
        let l1 = topo.expect_link("SW4", "SW7");
        let plan = FaultPlan::new(7).churn(
            vec![l0, l1],
            SimTime::from_millis(1),
            SimTime::from_millis(200),
            SimTime::from_millis(10),
            SimTime::from_millis(5),
        );
        let evs = plan.compile(&topo);
        assert!(!evs.is_empty(), "200 ms at mean gap 10 ms must churn");
        assert_eq!(plan.compile(&topo), evs, "churn compiles are pure");
        let end = SimTime::from_millis(201);
        for link in [l0, l1] {
            let train: Vec<_> = evs.iter().filter(|e| e.link == link).collect();
            // Strictly alternating down/up per link, each outage repaired.
            assert_eq!(train.len() % 2, 0);
            for (i, e) in train.iter().enumerate() {
                assert_eq!(e.up, i % 2 == 1, "event {i} of {link:?}");
            }
            for pair in train.chunks(2) {
                assert!(pair[0].at < pair[1].at);
                assert!(pair[0].at < end, "no outage begins after the horizon");
            }
        }
    }

    #[test]
    fn same_time_ties_resolve_down_before_up_regardless_of_clause_order() {
        let (topo, _) = line_world();
        let l = topo.expect_link("SW4", "SW7");
        let at = SimTime::from_millis(3);
        // Repair authored first, failure second — and the reverse.
        let a = FaultPlan::new(1).repair(l, at).fail(l, at).compile(&topo);
        let b = FaultPlan::new(1).fail(l, at).repair(l, at).compile(&topo);
        assert_eq!(a, b, "tie resolution must not depend on clause order");
        assert!(!a[0].up && a[1].up, "down sorts before up");
    }

    #[test]
    fn srlg_groups_and_sampling_are_deterministic() {
        let t = kar_topology::topo15::build();
        let groups = srlg_groups(&t);
        assert!(!groups.is_empty());
        for g in &groups {
            assert!(g.len() >= 2);
            for &l in g {
                let link = t.link(l);
                assert!(t.switch_id(link.a).is_some() && t.switch_id(link.b).is_some());
            }
        }
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = sample_srlg_links(&groups, 2, &mut r1);
        let b = sample_srlg_links(&groups, 2, &mut r2);
        assert_eq!(a, b);
        assert!(a.len() >= 2);
    }
}
