//! # kar-baselines — comparator schemes for the KAR evaluation
//!
//! The KAR paper positions itself against failure-reaction schemes along
//! three axes (its Table 2): multiple-failure support, source routing,
//! and core state. This crate implements the comparators the evaluation
//! needs:
//!
//! * **No deflection** — KAR's modulo dataplane that drops on failure
//!   (the Fig. 4 reference; re-exported from `kar_simnet` as
//!   [`ModuloForwarder`], or use `DeflectionTechnique::None`);
//! * [`NotifyRerouteEdge`] — source routing whose only failure reaction
//!   is a controller notification: everything in flight before the
//!   switchover dies (the paper's "first approach");
//! * [`FastFailover`] — a stateful per-destination primary/backup table
//!   in every switch (OpenFlow 1.3 Fast Failover / MPLS FRR class);
//! * [`SlickForwarder`] / [`SlickEdge`] — a Slick-Packets-style scheme:
//!   stateless source routing with the alternates *explicitly encoded*
//!   per hop (contrast with KAR's single folded integer);
//! * [`PathSplicing`] — k perturbed routing trees per destination in
//!   every switch, spliced across on failure (stateful, k× the
//!   fast-failover footprint);
//! * [`TableScheme`] — uniform constructor over the table-based schemes
//!   ([`FastFailover`], [`PathSplicing`]) so sweeps can iterate them the
//!   way KAR sweeps iterate `DeflectionTechnique::ALL`;
//! * [`table2_rows`] / [`render_table2`] — the paper's Table 2, with the
//!   rows we implement verified experimentally
//!   ([`check_kar_row`], [`check_fast_failover_state`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fast_failover;
mod feature_matrix;
mod notify;
mod scheme;
mod slick;
mod splicing;

pub use fast_failover::{FailoverEntry, FastFailover, TableEdge};
pub use feature_matrix::{
    check_fast_failover_state, check_kar_row, render_table2, table2_rows, CoreState, FeatureRow,
};
pub use kar_simnet::ModuloForwarder;
pub use notify::NotifyRerouteEdge;
pub use scheme::TableScheme;
pub use slick::{SlickEdge, SlickEntry, SlickForwarder, SlickHeader};
pub use splicing::PathSplicing;
