//! A table-based dataplane with precomputed backup next-hops — the
//! OpenFlow 1.3 Fast-Failover / MPLS-FRR-style comparator of Table 2.
//!
//! Unlike KAR, every switch stores *state*: a per-destination primary
//! and backup output port. On failure of the primary port the switch
//! falls over to the backup locally (no controller round trip), which is
//! the same failure-reaction latency class as KAR — but the cost is
//! `O(destinations)` entries in every switch, and a failure of both the
//! primary and backup port drops traffic.

use kar_simnet::{DropReason, ForwardDecision, Forwarder, Packet, SwitchCtx};
use kar_topology::{NodeId, PortIx, Topology};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Per-switch, per-destination forwarding entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEntry {
    /// Preferred output port (on the shortest path).
    pub primary: PortIx,
    /// Backup output port (pre-installed protection), if any exists.
    pub backup: Option<PortIx>,
}

/// Stateful fast-failover forwarder.
#[derive(Debug, Clone, Default)]
pub struct FastFailover {
    /// `(switch, destination edge) → entry`.
    table: HashMap<(NodeId, NodeId), FailoverEntry>,
}

impl FastFailover {
    /// Builds the full table for every core switch toward each node in
    /// `destinations` (normally the edge nodes carrying traffic).
    ///
    /// The primary port follows the BFS shortest path; the backup is the
    /// neighbour with the smallest BFS distance to the destination among
    /// the remaining ports (ties broken by port index), mirroring how
    /// loop-free alternates are commonly chosen.
    pub fn precompute(topo: &Topology, destinations: &[NodeId]) -> Self {
        let mut table = HashMap::new();
        for &dst in destinations {
            let dist = bfs_distances(topo, dst);
            for sw in topo.core_nodes() {
                let mut best: Option<(u32, PortIx)> = None;
                let mut second: Option<(u32, PortIx)> = None;
                for (port, _, peer) in topo.neighbors(sw) {
                    let Some(&d) = dist.get(&peer) else { continue };
                    let cand = (d, port);
                    match best {
                        None => best = Some(cand),
                        Some(b) if cand < b => {
                            second = best;
                            best = Some(cand);
                        }
                        Some(_) => match second {
                            None => second = Some(cand),
                            Some(s) if cand < s => second = Some(cand),
                            Some(_) => {}
                        },
                    }
                }
                if let Some((_, primary)) = best {
                    table.insert(
                        (sw, dst),
                        FailoverEntry {
                            primary,
                            backup: second.map(|(_, p)| p),
                        },
                    );
                }
            }
        }
        FastFailover { table }
    }

    /// The entry installed at `switch` for `dst`, if any.
    pub fn entry(&self, switch: NodeId, dst: NodeId) -> Option<FailoverEntry> {
        self.table.get(&(switch, dst)).copied()
    }

    /// Total entries across all switches (the Table 2 state metric).
    pub fn total_entries(&self) -> usize {
        self.table.len()
    }
}

impl Forwarder for FastFailover {
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        _rng: &mut StdRng,
    ) -> ForwardDecision {
        let Some(entry) = self.table.get(&(ctx.node, pkt.dst)) else {
            return ForwardDecision::Drop(DropReason::NoRoute);
        };
        if ctx.port_available(entry.primary) {
            return ForwardDecision::Output(entry.primary);
        }
        match entry.backup {
            Some(b) if ctx.port_available(b) => {
                pkt.deflections = pkt.deflections.saturating_add(1);
                ForwardDecision::Output(b)
            }
            _ => ForwardDecision::Drop(DropReason::NoRoute),
        }
    }

    fn name(&self) -> &str {
        "FastFailover"
    }

    fn state_entries(&self, node: NodeId) -> usize {
        self.table.keys().filter(|&&(sw, _)| sw == node).count()
    }
}

fn bfs_distances(topo: &Topology, dst: NodeId) -> HashMap<NodeId, u32> {
    let mut dist = HashMap::new();
    dist.insert(dst, 0u32);
    let mut q = std::collections::VecDeque::from([dst]);
    while let Some(n) = q.pop_front() {
        let d = dist[&n];
        for (_, _, peer) in topo.neighbors(n) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(peer) {
                e.insert(d + 1);
                q.push_back(peer);
            }
        }
    }
    dist
}

/// Edge logic companion for table-based schemes: no route tag is
/// attached (switches look packets up by destination), so ingress only
/// picks the uplink port.
#[derive(Debug, Clone, Default)]
pub struct TableEdge;

impl kar_simnet::EdgeLogic for TableEdge {
    fn ingress(&mut self, topo: &Topology, edge: NodeId, _pkt: &mut Packet) -> Option<PortIx> {
        // Single-homed edges: the only port is the uplink.
        (topo.node(edge).degree() > 0).then_some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
    use kar_topology::topo15;

    #[test]
    fn precompute_covers_all_switches() {
        let topo = topo15::build();
        let as3 = topo.expect("AS3");
        let ff = FastFailover::precompute(&topo, &[as3]);
        assert_eq!(ff.total_entries(), topo.core_nodes().len());
        // SW13's primary toward AS3 is SW29.
        let e = ff.entry(topo.expect("SW13"), as3).unwrap();
        assert_eq!(
            e.primary,
            topo.port_towards(topo.expect("SW13"), topo.expect("SW29"))
                .unwrap()
        );
        assert!(e.backup.is_some());
    }

    #[test]
    fn state_is_per_destination() {
        let topo = topo15::build();
        let dsts = [topo.expect("AS1"), topo.expect("AS2"), topo.expect("AS3")];
        let ff = FastFailover::precompute(&topo, &dsts);
        let sw13 = topo.expect("SW13");
        assert_eq!(ff.state_entries(sw13), 3);
        assert_eq!(ff.total_entries(), 3 * topo.core_nodes().len());
    }

    #[test]
    fn survives_single_failure_via_backup() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let ff = FastFailover::precompute(&topo, &[as1, as3]);
        let mut sim = Sim::new(
            &topo,
            Box::new(ff),
            Box::new(TableEdge),
            SimConfig::default(),
        );
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 50, "{:?}", sim.stats());
    }

    #[test]
    fn no_route_drops() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        // Table built only for AS1 as destination.
        let ff = FastFailover::precompute(&topo, &[as1]);
        let mut sim = Sim::new(
            &topo,
            Box::new(ff),
            Box::new(TableEdge),
            SimConfig::default(),
        );
        sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 500);
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped_for(DropReason::NoRoute), 1);
    }
}
