//! A Slick-Packets-style baseline: stateless source routing with the
//! alternative routes *explicitly encoded* in the packet header.
//!
//! Slick Packets [6] embeds a forwarding DAG in the header: each hop
//! carries a primary output port and an alternate to fall back on. Like
//! KAR it is stateless at switches and reacts to failures in the data
//! plane; unlike KAR it supports only the failures its DAG anticipated
//! (Table 2: "multiple link failures: No") and its header grows with
//! explicit per-hop entries instead of KAR's single folded integer.
//!
//! The header is serialized into the packet's opaque route tag (our
//! [`RouteTag`] carries arbitrary-precision bytes), keeping `kar-simnet`
//! agnostic of the scheme.

use kar_rns::BigUint;
use kar_simnet::{DropReason, ForwardDecision, Forwarder, Packet, RouteTag, SwitchCtx};
use kar_topology::{paths, NodeId, PortIx, Topology};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// One hop entry of a slick header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlickEntry {
    /// The switch this entry addresses.
    pub switch_id: u32,
    /// Primary output port.
    pub primary: u8,
    /// Alternate output port, if the DAG provides one.
    pub alt: Option<u8>,
}

/// A source-encoded forwarding DAG: per-switch primary + alternate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlickHeader {
    /// Entries in path order (order is irrelevant to forwarding).
    pub entries: Vec<SlickEntry>,
}

impl SlickHeader {
    /// Serialized wire size in bytes (6 per entry + 1 count byte) — the
    /// number KAR's Eq. 9 bit length competes against.
    pub fn wire_bytes(&self) -> usize {
        1 + self.entries.len() * 6
    }

    /// Serializes into bytes (count, then `switch_id:u32 primary:u8
    /// alt:u8` with `0xff` meaning "no alternate").
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        out.push(self.entries.len() as u8);
        for e in &self.entries {
            out.extend_from_slice(&e.switch_id.to_be_bytes());
            out.push(e.primary);
            out.push(e.alt.unwrap_or(0xff));
        }
        out
    }

    /// Parses the serialization; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<SlickHeader> {
        let (&count, rest) = bytes.split_first()?;
        let count = count as usize;
        if rest.len() != count * 6 {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        for chunk in rest.chunks_exact(6) {
            let switch_id = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let alt = (chunk[5] != 0xff).then_some(chunk[5]);
            entries.push(SlickEntry {
                switch_id,
                primary: chunk[4],
                alt,
            });
        }
        Some(SlickHeader { entries })
    }

    /// Wraps the serialization in a route tag (the header travels in the
    /// packet's opaque label).
    pub fn to_tag(&self) -> RouteTag {
        // Prefix a 0x01 so leading zero bytes of the header survive the
        // integer round trip.
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&self.to_bytes());
        RouteTag::new(BigUint::from_bytes_be(&bytes))
    }

    /// Recovers a header from a route tag.
    pub fn from_tag(tag: &RouteTag) -> Option<SlickHeader> {
        let bytes = tag.route_id.to_bytes_be();
        let (&magic, rest) = bytes.split_first()?;
        (magic == 0x01).then(|| Self::from_bytes(rest)).flatten()
    }

    /// Builds a header for `primary` over `topo`: each hop's alternate is
    /// the neighbour closest to the destination among the remaining
    /// ports (the same rule as the fast-failover baseline, but encoded
    /// at the source instead of installed in switches).
    pub fn plan(topo: &Topology, primary: &[NodeId]) -> Option<SlickHeader> {
        let dst = *primary.last()?;
        let dist = bfs_distances(topo, dst);
        let mut entries = Vec::new();
        for w in primary.windows(2) {
            let Some(switch_id) = topo.switch_id(w[0]) else {
                continue; // edges don't forward
            };
            let primary_port = topo.port_towards(w[0], w[1])?;
            let alt = topo
                .neighbors(w[0])
                .filter(|&(p, _, _)| p != primary_port)
                .filter_map(|(p, _, peer)| dist.get(&peer).map(|&d| (d, p)))
                .min()
                .map(|(_, p)| p as u8);
            entries.push(SlickEntry {
                switch_id: switch_id as u32,
                primary: primary_port as u8,
                alt,
            });
        }
        Some(SlickHeader { entries })
    }
}

fn bfs_distances(topo: &Topology, dst: NodeId) -> HashMap<NodeId, u32> {
    let mut dist = HashMap::new();
    dist.insert(dst, 0u32);
    let mut q = std::collections::VecDeque::from([dst]);
    while let Some(n) = q.pop_front() {
        let d = dist[&n];
        for (_, _, peer) in topo.neighbors(n) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(peer) {
                e.insert(d + 1);
                q.push_back(peer);
            }
        }
    }
    dist
}

/// The stateless slick dataplane: follow the header's primary port,
/// fall over to the encoded alternate, drop if both are unusable or the
/// switch has no entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlickForwarder;

impl SlickForwarder {
    /// Creates the forwarder.
    pub fn new() -> Self {
        SlickForwarder
    }
}

impl Forwarder for SlickForwarder {
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        _rng: &mut StdRng,
    ) -> ForwardDecision {
        let Some(header) = pkt.route.as_ref().and_then(SlickHeader::from_tag) else {
            return ForwardDecision::Drop(DropReason::NoRoute);
        };
        let Some(entry) = header
            .entries
            .iter()
            .find(|e| e.switch_id as u64 == ctx.switch_id)
        else {
            return ForwardDecision::Drop(DropReason::NoRoute);
        };
        if ctx.port_available(entry.primary as PortIx) {
            return ForwardDecision::Output(entry.primary as PortIx);
        }
        match entry.alt {
            Some(alt) if ctx.port_available(alt as PortIx) => {
                pkt.deflections = pkt.deflections.saturating_add(1);
                ForwardDecision::Output(alt as PortIx)
            }
            _ => ForwardDecision::Drop(DropReason::NoRoute),
        }
    }

    fn name(&self) -> &str {
        "SlickPackets"
    }
}

/// Edge logic installing slick headers per `(src, dst)`.
#[derive(Debug, Default)]
pub struct SlickEdge {
    routes: HashMap<(NodeId, NodeId), (SlickHeader, PortIx)>,
}

impl SlickEdge {
    /// Creates an empty edge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans and installs the shortest-path DAG from `src` to `dst`;
    /// returns the header for inspection (its size is the comparison
    /// point with KAR's Eq. 9). `None` when unreachable.
    pub fn install(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<SlickHeader> {
        let primary = paths::bfs_shortest_path(topo, src, dst)?;
        let uplink = topo.port_towards(primary[0], primary[1])?;
        let header = SlickHeader::plan(topo, &primary)?;
        self.routes.insert((src, dst), (header.clone(), uplink));
        Some(header)
    }
}

impl kar_simnet::EdgeLogic for SlickEdge {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        let (header, uplink) = self.routes.get(&(edge, pkt.dst))?;
        pkt.route = Some(header.to_tag());
        Some(*uplink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
    use kar_topology::topo15;

    #[test]
    fn header_round_trips() {
        let h = SlickHeader {
            entries: vec![
                SlickEntry {
                    switch_id: 10,
                    primary: 1,
                    alt: Some(2),
                },
                SlickEntry {
                    switch_id: 29,
                    primary: 0,
                    alt: None,
                },
            ],
        };
        assert_eq!(h.wire_bytes(), 13);
        assert_eq!(SlickHeader::from_bytes(&h.to_bytes()), Some(h.clone()));
        assert_eq!(SlickHeader::from_tag(&h.to_tag()), Some(h));
        assert_eq!(SlickHeader::from_bytes(&[3, 0, 0]), None);
    }

    fn run_with_failures(failures: &[(&str, &str)]) -> (u64, u64) {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut edge = SlickEdge::new();
        edge.install(&topo, as1, as3).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(SlickForwarder::new()),
            Box::new(edge),
            SimConfig::default(),
        );
        for (a, b) in failures {
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
        }
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        (sim.stats().delivered, sim.stats().injected)
    }

    #[test]
    fn healthy_path_delivers() {
        let (delivered, injected) = run_with_failures(&[]);
        assert_eq!(delivered, injected);
    }

    #[test]
    fn single_anticipated_failure_survives() {
        // SW7's alternate routes around the failed SW7-SW13 link; the
        // packet must still reach AS3 via switches that carry entries or
        // be dropped — with this topology the alternate leads to SW11,
        // which has no entry → dropped. Slick Packets survives only the
        // failures whose alternates stay on encoded switches, so test a
        // failure whose alternate does: SW13-SW29 falls over at SW13.
        let (delivered, _) = run_with_failures(&[("SW13", "SW29")]);
        // SW13's alternate points toward some neighbour; delivery depends
        // on whether that neighbour is encoded. Either way the scheme
        // must not loop forever:
        assert!(delivered <= 50);
        // And the unfailed run must dominate.
        let (clean, _) = run_with_failures(&[]);
        assert!(clean >= delivered);
    }

    #[test]
    fn header_grows_linearly_kar_grows_like_log_m() {
        // The §2.3 comparison: slick encodes 6 bytes per hop; KAR's
        // single integer needs ⌈log₂(M−1)⌉ bits.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut edge = SlickEdge::new();
        let header = edge.install(&topo, as1, as3).unwrap();
        assert_eq!(header.entries.len(), 4);
        assert_eq!(header.wire_bytes(), 25);
        // KAR's unprotected route over the same path: 15 bits = 2 bytes.
        let route = kar::EncodedRoute::encode(
            &topo,
            &kar::RouteSpec::unprotected(topo15::primary_route(&topo)),
        )
        .unwrap();
        assert_eq!(route.bit_length().div_ceil(8), 2);
    }

    #[test]
    fn forwarder_is_stateless() {
        let fwd = SlickForwarder::new();
        assert_eq!(fwd.state_entries(NodeId(0)), 0);
        assert_eq!(fwd.name(), "SlickPackets");
    }
}
