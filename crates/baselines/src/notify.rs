//! The controller-notification baseline: source routing whose only
//! failure reaction is telling the controller.
//!
//! This is the first high-level approach of the paper's introduction:
//! "sending a failure notification to the source node … until that
//! failure notification is received, packets that had already left the
//! source node are dropped." We model it as KAR's modulo dataplane with
//! *no* deflection, plus an edge that switches to a recomputed
//! (failure-avoiding) route ID only after the notification delay has
//! passed — everything sent before that dies at the failed link.

use kar::{EncodedRoute, KarError, Protection};
use kar_simnet::{EdgeLogic, Packet, RouteTag, SimTime};
use kar_topology::{LinkId, NodeId, PortIx, Topology};
use std::collections::HashMap;

/// Edge logic that swaps route IDs at a planned switchover time.
#[derive(Debug, Default)]
pub struct NotifyRerouteEdge {
    before: HashMap<(NodeId, NodeId), EncodedRoute>,
    after: HashMap<(NodeId, NodeId), EncodedRoute>,
    /// When the recomputed routes take effect (failure time + detection +
    /// notification + controller processing + installation).
    switchover: SimTime,
}

impl NotifyRerouteEdge {
    /// Plans routes for the `(src, dst)` pairs: `before` uses the intact
    /// topology, `after` avoids `failed_link`, and `after` takes effect
    /// at `switchover`.
    ///
    /// # Errors
    ///
    /// Any planning/encoding failure from the KAR controller.
    pub fn plan(
        topo: &Topology,
        pairs: &[(NodeId, NodeId)],
        failed_link: LinkId,
        switchover: SimTime,
    ) -> Result<Self, KarError> {
        let mut before = HashMap::new();
        let mut after = HashMap::new();
        let mut intact = kar::Controller::new();
        let mut avoiding = kar::Controller::new();
        avoiding.set_failure_aware(true);
        avoiding.notify_failure(failed_link);
        for &(src, dst) in pairs {
            before.insert(
                (src, dst),
                intact.install_route(topo, src, dst, &Protection::None)?,
            );
            after.insert(
                (src, dst),
                avoiding.install_route(topo, src, dst, &Protection::None)?,
            );
        }
        Ok(NotifyRerouteEdge {
            before,
            after,
            switchover,
        })
    }

    /// The moment recomputed routes take effect.
    pub fn switchover(&self) -> SimTime {
        self.switchover
    }
}

impl EdgeLogic for NotifyRerouteEdge {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        // `created` is stamped by the engine at injection time == now.
        let table = if pkt.created >= self.switchover {
            &self.after
        } else {
            &self.before
        };
        let route = table.get(&(edge, pkt.dst))?;
        pkt.route = Some(RouteTag::new(route.route_id.clone()));
        Some(route.uplink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, ModuloForwarder, PacketKind, Sim, SimConfig};
    use kar_topology::topo15;

    #[test]
    fn packets_die_until_switchover_then_flow() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let switchover = SimTime::from_millis(100);
        let edge = NotifyRerouteEdge::plan(&topo, &[(as1, as3)], failed, switchover).unwrap();
        assert_eq!(edge.switchover(), switchover);
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(edge),
            SimConfig::default(),
        );
        sim.schedule_link_down(SimTime::ZERO, failed);
        // 10 probes before the notification lands, 10 after.
        for i in 0..10 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_until(switchover);
        for i in 10..20 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 10, "{:?}", sim.stats());
        assert_eq!(sim.stats().dropped(), 10);
    }

    #[test]
    fn recomputed_route_avoids_the_failure() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW10", "SW7");
        let edge = NotifyRerouteEdge::plan(
            &topo,
            &[(as1, as3)],
            failed,
            SimTime::ZERO, // switch over immediately
        )
        .unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(ModuloForwarder::new()),
            Box::new(edge),
            SimConfig::default(),
        );
        sim.schedule_link_down(SimTime::ZERO, failed);
        sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 500);
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 1);
    }
}
