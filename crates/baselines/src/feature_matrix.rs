//! The paper's Table 2: a feature comparison of failure-reaction
//! schemes, with the claims about the systems implemented in this
//! repository *checked by running them* rather than asserted.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
use kar_topology::{topo15, Topology};
use std::fmt;

/// Whether a scheme keeps forwarding state in core switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// No per-flow/per-destination state in the core.
    Stateless,
    /// Core switches hold forwarding state.
    Stateful,
}

impl fmt::Display for CoreState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoreState::Stateless => "Stateless",
            CoreState::Stateful => "Statefull", // the paper's spelling
        })
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    /// Scheme name as printed in the paper.
    pub work: &'static str,
    /// Supports multiple link failures.
    pub multiple_failures: bool,
    /// Is source-routed.
    pub source_routing: bool,
    /// Core state model.
    pub core_state: CoreState,
    /// Whether this repository implements the scheme (rows we can check
    /// experimentally) or reproduces the paper's literature claim.
    pub implemented: bool,
}

/// The eight rows of the paper's Table 2.
pub fn table2_rows() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            work: "MPLS Fast Reroute [12]",
            multiple_failures: true,
            source_routing: true,
            core_state: CoreState::Stateless,
            implemented: false,
        },
        FeatureRow {
            work: "SafeGuard [13]",
            multiple_failures: true,
            source_routing: false,
            core_state: CoreState::Stateful,
            implemented: false,
        },
        FeatureRow {
            work: "OpenFlow Fast Failover [14]",
            multiple_failures: true,
            source_routing: false,
            core_state: CoreState::Stateful,
            implemented: true, // kar_baselines::FastFailover
        },
        FeatureRow {
            work: "Routing Deflections [3]",
            multiple_failures: true,
            source_routing: true,
            core_state: CoreState::Stateful,
            implemented: false,
        },
        FeatureRow {
            work: "Path Splicing [4]",
            multiple_failures: true,
            source_routing: false,
            core_state: CoreState::Stateful,
            implemented: true, // kar_baselines::PathSplicing
        },
        FeatureRow {
            work: "Slick Packets [6]",
            multiple_failures: false,
            source_routing: true,
            core_state: CoreState::Stateless,
            implemented: true, // kar_baselines::SlickForwarder
        },
        FeatureRow {
            work: "KeyFlow [2] and SlickFlow [5]",
            multiple_failures: false,
            source_routing: true,
            core_state: CoreState::Stateless,
            // KeyFlow is exactly KAR's RNS forwarding without the
            // failure reaction: kar_simnet::ModuloForwarder /
            // DeflectionTechnique::None.
            implemented: true,
        },
        FeatureRow {
            work: "KAR",
            multiple_failures: true,
            source_routing: true,
            core_state: CoreState::Stateless,
            implemented: true,
        },
    ]
}

/// Renders the table in the paper's layout.
pub fn render_table2() -> String {
    let mut out = String::from(
        "| Work | Support multiple link failures | Source routing | State core network |\n|---|---|---|---|\n",
    );
    for row in table2_rows() {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            row.work,
            if row.multiple_failures { "Yes" } else { "No" },
            if row.source_routing { "Yes" } else { "No" },
            row.core_state,
        ));
    }
    out
}

/// Experimental verification of the KAR row: stateless core, and
/// delivery under *two simultaneous* link failures (NIP + full
/// protection on the 15-node network).
///
/// Returns `(state_entries_total, delivered, injected)`.
pub fn check_kar_row(seed: u64) -> (usize, u64, u64) {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(seed)
        .ttl(255)
        .build();
    net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
        .expect("topo15 route installs");
    let mut sim = net.into_sim();
    let state: usize = topo
        .core_nodes()
        .iter()
        .map(|&n| sim.forwarder().state_entries(n))
        .sum();
    // Two simultaneous failures on the primary path.
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
    sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW13", "SW29"));
    for i in 0..100 {
        sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    (state, sim.stats().delivered, sim.stats().injected)
}

/// Experimental verification of the OpenFlow-FF row: stateful core.
///
/// Returns the total state entries across core switches.
pub fn check_fast_failover_state(topo: &Topology) -> usize {
    let dsts = topo.edge_nodes();
    let ff = crate::FastFailover::precompute(topo, &dsts);
    let edge = crate::TableEdge;
    let sim = Sim::new(topo, Box::new(ff), Box::new(edge), SimConfig::default());
    topo.core_nodes()
        .iter()
        .map(|&n| sim.forwarder().state_entries(n))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_shape() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 8);
        let kar = rows.last().unwrap();
        assert_eq!(kar.work, "KAR");
        assert!(kar.multiple_failures && kar.source_routing);
        assert_eq!(kar.core_state, CoreState::Stateless);
        let rendered = render_table2();
        assert!(rendered.contains("| KAR | Yes | Yes | Stateless |"));
        assert!(rendered.contains("Slick Packets [6] | No | Yes | Stateless"));
    }

    #[test]
    fn kar_row_is_experimentally_true() {
        let (state, delivered, injected) = check_kar_row(42);
        assert_eq!(state, 0, "KAR core must be stateless");
        assert_eq!(injected, 100);
        assert!(
            delivered >= 95,
            "KAR should survive two simultaneous failures: {delivered}/100"
        );
    }

    #[test]
    fn fast_failover_row_is_stateful() {
        let topo = topo15::build();
        let state = check_fast_failover_state(&topo);
        assert_eq!(state, 3 * topo.core_nodes().len());
    }
}
