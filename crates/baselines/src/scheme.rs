//! Uniform constructor for the table-based comparator schemes.
//!
//! Every experiment that compares KAR against the stateful baselines
//! repeats the same ritual: precompute the scheme's tables for the
//! endpoints, box the forwarder, pair it with [`TableEdge`].
//! [`TableScheme`] names that family and builds the forwarder in one
//! call, so sweeps can iterate `TableScheme::DEFAULT` the same way KAR
//! sweeps iterate `DeflectionTechnique::ALL`.

use crate::fast_failover::FastFailover;
use crate::splicing::PathSplicing;
use kar_simnet::Forwarder;
use kar_topology::{NodeId, Topology};

/// A table-based comparator scheme, ready to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableScheme {
    /// Per-destination primary/backup tables (OpenFlow 1.3 Fast
    /// Failover / MPLS FRR class) — a second failure exhausts the
    /// backup.
    FastFailover,
    /// k perturbed routing trees per destination, spliced across on
    /// failure (stateful, k× the fast-failover footprint).
    PathSplicing {
        /// Number of slices (the paper's comparisons use 4).
        slices: usize,
    },
}

impl TableScheme {
    /// The comparator set experiments sweep by default.
    pub const DEFAULT: [TableScheme; 2] = [
        TableScheme::FastFailover,
        TableScheme::PathSplicing { slices: 4 },
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TableScheme::FastFailover => "FastFailover",
            TableScheme::PathSplicing { .. } => "PathSplicing k=4",
        }
    }

    /// Precomputes the scheme's tables for `endpoints` and boxes the
    /// forwarder; pair it with [`crate::TableEdge`] in a `Sim`. `seed`
    /// only matters to schemes with randomized table construction.
    pub fn forwarder(self, topo: &Topology, endpoints: &[NodeId], seed: u64) -> Box<dyn Forwarder> {
        match self {
            TableScheme::FastFailover => Box::new(FastFailover::precompute(topo, endpoints)),
            TableScheme::PathSplicing { slices } => {
                Box::new(PathSplicing::precompute(topo, endpoints, slices, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
    use kar_topology::topo15;

    #[test]
    fn every_default_scheme_delivers_on_the_intact_network() {
        let topo = topo15::build();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        for scheme in TableScheme::DEFAULT {
            let fwd = scheme.forwarder(&topo, &[src, dst], 7);
            let mut sim = Sim::new(
                &topo,
                fwd,
                Box::new(crate::TableEdge),
                SimConfig {
                    seed: 7,
                    default_ttl: 255,
                    ..SimConfig::default()
                },
            );
            for i in 0..10 {
                sim.run_until(SimTime(i * 500_000));
                sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            assert_eq!(sim.stats().delivered, 10, "{}", scheme.label());
        }
    }
}
