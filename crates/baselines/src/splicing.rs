//! A Path-Splicing-style baseline [4]: every switch stores `k` routing
//! trees ("slices") per destination, each computed over independently
//! perturbed link weights; when the preferred slice's port is down the
//! switch hops to another slice.
//!
//! Faithful to the Table 2 classification: *stateful* (k entries per
//! destination per switch — k× fast-failover's footprint), *not* source
//! routing (the trees live in the network; we model the within-network
//! reaction where a switch reroutes across slices locally), multiple
//! failures supported as long as some slice avoids them. The paper's
//! related-work critique — "routers follow certain rules that ensure
//! loop-free, but reduce path diversity" — shows up here as the slices'
//! shared shortest-path skeleton on lightly-meshed graphs.

use kar_simnet::{DropReason, ForwardDecision, Forwarder, Packet, SwitchCtx};
use kar_topology::{NodeId, PortIx, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};

/// Stateful path-splicing forwarder: `k` sliced next-hop tables.
#[derive(Debug, Clone)]
pub struct PathSplicing {
    /// `(switch, destination) → next-hop port per slice`.
    table: HashMap<(NodeId, NodeId), Vec<PortIx>>,
    slices: usize,
}

impl PathSplicing {
    /// Precomputes `k` slices toward each destination. Slice 0 uses
    /// uniform weights (plain shortest paths); slices 1.. draw strongly
    /// varied link weights (seeded), producing structurally different —
    /// but each individually loop-free — trees. Splicing survives a
    /// failure exactly when some slice's tree avoids it from the splice
    /// point onward: diversity is probabilistic, which is the "reduced
    /// path diversity" critique the paper levels at this class of
    /// schemes.
    pub fn precompute(topo: &Topology, destinations: &[NodeId], k: usize, seed: u64) -> Self {
        let mut table: HashMap<(NodeId, NodeId), Vec<PortIx>> = HashMap::new();
        for &dst in destinations {
            for slice in 0..k {
                let mut rng = StdRng::seed_from_u64(seed ^ ((slice as u64) << 24));
                let weights: Vec<u64> = (0..topo.link_count())
                    .map(|_| {
                        if slice == 0 {
                            10
                        } else {
                            rng.gen_range(1..=20)
                        }
                    })
                    .collect();
                let (next_hop, _dist) = weighted_tree(topo, dst, &weights);
                for sw in topo.core_nodes() {
                    if let Some(&port) = next_hop.get(&sw) {
                        table.entry((sw, dst)).or_default().push(port);
                    }
                }
            }
        }
        PathSplicing { table, slices: k }
    }

    /// Slices per destination.
    pub fn slice_count(&self) -> usize {
        self.slices
    }

    /// Total state entries (each slice of each `(switch, dst)` pair).
    pub fn total_entries(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }
}

/// Dijkstra tree toward `dst` under per-link weights; returns each core
/// switch's next-hop port and every node's distance to `dst`.
fn weighted_tree(
    topo: &Topology,
    dst: NodeId,
    weights: &[u64],
) -> (HashMap<NodeId, PortIx>, HashMap<NodeId, u64>) {
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut next: HashMap<NodeId, PortIx> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(dst, 0);
    heap.push(std::cmp::Reverse((0u64, dst)));
    while let Some(std::cmp::Reverse((d, n))) = heap.pop() {
        if dist.get(&n).copied().unwrap_or(u64::MAX) < d {
            continue;
        }
        for (_, l, peer) in topo.neighbors(n) {
            let nd = d + weights[l.0];
            if nd < dist.get(&peer).copied().unwrap_or(u64::MAX) {
                dist.insert(peer, nd);
                // peer's next hop toward dst is via this link back to n.
                if let Some(port) = topo.port_towards(peer, n) {
                    next.insert(peer, port);
                }
                heap.push(std::cmp::Reverse((nd, peer)));
            }
        }
    }
    (next, dist)
}

impl Forwarder for PathSplicing {
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        _rng: &mut StdRng,
    ) -> ForwardDecision {
        let Some(ports) = self.table.get(&(ctx.node, pkt.dst)) else {
            return ForwardDecision::Drop(DropReason::NoRoute);
        };
        // The packet sticks to one slice (tree) — trees are loop-free,
        // interleaving them is not. The deflection counter doubles as
        // the current slice: it advances only when the sticky slice's
        // port is down, splicing the rest of the journey onto the next
        // tree.
        for attempt in 0..ports.len() {
            let slice = (pkt.deflections as usize + attempt) % ports.len();
            let port = ports[slice];
            if ctx.port_available(port) {
                pkt.deflections = pkt.deflections.saturating_add(attempt as u16);
                return ForwardDecision::Output(port);
            }
        }
        ForwardDecision::Drop(DropReason::NoRoute)
    }

    fn name(&self) -> &str {
        "PathSplicing"
    }

    fn state_entries(&self, node: NodeId) -> usize {
        self.table
            .iter()
            .filter(|&(&(sw, _), _)| sw == node)
            .map(|(_, v)| v.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableEdge;
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
    use kar_topology::topo15;

    #[test]
    fn state_grows_with_slices() {
        let topo = topo15::build();
        let dsts = [topo.expect("AS3")];
        let ps2 = PathSplicing::precompute(&topo, &dsts, 2, 1);
        let ps4 = PathSplicing::precompute(&topo, &dsts, 4, 1);
        assert_eq!(ps2.slice_count(), 2);
        assert_eq!(ps2.total_entries(), 2 * topo.core_nodes().len());
        assert_eq!(ps4.total_entries(), 4 * topo.core_nodes().len());
        // k× the stateful footprint of single-tree fast failover.
        let sw13 = topo.expect("SW13");
        assert_eq!(ps4.state_entries(sw13), 4);
    }

    fn run(slices: usize, failures: &[(&str, &str)]) -> u64 {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let ps = PathSplicing::precompute(&topo, &[as3], slices, 0);
        let mut sim = Sim::new(
            &topo,
            Box::new(ps),
            Box::new(TableEdge),
            SimConfig::default(),
        );
        for (a, b) in failures {
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
        }
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        sim.stats().delivered
    }

    #[test]
    fn healthy_network_delivers_on_slice_zero() {
        assert_eq!(run(3, &[]), 50);
    }

    #[test]
    fn splicing_survives_single_failures() {
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let delivered = run(3, &[(a, b)]);
            assert_eq!(delivered, 50, "failure {a}-{b}");
        }
    }

    #[test]
    fn enough_slices_survive_double_failures() {
        let survived = run(4, &[("SW7", "SW13"), ("SW13", "SW29")]);
        assert!(survived > 0, "some slice should avoid both failures");
    }

    #[test]
    fn diversity_is_probabilistic_not_guaranteed() {
        // The paper's critique of this scheme class: the slices' rules
        // keep them loop-free but "reduce path diversity" — for some
        // weight draws no slice avoids a given failure. Demonstrate that
        // at least one seed in a small range fails a failure KAR's NIP
        // deflection survives unconditionally.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut failed_seeds = 0;
        for seed in 0..6u64 {
            let ps = PathSplicing::precompute(&topo, &[as3], 3, seed);
            let mut sim = Sim::new(
                &topo,
                Box::new(ps),
                Box::new(TableEdge),
                SimConfig::default(),
            );
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW13", "SW29"));
            for i in 0..20 {
                sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            if sim.stats().delivered < 20 {
                failed_seeds += 1;
            }
        }
        assert!(
            failed_seeds > 0,
            "splicing's diversity should not be unconditional"
        );
    }
}
