//! Shared experiment harness: one bulk TCP flow over a KAR network with
//! an optional scheduled link failure — the shape of every throughput
//! experiment in the paper (§3).

use kar::{DeflectionTechnique, EncodingCache, KarNetwork, Protection, ReroutePolicy};
use kar_simnet::{FlowId, SimTime};
use kar_tcp::{BulkFlow, CongestionControl, IntervalMeter, TcpConfig};
use kar_topology::{LinkId, NodeId, Topology};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failure window: the link goes down at `down` and up at `up`.
#[derive(Debug, Clone, Copy)]
pub struct FailureWindow {
    /// The failed link.
    pub link: LinkId,
    /// Failure time.
    pub down: SimTime,
    /// Repair time.
    pub up: SimTime,
}

/// Specification of one TCP throughput run.
#[derive(Debug, Clone)]
pub struct TcpRun<'a> {
    /// The network.
    pub topo: &'a Topology,
    /// Deflection technique in every core switch.
    pub technique: DeflectionTechnique,
    /// The pinned primary path (edge → … → edge), as in the paper's
    /// scenarios.
    pub primary: Vec<NodeId>,
    /// Protection for the forward (data) direction.
    pub protection: Protection,
    /// Optional failure window.
    pub failure: Option<FailureWindow>,
    /// Total simulated duration.
    pub duration: SimTime,
    /// Meter bin width.
    pub bin: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// Per-packet hop budget.
    pub ttl: u16,
    /// Congestion-control algorithm for the measured flow.
    pub congestion: CongestionControl,
    /// Shared-softswitch service time per traversal, if modeled.
    ///
    /// The paper's Mininet host runs every userspace switch on shared
    /// CPU; its 200 Mbit/s ceiling on the 15-node network shows the
    /// no-failure workload already saturated that CPU, which is what
    /// converts deflection hop-inflation into throughput loss. Calibrate
    /// per topology so the no-failure run sits near saturation.
    pub switch_service: Option<SimTime>,
    /// Optional shared route-encoding cache. Sweeps that re-run the same
    /// routes attach one cache to every spec; cached encodes are
    /// byte-identical to fresh ones, so results are unaffected.
    pub cache: Option<Arc<EncodingCache>>,
    /// Run label for the observability dump (see [`crate::obs`]); when
    /// empty a `tcp/seed<N>` fallback is used. Only read while a
    /// `--metrics` sink is collecting — never affects the simulation.
    pub label: String,
    /// Use the precomputed-residue fast path (default). `KAR_FAST_PATH=0`
    /// forces naive division so CI can byte-compare the two dataplanes.
    pub fast_path: bool,
}

impl<'a> TcpRun<'a> {
    /// A run over `primary` with sensible defaults (NIP, no protection,
    /// 10 s, 1 s bins, seed 1).
    pub fn new(topo: &'a Topology, primary: Vec<NodeId>) -> Self {
        TcpRun {
            topo,
            technique: DeflectionTechnique::Nip,
            primary,
            protection: Protection::None,
            failure: None,
            duration: SimTime::from_secs(10),
            bin: SimTime::from_secs(1),
            seed: 1,
            ttl: 128,
            congestion: CongestionControl::Reno,
            switch_service: None,
            cache: None,
            label: String::new(),
            fast_path: env_knob("KAR_FAST_PATH", 1) != 0,
        }
    }
}

/// Result of one TCP run.
#[derive(Debug, Clone)]
pub struct TcpRunResult {
    /// The receiver's goodput meter.
    pub meter: IntervalMeter,
    /// Network statistics snapshot.
    pub delivered: u64,
    /// Packets dropped in the network.
    pub dropped: u64,
    /// Deflections experienced by delivered packets.
    pub deflections: u64,
    /// Mean hops per delivered packet (0.0 when nothing was delivered —
    /// a starved run, not a zero-hop one; `delivered` disambiguates).
    pub mean_hops: f64,
    /// Out-of-order data arrivals observed at the destination edge.
    pub reordered: u64,
    /// Host wall-clock time the run took (telemetry only — excluded from
    /// [`TcpRunResult::digest`] because it varies between invocations).
    pub wall: Duration,
}

impl TcpRunResult {
    /// A canonical serialization of every *simulated* quantity — all
    /// fields except the host wall clock. Two runs of the same spec are
    /// deterministic exactly when their digests are byte-identical, which
    /// is what the parallel-runner conformance tests compare.
    pub fn digest(&self) -> String {
        format!(
            "meter={:?} delivered={} dropped={} deflections={} mean_hops={:?} reordered={}",
            self.meter,
            self.delivered,
            self.dropped,
            self.deflections,
            self.mean_hops,
            self.reordered,
        )
    }
}

/// Executes one bulk-TCP run and returns the meter plus network stats.
///
/// The reverse (ACK) direction always gets an auto-planned full
/// protection so the measured effect is the forward data path — except
/// with `DeflectionTechnique::None`, where protection is irrelevant
/// because nothing deflects.
///
/// # Panics
///
/// Panics if the scenario is malformed (routes fail to install) —
/// experiment constants are validated by tests.
pub fn run_tcp(spec: &TcpRun<'_>) -> TcpRunResult {
    let started = Instant::now();
    let obs = crate::obs::RunObs::begin();
    let src = *spec.primary.first().expect("non-empty primary");
    let dst = *spec.primary.last().expect("non-empty primary");
    let mut builder = KarNetwork::builder(spec.topo, spec.technique)
        .seed(spec.seed)
        .ttl(spec.ttl)
        .fast_path(spec.fast_path)
        .reroute(ReroutePolicy::Recompute {
            latency: SimTime::from_millis(2),
        })
        .obs(obs.handle.clone());
    if let Some(profiler) = &obs.profiler {
        builder = builder.profiler(profiler.clone());
    }
    if let Some(service) = spec.switch_service {
        builder = builder.switch_service(service);
    }
    if let Some(cache) = &spec.cache {
        builder = builder.encoding_cache(cache.clone());
    }
    let mut net = builder.build();
    net.install_explicit(spec.primary.clone(), &spec.protection)
        .expect("forward route installs");
    let mut reverse = spec.primary.clone();
    reverse.reverse();
    net.install_explicit(reverse, &Protection::AutoFull)
        .expect("reverse route installs");
    let mut sim = net.into_sim();
    if let Some(f) = spec.failure {
        sim.schedule_link_down(f.down, f.link);
        sim.schedule_link_up(f.up, f.link);
    }
    let flow = BulkFlow::install(
        &mut sim,
        src,
        dst,
        FlowId(1),
        TcpConfig {
            congestion: spec.congestion,
            ..TcpConfig::default()
        },
        spec.bin,
    );
    sim.run_until(spec.duration);
    if spec.label.is_empty() {
        obs.submit(&format!("tcp/seed{}", spec.seed), spec.topo);
    } else {
        obs.submit(&spec.label, spec.topo);
    }
    let meter = flow.meter.borrow().clone();
    let stats = sim.stats();
    let flow_stats = stats.flows.get(&FlowId(1));
    TcpRunResult {
        meter,
        delivered: stats.delivered,
        dropped: stats.dropped(),
        deflections: stats.deflections,
        mean_hops: stats.mean_hops().unwrap_or(0.0),
        reordered: flow_stats.map(|f| f.out_of_order).unwrap_or(0),
        wall: started.elapsed(),
    }
}

/// Reads an integer experiment knob from the environment (`KAR_RUNS`,
/// `KAR_SECONDS`, …) with a default — lets CI scale experiments down and
/// a thorough reproduction scale them up.
pub fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;

    #[test]
    fn baseline_run_saturates_topo15() {
        let topo = topo15::build();
        let spec = TcpRun {
            duration: SimTime::from_secs(5),
            ..TcpRun::new(&topo, topo15::primary_route(&topo))
        };
        let res = run_tcp(&spec);
        let mean = res
            .meter
            .mean_mbps(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!(mean > 150.0, "steady state ≈ 190 Mbit/s, got {mean}");
        // `reordered` counts out-of-order arrivals including Reno's own
        // loss retransmissions, so it is non-zero even without failures;
        // deflections must be exactly zero though.
        assert_eq!(res.deflections, 0);
    }

    #[test]
    fn failure_without_deflection_starves_throughput() {
        let topo = topo15::build();
        let spec = TcpRun {
            technique: DeflectionTechnique::None,
            duration: SimTime::from_secs(8),
            failure: Some(FailureWindow {
                link: topo.expect_link("SW7", "SW13"),
                down: SimTime::from_secs(2),
                up: SimTime::from_secs(6),
            }),
            ..TcpRun::new(&topo, topo15::primary_route(&topo))
        };
        let res = run_tcp(&spec);
        let during = res
            .meter
            .mean_mbps(SimTime::from_secs(3), SimTime::from_secs(6));
        assert!(during < 1.0, "no deflection → starved, got {during}");
        assert!(res.dropped > 0);
    }

    #[test]
    fn nip_with_protection_keeps_traffic_flowing() {
        let topo = topo15::build();
        let spec = TcpRun {
            protection: Protection::AutoFull,
            duration: SimTime::from_secs(8),
            failure: Some(FailureWindow {
                link: topo.expect_link("SW7", "SW13"),
                down: SimTime::from_secs(2),
                up: SimTime::from_secs(8),
            }),
            ..TcpRun::new(&topo, topo15::primary_route(&topo))
        };
        let res = run_tcp(&spec);
        let during = res
            .meter
            .mean_mbps(SimTime::from_secs(3), SimTime::from_secs(8));
        assert!(
            during > 50.0,
            "NIP + full protection must keep TCP alive, got {during}"
        );
        assert!(res.deflections > 0);
    }

    #[test]
    fn env_knob_parses() {
        std::env::set_var("KAR_TEST_KNOB_X", "7");
        assert_eq!(env_knob("KAR_TEST_KNOB_X", 3), 7);
        assert_eq!(env_knob("KAR_TEST_KNOB_MISSING", 3), 3);
        std::env::set_var("KAR_TEST_KNOB_X", "junk");
        assert_eq!(env_knob("KAR_TEST_KNOB_X", 3), 3);
    }
}
