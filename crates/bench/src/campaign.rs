//! Scale-sweep campaign engine: families of generated topologies,
//! hundreds of concurrent CBR flows per cell, streaming aggregation,
//! and checkpointed resume.
//!
//! A *campaign* is a grid of cells — `(topology family, switch count,
//! protection level)` — each of which builds a coprime-ID topology from
//! [`kar_topology::gen`], installs one KAR route per flow pair, fails
//! one core link on the first route's primary path, and drives every
//! flow with paced CBR traffic until the network drains. Per-packet
//! latency and hop data go straight into the observability layer's
//! log-linear histograms, so a cell's memory footprint is independent of
//! its packet count: the record keeps only count/mean/p50/p95/p99
//! summaries ([`kar_obs::HistogramSummary`]).
//!
//! Cells are independent and seeded from the campaign seed plus a hash
//! of the cell key (never the enumeration index), so every simulated
//! quantity is a pure function of `(cell, seed)` — a sweep at `--jobs N`
//! is byte-identical to the serial one, and a resumed sweep to an
//! uninterrupted one. Host wall-clock measurements (encode latency,
//! events/sec) are the one exception; `KAR_SCALE_WALL=0` omits them so
//! whole-file byte-identity is testable.
//!
//! Interruption is handled with a JSON-lines checkpoint file: a
//! fingerprint header (campaign configuration) followed by one line per
//! completed cell carrying the cell's record verbatim. On resume,
//! matching cells are spliced back without recomputation; a fingerprint
//! mismatch discards the file.

use crate::harness::env_knob;
use crate::runner::run_map;
use kar::{
    verify_route, DeflectionTechnique, EncodeRequest, EncodingCache, KarNetwork, Outcome,
    Protection,
};
use kar_obs::{Entity, HistogramSummary, ObsHandle, Profiler};
use kar_rns::{route_id_bit_length, IdAllocator, IdStrategy};
use kar_simnet::{App, FlowId, HostCtx, Packet, PacketKind, SimTime};
use kar_topology::{gen, paths, LinkId, LinkParams, NodeId, Topology};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Topology family of a campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`gen::try_ring`]: one host per switch, degree 3 everywhere — the
    /// longest paths and the smallest deflection fan-out.
    Ring,
    /// [`gen::try_grid`]: the squarest `rows × cols` factorization of
    /// the switch count, hosts on the four corners.
    Grid,
    /// [`gen::try_random_connected_hosts`]: spanning tree plus `n/2`
    /// chords, one host per switch.
    Random,
}

impl Family {
    /// Stable label used in cell keys and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            Family::Ring => "ring",
            Family::Grid => "grid",
            Family::Random => "random",
        }
    }

    /// Every family, in campaign order.
    pub const ALL: [Family; 3] = [Family::Ring, Family::Grid, Family::Random];

    /// Builds the family's topology at `switches` switches.
    ///
    /// # Errors
    ///
    /// Propagates [`gen::GenError`] when the ID strategy cannot cover
    /// the requested size.
    pub fn build(
        self,
        switches: usize,
        seed: u64,
        strategy: IdStrategy,
    ) -> Result<Topology, gen::GenError> {
        let params = LinkParams::default();
        match self {
            Family::Ring => gen::try_ring(switches, strategy, params),
            Family::Grid => {
                let (rows, cols) = squarest(switches);
                gen::try_grid(rows, cols, strategy, params)
            }
            Family::Random => {
                gen::try_random_connected_hosts(switches, switches / 2, seed, strategy, params)
            }
        }
    }
}

/// The squarest `rows × cols` factorization of `n` (`rows ≤ cols`,
/// `rows * cols == n`).
fn squarest(n: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            rows = r;
        }
        r += 1;
    }
    (rows, n / rows)
}

/// Protection level of a campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtLevel {
    /// No protection: deflection alone fights for packets.
    None,
    /// [`Protection::AutoBudget`] with a 64-bit route-ID budget.
    Budget,
    /// [`Protection::AutoFull`]: every primary link protected.
    Full,
}

impl ProtLevel {
    /// Stable label used in cell keys and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            ProtLevel::None => "none",
            ProtLevel::Budget => "budget64",
            ProtLevel::Full => "full",
        }
    }

    /// Every level, in campaign order.
    pub const ALL: [ProtLevel; 3] = [ProtLevel::None, ProtLevel::Budget, ProtLevel::Full];

    /// The concrete [`Protection`] this level maps to.
    pub fn protection(self) -> Protection {
        match self {
            ProtLevel::None => Protection::None,
            ProtLevel::Budget => Protection::AutoBudget { max_bits: 64 },
            ProtLevel::Full => Protection::AutoFull,
        }
    }
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Topology family.
    pub family: Family,
    /// Core switch count.
    pub switches: usize,
    /// Protection level.
    pub prot: ProtLevel,
}

impl Cell {
    /// The cell's stable key — used for checkpoint matching and seeding,
    /// never its position in the enumeration (so adding sizes or
    /// families later cannot silently reseed existing cells).
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.family.label(),
            self.switches,
            self.prot.label()
        )
    }
}

/// Campaign configuration. `Default` is the full 16→256 sweep.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed; each cell derives its own from this plus a hash of
    /// its key.
    pub seed: u64,
    /// Switch counts to sweep (doubling sequence by default).
    pub sizes: Vec<usize>,
    /// Families to sweep.
    pub families: Vec<Family>,
    /// Protection levels to sweep.
    pub prots: Vec<ProtLevel>,
    /// Concurrent flows per cell = `flows_per_switch × switches`,
    /// clamped to `[64, 1024]`.
    pub flows_per_switch: usize,
    /// Datagrams each flow sends.
    pub packets_per_flow: u64,
    /// Switch-ID allocation strategy for generated topologies.
    pub strategy: IdStrategy,
    /// Checkpoint file (JSON lines); `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Worker threads for the cell sweep.
    pub jobs: usize,
    /// Include host wall-clock fields (encode latency, events/sec) in
    /// records. Off, the emitted JSON is a pure function of the
    /// configuration — byte-identical across runs and hosts.
    pub wall: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            sizes: vec![16, 32, 64, 128, 256],
            families: Family::ALL.to_vec(),
            prots: ProtLevel::ALL.to_vec(),
            flows_per_switch: 2,
            packets_per_flow: 30,
            strategy: IdStrategy::SmallestPrimes,
            checkpoint: None,
            jobs: 1,
            wall: env_knob("KAR_SCALE_WALL", 1) != 0,
        }
    }
}

impl CampaignConfig {
    /// The cell grid in deterministic order: family-major, then size,
    /// then protection.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &switches in &self.sizes {
                for &prot in &self.prots {
                    out.push(Cell {
                        family,
                        switches,
                        prot,
                    });
                }
            }
        }
        out
    }

    /// Configuration fingerprint: two checkpoints interoperate exactly
    /// when their fingerprints match. Deliberately excludes `jobs`,
    /// `wall` and the checkpoint path — none of them affects simulated
    /// results.
    pub fn fingerprint(&self) -> String {
        let join = |parts: Vec<String>| parts.join("+");
        format!(
            "scale-v1 seed={} sizes={} families={} prots={} fps={} ppf={} strategy={:?}",
            self.seed,
            join(self.sizes.iter().map(|n| n.to_string()).collect()),
            join(
                self.families
                    .iter()
                    .map(|f| f.label().to_string())
                    .collect()
            ),
            join(self.prots.iter().map(|p| p.label().to_string()).collect()),
            self.flows_per_switch,
            self.packets_per_flow,
            self.strategy,
        )
    }

    /// The seed of one cell: a splitmix64 of the campaign seed and the
    /// FNV-1a hash of the cell key.
    pub fn cell_seed(&self, cell: &Cell) -> u64 {
        splitmix64(self.seed ^ fnv1a(&cell.key()))
    }
}

pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic sequence of pseudo-random draws for flow placement —
/// a tiny splitmix64 stream so cell workloads never depend on a global
/// RNG.
pub(crate) struct DrawStream {
    state: u64,
}

impl DrawStream {
    pub(crate) fn new(seed: u64) -> Self {
        DrawStream { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Paces several CBR flows out of one host (the engine attaches one app
/// per edge node, so flows sharing a source must share the app). Timer
/// ids select the flow.
pub(crate) struct FlowFleet {
    pub(crate) flows: Vec<FleetFlow>,
}

pub(crate) struct FleetFlow {
    pub(crate) dst: NodeId,
    pub(crate) flow: FlowId,
    pub(crate) interval: SimTime,
    pub(crate) offset: SimTime,
    pub(crate) packet_bytes: u32,
    pub(crate) limit: u64,
    pub(crate) sent: u64,
}

impl FlowFleet {
    fn send_one(&mut self, ctx: &mut HostCtx<'_>, ix: usize) {
        let f = &mut self.flows[ix];
        if f.sent >= f.limit {
            return;
        }
        ctx.send(f.dst, f.flow, f.sent, PacketKind::Probe, f.packet_bytes);
        f.sent += 1;
        if f.sent < f.limit {
            ctx.set_timer(f.interval, ix as u64);
        }
    }
}

impl App for FlowFleet {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for ix in 0..self.flows.len() {
            // Stagger starts so a 1024-flow cell is paced traffic, not a
            // time-zero burst into drop-tail queues.
            ctx.set_timer(self.flows[ix].offset, ix as u64);
        }
    }

    fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: &Packet) {}

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        self.send_one(ctx, id as usize);
    }
}

/// Everything one completed cell reports. Serialized with
/// [`CellRecord::to_json`]; the checkpoint stores the JSON verbatim so a
/// resumed campaign reproduces its output byte-for-byte without
/// recomputing.
#[derive(Debug, Clone, Default)]
pub struct CellRecord {
    /// Cell key (`family/switches/protection`).
    pub key: String,
    /// Topology family label.
    pub family: String,
    /// Core switches requested.
    pub switches: usize,
    /// Protection level label.
    pub protection: String,
    /// The cell's derived seed.
    pub seed: u64,
    /// ID allocation failure, when the strategy could not cover the
    /// cell: `achieved` switches out of `switches` (every traffic field
    /// below is zero then).
    pub gen_error: Option<usize>,
    /// Edge hosts in the topology.
    pub hosts: usize,
    /// Links in the topology.
    pub links: usize,
    /// Concurrent flows driven.
    pub flows: usize,
    /// Distinct `(src, dst)` routes installed.
    pub routes: usize,
    /// Worst-case route-ID bit length over the whole ID set (Eq. 9 on
    /// every switch ID).
    pub network_bits: u32,
    /// Largest installed route ID, in bits.
    pub route_bits_max: u32,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Delivery ratio.
    pub delivery_ratio: f64,
    /// Packets dropped.
    pub dropped: u64,
    /// Deflection events.
    pub deflections: u64,
    /// Per-packet latency summary (nanoseconds).
    pub latency: HistogramSummary,
    /// Per-packet hop-count summary.
    pub hops: HistogramSummary,
    /// Discrete events dispatched (deterministic).
    pub events: u64,
    /// Single-failure verification cases sampled on the first route.
    pub verify_cases: usize,
    /// Sampled cases classified as inescapable loops.
    pub verify_loops: usize,
    /// Sampled cases classified as blackholes.
    pub verify_blackholes: usize,
    /// Sampled cases that deliver with certainty.
    pub verify_delivered: usize,
    /// Mean encode wall time per installed route, nanoseconds
    /// (`None` when wall metrics are off).
    pub encode_ns_mean: Option<f64>,
    /// Simulation wall time in milliseconds (`None` when off).
    pub sim_wall_ms: Option<f64>,
    /// Dispatched events per wall second (`None` when off).
    pub events_per_sec: Option<f64>,
}

impl CellRecord {
    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push('{');
        write!(o, "\"cell\":\"{}\"", self.key).unwrap();
        write!(o, ",\"family\":\"{}\"", self.family).unwrap();
        write!(o, ",\"switches\":{}", self.switches).unwrap();
        write!(o, ",\"protection\":\"{}\"", self.protection).unwrap();
        write!(o, ",\"seed\":{}", self.seed).unwrap();
        if let Some(achieved) = self.gen_error {
            write!(o, ",\"gen_error_achieved\":{achieved}").unwrap();
        }
        write!(o, ",\"hosts\":{}", self.hosts).unwrap();
        write!(o, ",\"links\":{}", self.links).unwrap();
        write!(o, ",\"flows\":{}", self.flows).unwrap();
        write!(o, ",\"routes\":{}", self.routes).unwrap();
        write!(o, ",\"network_bits\":{}", self.network_bits).unwrap();
        write!(o, ",\"route_bits_max\":{}", self.route_bits_max).unwrap();
        write!(o, ",\"injected\":{}", self.injected).unwrap();
        write!(o, ",\"delivered\":{}", self.delivered).unwrap();
        write!(o, ",\"delivery_ratio\":{}", json_f64(self.delivery_ratio)).unwrap();
        write!(o, ",\"dropped\":{}", self.dropped).unwrap();
        write!(o, ",\"deflections\":{}", self.deflections).unwrap();
        write!(o, ",\"latency_ns\":{}", summary_json(&self.latency)).unwrap();
        write!(o, ",\"hops\":{}", summary_json(&self.hops)).unwrap();
        write!(o, ",\"events\":{}", self.events).unwrap();
        write!(o, ",\"verify_cases\":{}", self.verify_cases).unwrap();
        write!(o, ",\"verify_loops\":{}", self.verify_loops).unwrap();
        write!(o, ",\"verify_blackholes\":{}", self.verify_blackholes).unwrap();
        write!(o, ",\"verify_delivered\":{}", self.verify_delivered).unwrap();
        if let Some(v) = self.encode_ns_mean {
            write!(o, ",\"encode_ns_mean\":{}", json_f64(v)).unwrap();
        }
        if let Some(v) = self.sim_wall_ms {
            write!(o, ",\"sim_wall_ms\":{}", json_f64(v)).unwrap();
        }
        if let Some(v) = self.events_per_sec {
            write!(o, ",\"events_per_sec\":{}", json_f64(v)).unwrap();
        }
        o.push('}');
        o
    }
}

fn summary_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        s.count,
        json_f64(s.mean),
        s.p50,
        s.p95,
        s.p99
    )
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Extracts the value of a top-level `"field":` from a single-line JSON
/// record — enough for table rendering and tests without a JSON parser.
/// Returns the raw token (number, string with quotes, or object).
pub fn json_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    let mut in_str = false;
    for (i, c) in rest.char_indices() {
        match c {
            '"' if !in_str => in_str = true,
            '"' if in_str => in_str = false,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                if depth == 0 {
                    return Some(&rest[..i]);
                }
                depth -= 1;
            }
            ',' if !in_str && depth == 0 => return Some(&rest[..i]),
            _ => {}
        }
    }
    Some(rest)
}

/// Runs one campaign cell to completion and returns its record.
pub fn run_cell(cfg: &CampaignConfig, cell: &Cell) -> CellRecord {
    let seed = cfg.cell_seed(cell);
    let mut record = CellRecord {
        key: cell.key(),
        family: cell.family.label().to_string(),
        switches: cell.switches,
        protection: cell.prot.label().to_string(),
        seed,
        ..CellRecord::default()
    };
    let topo = match cell.family.build(cell.switches, seed, cfg.strategy) {
        Ok(t) => t,
        Err(e) => {
            record.gen_error = Some(e.assigned);
            return record;
        }
    };
    record.hosts = topo.edge_nodes().len();
    record.links = topo.link_count();
    record.network_bits = route_id_bit_length(&topo.switch_ids());

    // Flow placement: seeded draws over the host set, self-pairs
    // excluded. Hundreds of flows per cell (paper's "heavy traffic"
    // regime), clamped so small cells still see contention and huge ones
    // stay tractable.
    let hosts = topo.edge_nodes();
    let n_flows = (cfg.flows_per_switch * cell.switches).clamp(64, 1024);
    let mut draws = DrawStream::new(seed);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let src = hosts[draws.below(hosts.len())];
        let mut dst = hosts[draws.below(hosts.len())];
        while dst == src {
            dst = hosts[draws.below(hosts.len())];
        }
        pairs.push((src, dst));
    }
    record.flows = pairs.len();

    // Install one route per distinct pair through a per-cell encoding
    // cache (the CrtCache/Reducer stress the tentpole is after happens
    // inside these encodes and in the fast-path dataplane below).
    let protection = cell.prot.protection();
    let ttl = ((cell.switches * 4).clamp(64, 4096)) as u16;
    let obs = ObsHandle::enabled();
    let profiler = Arc::new(Profiler::new());
    let cache = Arc::new(EncodingCache::new());
    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(seed)
        .ttl(ttl)
        .fast_path(true)
        // Detection plus the recovery loop: without them the controller
        // never learns of the failure, keeps handing misdelivered
        // packets their stale route, and the edge → deflection → edge
        // cycle runs forever (each recompute resets the TTL).
        .detection_delay(SimTime::from_micros(50))
        .recovery(kar::RecoveryConfig {
            notification_delay: SimTime::from_micros(200),
            ..kar::RecoveryConfig::default()
        })
        .obs(obs.clone())
        .profiler(profiler.clone())
        .encoding_cache(cache)
        .build();
    let mut installed: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    let mut encode_ns_total = 0u128;
    for &(src, dst) in &pairs {
        if installed.contains_key(&(src.0, dst.0)) {
            continue;
        }
        let t0 = Instant::now();
        let outcome = net
            .encode(&EncodeRequest::new(src, dst).with_protection(protection.clone()))
            .expect("generated topologies are connected");
        encode_ns_total += t0.elapsed().as_nanos();
        installed.insert((src.0, dst.0), outcome.route.bit_length());
    }
    record.routes = installed.len();
    record.route_bits_max = installed.values().copied().max().unwrap_or(0);
    if cfg.wall && record.routes > 0 {
        record.encode_ns_mean = Some(encode_ns_total as f64 / record.routes as f64);
    }

    // Fail one core link on the first flow's primary path (the middle
    // one), so the failure provably intersects live traffic.
    let (src0, dst0) = pairs[0];
    let primary = paths::bfs_shortest_path(&topo, src0, dst0).expect("installed routes have paths");
    let core_links = core_links_along(&topo, &primary);
    let failed = core_links.get(core_links.len() / 2).copied();

    // Drive the flows: one FlowFleet app per source host, CBR pacing
    // with seeded per-flow interval and start offset.
    let mut sim = net.into_sim();
    if let Some(link) = failed {
        sim.schedule_link_down(SimTime::ZERO, link);
    }
    let mut fleets: BTreeMap<usize, Vec<FleetFlow>> = BTreeMap::new();
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        let interval = SimTime::from_micros(1_000 + draws.below(1_000) as u64);
        let offset = SimTime::from_micros(draws.below(2_000) as u64);
        fleets.entry(src.0).or_default().push(FleetFlow {
            dst,
            flow: FlowId(i as u32),
            interval,
            offset,
            packet_bytes: 700,
            limit: cfg.packets_per_flow,
            sent: 0,
        });
    }
    for (src, flows) in fleets {
        sim.add_app(NodeId(src), Box::new(FlowFleet { flows }));
    }
    let t0 = Instant::now();
    sim.run_to_quiescence();
    let sim_wall = t0.elapsed();

    let stats = sim.stats();
    record.injected = stats.injected;
    record.delivered = stats.delivered;
    record.delivery_ratio = stats.delivery_ratio();
    record.dropped = stats.dropped();
    record.deflections = stats.deflections;
    if let Some(bundle) = obs.get() {
        record.latency = bundle
            .metrics
            .histogram(Entity::Global, "latency_ns")
            .summary();
        record.hops = bundle.metrics.histogram(Entity::Global, "hops").summary();
    }
    record.events = profiler.total_events();
    if cfg.wall {
        record.sim_wall_ms = Some(sim_wall.as_secs_f64() * 1e3);
        record.events_per_sec = Some(if sim_wall.as_secs_f64() > 0.0 {
            record.events as f64 / sim_wall.as_secs_f64()
        } else {
            0.0
        });
    }

    // Sampled verification: exhaustive single-failure verification is
    // O(pairs × links) and intractable here, so classify the first
    // route under each of (up to) six single failures along its own
    // primary path — the failures that matter to it.
    let spec = kar::RouteSpec::unprotected(primary.clone());
    let route = match &protection {
        Protection::None => kar::EncodedRoute::encode(&topo, &spec),
        _ => kar::protection::encode_with_protection(&topo, primary.clone(), &protection),
    }
    .expect("first route re-encodes");
    for link in core_links.iter().take(6) {
        let report = verify_route(
            &topo,
            &route,
            src0,
            dst0,
            DeflectionTechnique::Nip,
            &HashSet::from([*link]),
        );
        record.verify_cases += 1;
        match report.outcome {
            Outcome::Loop => record.verify_loops += 1,
            Outcome::Blackhole => record.verify_blackholes += 1,
            Outcome::Delivered => record.verify_delivered += 1,
            _ => {}
        }
    }
    record
}

/// Core-core links along a path, in path order.
fn core_links_along(topo: &Topology, path: &[NodeId]) -> Vec<LinkId> {
    path.windows(2)
        .filter(|w| topo.switch_id(w[0]).is_some() && topo.switch_id(w[1]).is_some())
        .filter_map(|w| topo.link_between(w[0], w[1]))
        .collect()
}

/// One row of the key-growth study: how far an [`IdStrategy`] stretches
/// on ring-degree switches, and the worst-case route-ID bit length at
/// the achieved size.
#[derive(Debug, Clone)]
pub struct KeyGrowthRow {
    /// Strategy label.
    pub strategy: String,
    /// Ring size requested.
    pub requested: usize,
    /// Switches that received an ID (`== requested` when the build
    /// succeeded).
    pub achieved: usize,
    /// Worst-case route-ID bit length over the achieved ID set.
    pub bits: u32,
}

impl KeyGrowthRow {
    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"strategy\":\"{}\",\"requested\":{},\"achieved\":{},\"bits\":{}}}",
            self.strategy, self.requested, self.achieved, self.bits
        )
    }
}

/// The key-growth study: for each strategy and campaign size, try to
/// build the ring and report the achievable ceiling (via
/// [`gen::try_ring`]'s error) plus Eq. 9's worst-case bit length at
/// that size. `PrimesBelow` models fixed-width switch-ID hardware and
/// is where ceilings actually bite.
pub fn key_growth_study(sizes: &[usize]) -> Vec<KeyGrowthRow> {
    let strategies: [(String, IdStrategy); 5] = [
        ("SmallestPrimes".into(), IdStrategy::SmallestPrimes),
        ("SmallestCoprime".into(), IdStrategy::SmallestCoprime),
        ("PrimesBelow(2^8)".into(), IdStrategy::PrimesBelow(1 << 8)),
        ("PrimesBelow(2^10)".into(), IdStrategy::PrimesBelow(1 << 10)),
        ("PrimesBelow(2^12)".into(), IdStrategy::PrimesBelow(1 << 12)),
    ];
    let mut rows = Vec::new();
    for (label, strategy) in &strategies {
        for &n in sizes {
            let achieved = match gen::try_ring(n, *strategy, LinkParams::default()) {
                Ok(_) => n,
                Err(e) => e.assigned,
            };
            // Mirror the allocation to read the worst-case bit length at
            // the achieved size (the error does not carry partial IDs).
            let mut alloc = IdAllocator::new(*strategy);
            for _ in 0..achieved {
                alloc.allocate(3).expect("achieved size allocates");
            }
            rows.push(KeyGrowthRow {
                strategy: label.clone(),
                requested: n,
                achieved,
                bits: alloc.allocated_bits(),
            });
            if achieved < n {
                break; // larger sizes only repeat the same ceiling
            }
        }
    }
    rows
}

/// Outcome of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Configuration fingerprint the records belong to.
    pub fingerprint: String,
    /// `(cell key, record JSON)` in grid order.
    pub records: Vec<(String, String)>,
    /// Cells simulated in this invocation (the rest came from the
    /// checkpoint).
    pub computed: usize,
    /// Key-growth study rows.
    pub key_growth: Vec<KeyGrowthRow>,
}

impl CampaignResult {
    /// Renders the full `BENCH_scale.json` document: a JSON object with
    /// one cell record per line (line-oriented so diffs stay readable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"campaign\":\"scale\",\n");
        out.push_str(&format!(
            "\"fingerprint\":\"{}\",\n\"cells\":[\n",
            self.fingerprint
        ));
        for (i, (_, json)) in self.records.iter().enumerate() {
            out.push_str(json);
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("],\n\"key_growth\":[\n");
        for (i, row) in self.key_growth.iter().enumerate() {
            out.push_str(&row.to_json());
            out.push_str(if i + 1 < self.key_growth.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// A human-readable summary table (stdout side of `fig_scale`).
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "| Cell | Bits(max) | Flows | Delivery | p99 lat (ms) | Defl | Loops | Blackholes |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for (key, json) in &self.records {
            let get = |f: &str| json_field(json, f).unwrap_or("-").to_string();
            let p99_ms = json_field(json, "latency_ns")
                .and_then(|obj| json_field(obj, "p99"))
                .and_then(|v| v.parse::<f64>().ok())
                .map(|ns| format!("{:.2}", ns / 1e6))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                key,
                get("route_bits_max"),
                get("flows"),
                get("delivery_ratio"),
                p99_ms,
                get("deflections"),
                get("verify_loops"),
                get("verify_blackholes"),
            ));
        }
        out
    }
}

/// Loads a checkpoint's completed cells, keyed by cell key. Returns an
/// empty map when the file is missing or its fingerprint differs.
fn load_checkpoint(path: &Path, fingerprint: &str) -> BTreeMap<String, String> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return BTreeMap::new();
    };
    match json_field(header, "campaign_checkpoint") {
        Some(fp) if fp.trim_matches('"') == fingerprint => {}
        _ => return BTreeMap::new(),
    }
    let mut done = BTreeMap::new();
    for line in lines {
        let Some(key) = json_field(line, "cell") else {
            continue; // torn tail write from an interrupted run
        };
        let Some(record_start) = line.find("\"record\":") else {
            continue;
        };
        let record = line[record_start + "\"record\":".len()..].trim_end();
        let record = record.strip_suffix('}').unwrap_or(record);
        if record.ends_with('}') {
            done.insert(key.trim_matches('"').to_string(), record.to_string());
        }
    }
    done
}

/// Runs the campaign: resumes from the checkpoint (if configured and
/// fingerprint-compatible), simulates the remaining cells in parallel,
/// streams each completed cell to the checkpoint as it finishes, and
/// returns every record in grid order.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let fingerprint = cfg.fingerprint();
    let cells = cfg.cells();
    let done = match &cfg.checkpoint {
        Some(path) => load_checkpoint(path, &fingerprint),
        None => BTreeMap::new(),
    };
    // (Re)write the checkpoint: header plus the still-valid cells, then
    // append streaming. A fingerprint mismatch starts the file over.
    let sink = cfg.checkpoint.as_ref().map(|path| {
        let mut text = format!("{{\"campaign_checkpoint\":\"{fingerprint}\"}}\n");
        for (key, record) in &done {
            text.push_str(&format!("{{\"cell\":\"{key}\",\"record\":{record}}}\n"));
        }
        fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("campaign: cannot write checkpoint {}: {e}", path.display());
        });
        Mutex::new(
            fs::OpenOptions::new()
                .append(true)
                .open(path)
                .expect("checkpoint just written"),
        )
    });
    let pending: Vec<Cell> = cells
        .iter()
        .filter(|c| !done.contains_key(&c.key()))
        .copied()
        .collect();
    let computed = pending.len();
    let fresh = run_map(&pending, cfg.jobs, |cell| {
        let record = run_cell(cfg, cell);
        let json = record.to_json();
        if let Some(file) = &sink {
            // Stream the finished cell out immediately (completion
            // order): an interrupt after this line never recomputes the
            // cell. The final document is assembled in grid order from
            // the returned values, so the file order does not matter.
            let mut file = file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writeln!(file, "{{\"cell\":\"{}\",\"record\":{json}}}", record.key);
            let _ = file.flush();
        }
        (record.key, json)
    });
    let fresh: BTreeMap<String, String> = fresh.into_iter().collect();
    let records = cells
        .iter()
        .map(|c| {
            let key = c.key();
            let json = fresh
                .get(&key)
                .or_else(|| done.get(&key))
                .expect("every cell computed or restored")
                .clone();
            (key, json)
        })
        .collect();
    CampaignResult {
        fingerprint,
        records,
        computed,
        key_growth: key_growth_study(&cfg.sizes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> CampaignConfig {
        CampaignConfig {
            seed: 11,
            sizes: vec![8],
            families: vec![Family::Ring, Family::Grid],
            prots: vec![ProtLevel::None, ProtLevel::Full],
            flows_per_switch: 2,
            packets_per_flow: 4,
            jobs: 2,
            wall: false,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn cell_seeds_depend_on_key_not_position() {
        let cfg = smoke_config();
        let a = Cell {
            family: Family::Ring,
            switches: 8,
            prot: ProtLevel::None,
        };
        let b = Cell {
            family: Family::Grid,
            switches: 8,
            prot: ProtLevel::None,
        };
        assert_ne!(cfg.cell_seed(&a), cfg.cell_seed(&b));
        // Same key, same seed — regardless of any grid reshuffling.
        let mut wider = smoke_config();
        wider.sizes = vec![8, 16];
        assert_eq!(cfg.cell_seed(&a), wider.cell_seed(&a));
    }

    #[test]
    fn run_cell_is_deterministic() {
        let cfg = smoke_config();
        let cell = Cell {
            family: Family::Ring,
            switches: 8,
            prot: ProtLevel::Full,
        };
        let a = run_cell(&cfg, &cell);
        let b = run_cell(&cfg, &cell);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.injected > 0);
        assert!(a.delivered > 0);
        assert!(a.latency.count > 0, "latency histogram populated");
        assert!(a.events > 0);
        assert!(a.verify_cases > 0);
    }

    #[test]
    fn full_protection_never_widens_less_than_none() {
        let cfg = smoke_config();
        let none = run_cell(
            &cfg,
            &Cell {
                family: Family::Ring,
                switches: 8,
                prot: ProtLevel::None,
            },
        );
        let full = run_cell(
            &cfg,
            &Cell {
                family: Family::Ring,
                switches: 8,
                prot: ProtLevel::Full,
            },
        );
        assert!(
            full.route_bits_max >= none.route_bits_max,
            "protection grows the route ID: {} vs {}",
            full.route_bits_max,
            none.route_bits_max
        );
    }

    #[test]
    fn exhausted_strategy_reports_ceiling_instead_of_aborting() {
        let cfg = CampaignConfig {
            strategy: IdStrategy::PrimesBelow(13),
            ..smoke_config()
        };
        let rec = run_cell(
            &cfg,
            &Cell {
                family: Family::Ring,
                switches: 8,
                prot: ProtLevel::None,
            },
        );
        assert_eq!(rec.gen_error, Some(3), "{rec:?}");
        assert_eq!(rec.injected, 0);
        assert!(rec.to_json().contains("\"gen_error_achieved\":3"));
    }

    #[test]
    fn campaign_grid_order_and_json_shape() {
        let cfg = smoke_config();
        let result = run_campaign(&cfg);
        assert_eq!(result.computed, 4);
        assert_eq!(result.records.len(), 4);
        let keys: Vec<&str> = result.records.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["ring/8/none", "ring/8/full", "grid/8/none", "grid/8/full"]
        );
        let doc = result.to_json();
        assert!(doc.starts_with("{\"campaign\":\"scale\""));
        assert!(doc.contains("\"key_growth\":["));
        assert!(result.render_table().contains("ring/8/none"));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let serial = run_campaign(&CampaignConfig {
            jobs: 1,
            ..smoke_config()
        });
        let parallel = run_campaign(&CampaignConfig {
            jobs: 4,
            ..smoke_config()
        });
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn json_field_extracts_tokens() {
        let line = r#"{"a":1,"b":"x,y","c":{"d":[1,2],"e":3},"f":4}"#;
        assert_eq!(json_field(line, "a"), Some("1"));
        assert_eq!(json_field(line, "b"), Some("\"x,y\""));
        assert_eq!(json_field(line, "c"), Some("{\"d\":[1,2],\"e\":3}"));
        assert_eq!(json_field(line, "f"), Some("4"));
        assert_eq!(json_field(line, "missing"), None);
        assert_eq!(json_field(json_field(line, "c").unwrap(), "e"), Some("3"));
    }

    #[test]
    fn key_growth_hits_ceilings_for_bounded_strategies() {
        let rows = key_growth_study(&[16, 64]);
        let below8: Vec<&KeyGrowthRow> = rows
            .iter()
            .filter(|r| r.strategy == "PrimesBelow(2^8)")
            .collect();
        // 52 primes in [5, 256): the 16-ring fits, the 64-ring does not.
        assert_eq!(below8[0].achieved, 16);
        assert_eq!(below8.last().unwrap().achieved, 52);
        // Unbounded strategies cover everything, with growing bits.
        let smallest: Vec<&KeyGrowthRow> = rows
            .iter()
            .filter(|r| r.strategy == "SmallestPrimes")
            .collect();
        assert_eq!(smallest.len(), 2);
        assert!(smallest[1].bits > smallest[0].bits);
        assert_eq!(smallest[1].achieved, 64);
    }
}
