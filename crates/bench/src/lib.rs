//! # kar-bench — experiment harness for the KAR reproduction
//!
//! One binary per table/figure of the paper (`table1`, `fig4`, `fig5`,
//! `fig7`, `fig8`, `table2`) plus extensions (`ablation_ids`,
//! `multi_failure`), and Criterion microbenchmarks for the encoding and
//! forwarding hot paths. The experiment logic lives in [`experiments`]
//! so tests can run scaled-down versions; binaries are thin wrappers.
//!
//! Knobs via environment: `KAR_RUNS` (repetitions), `KAR_SECONDS`
//! (per-run transfer seconds), `KAR_SEED`, `KAR_JOBS` (worker threads,
//! also `--jobs N` on every sweep binary), `KAR_TELEMETRY` (JSON-lines
//! sink: `-` for stderr or a file path to append to), `KAR_METRICS`
//! (observability dump path, also `--metrics <path>` — see [`obs`] and
//! the `kar-inspect` binary that renders the dumps).
//!
//! Sweeps run through [`runner`] — a work-stealing thread pool whose
//! parallel results are byte-identical to the serial order (each run
//! seeds its own simulator; nothing is global) — and can stream
//! per-run [`telemetry`] records. The flag/environment handling shared
//! by every binary (`--jobs`, `--metrics`, `--telemetry`, `--seed`)
//! lives in [`cli::CommonArgs`].
//!
//! The scale-sweep [`campaign`] subsystem (binary: `fig_scale`) drives
//! generated topology families from 16 to 512 switches with hundreds of
//! concurrent flows per cell, streaming aggregation into histogram
//! summaries, and a checkpoint file so interrupted sweeps resume at the
//! last completed cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod experiments;
pub mod harness;
pub mod obs;
pub mod runner;
pub mod telemetry;
pub mod trend;
