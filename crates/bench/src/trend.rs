//! Bench-trend observatory: per-metric trajectories across git history.
//!
//! The committed `BENCH_*.json` documents pin one snapshot each of the
//! dataplane microbenches, the scale sweep, the breaking-point search,
//! the adversary campaign and the service load run. This module turns *every committed
//! revision* of those documents (via `git log` / `git show`, plus the
//! working tree) into per-metric time series, so `kar-trend` can answer
//! "is it getting worse?" instead of only "what is it now?":
//!
//! * [`parse_json`] — a small recursive-descent JSON reader (the repo
//!   carries no serde; the BENCH docs are written by hand-rolled
//!   emitters, so they are read by a hand-rolled parser too);
//! * [`extract_metrics`] — the per-document metric schema: which scalar
//!   trajectories each BENCH doc contributes and which direction is
//!   "better" for each;
//! * [`doc_history`] / [`build_series`] — the git walk;
//! * [`regressions`] — direction-aware threshold check of the newest
//!   point against its predecessor;
//! * [`render_report`] / [`trend_json`] — the terminal sparkline report
//!   and the `BENCH_trend.json` document.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// The six trend-tracked documents at the repo root.
pub const TREND_DOCS: &[&str] = &[
    "BENCH_dataplane.json",
    "BENCH_scale.json",
    "BENCH_breaking.json",
    "BENCH_adversary.json",
    "BENCH_service.json",
    "BENCH_hier.json",
];

/// Default regression tolerance: a metric may move up to this fraction
/// in its "worse" direction before the gate trips.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

// ---------------------------------------------------------------------------
// Minimal JSON value model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` — every metric the
/// trend gate tracks is a ratio, count or bit width well inside f64's
/// exact range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `json.path(&["a", "b"])` == `json["a"]["b"]`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one JSON document. Returns an error string (with byte
/// offset) on malformed input — the trend walk treats such revisions as
/// missing points rather than failing the whole report.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs never appear in our docs;
                            // map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(c) => out.push(c as char),
                        None => return Err("unterminated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("bad utf-8 at byte {}", self.pos))?;
                    let ch = s.chars().next().unwrap_or(c as char);
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metric extraction
// ---------------------------------------------------------------------------

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (speedups, delivery ratios, reachability,
    /// breaking-point k).
    HigherIsBetter,
    /// Smaller is better (bits per route, violation counts).
    LowerIsBetter,
}

impl Direction {
    /// The JSON spelling (`"higher"` / `"lower"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
        }
    }
}

/// One scalar a BENCH document contributes to the trend.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name, `doc/…/leaf` shaped.
    pub name: String,
    /// The scalar at this revision.
    pub value: f64,
    /// Which way "better" points.
    pub direction: Direction,
}

fn geomean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Extracts the tracked metrics from one parsed BENCH document.
/// `doc` is the file name (e.g. `BENCH_scale.json`); unknown documents
/// yield no metrics. Extraction is tolerant: fields a past revision
/// lacked simply produce no point for that commit.
pub fn extract_metrics(doc: &str, json: &Json) -> Vec<Metric> {
    use Direction::*;
    let mut out = Vec::new();
    let mut push = |name: String, value: Option<f64>, direction: Direction| {
        if let Some(value) = value {
            if value.is_finite() {
                out.push(Metric {
                    name,
                    value,
                    direction,
                });
            }
        }
    };
    match doc {
        "BENCH_dataplane.json" => {
            push(
                "dataplane/residue_rnp28.geomean_speedup".into(),
                json.path(&["residue_rnp28", "geomean_speedup"])
                    .and_then(Json::as_f64),
                HigherIsBetter,
            );
            push(
                "dataplane/event_queue.speedup".into(),
                json.path(&["event_queue", "speedup"])
                    .and_then(Json::as_f64),
                HigherIsBetter,
            );
            push(
                "dataplane/forward_rnp28_sw13.speedup".into(),
                json.path(&["forward_rnp28_sw13", "speedup"])
                    .and_then(Json::as_f64),
                HigherIsBetter,
            );
            push(
                "dataplane/route_tag_clone.geomean_speedup".into(),
                json.get("route_tag_clone")
                    .and_then(Json::as_arr)
                    .and_then(|rows| {
                        geomean(
                            rows.iter()
                                .filter_map(|r| r.get("speedup").and_then(Json::as_f64)),
                        )
                    }),
                HigherIsBetter,
            );
        }
        "BENCH_scale.json" => {
            for cell in json.get("cells").and_then(Json::as_arr).unwrap_or_default() {
                let Some(name) = cell.get("cell").and_then(Json::as_str) else {
                    continue;
                };
                push(
                    format!("scale/{name}/route_bits_max"),
                    cell.get("route_bits_max").and_then(Json::as_f64),
                    LowerIsBetter,
                );
                push(
                    format!("scale/{name}/delivery_ratio"),
                    cell.get("delivery_ratio").and_then(Json::as_f64),
                    HigherIsBetter,
                );
            }
        }
        "BENCH_hier.json" => {
            for cell in json.get("cells").and_then(Json::as_arr).unwrap_or_default() {
                let Some(name) = cell.get("cell").and_then(Json::as_str) else {
                    continue;
                };
                push(
                    format!("hier/{name}/header_bits_max"),
                    cell.get("header_bits_max").and_then(Json::as_f64),
                    LowerIsBetter,
                );
                // Traffic and verification fields exist only for the
                // simulated schemes (flat/hier); table cells skip them.
                push(
                    format!("hier/{name}/delivery_ratio"),
                    cell.get("delivery_ratio").and_then(Json::as_f64),
                    HigherIsBetter,
                );
                push(
                    format!("hier/{name}/stretch"),
                    cell.get("stretch").and_then(Json::as_f64),
                    LowerIsBetter,
                );
                push(
                    format!("hier/{name}/verify_new_classes"),
                    cell.get("verify_new_classes").and_then(Json::as_f64),
                    LowerIsBetter,
                );
            }
        }
        "BENCH_breaking.json" => {
            let mut violations_at_k2 = 0.0;
            let mut cells_seen = false;
            for cell in json.get("cells").and_then(Json::as_arr).unwrap_or_default() {
                let key = ["topo", "src", "dst", "technique", "protection"]
                    .iter()
                    .filter_map(|k| cell.get(k).and_then(Json::as_str))
                    .collect::<Vec<_>>()
                    .join("/");
                if key.is_empty() {
                    continue;
                }
                cells_seen = true;
                let max_k = cell.get("max_k").and_then(Json::as_f64).unwrap_or(0.0);
                // A null `breaking` means the technique survived the
                // whole search: score it one past max_k so "never broke"
                // beats "broke at max_k" in the trajectory.
                let k = match cell.get("breaking") {
                    Some(b) if !b.is_null() => b.get("k").and_then(Json::as_f64),
                    Some(_) => Some(max_k + 1.0),
                    None => None,
                };
                if let Some(k) = k {
                    if k <= 2.0 {
                        violations_at_k2 += 1.0;
                    }
                }
                push(format!("breaking/{key}/k"), k, HigherIsBetter);
            }
            if cells_seen {
                push(
                    "breaking/violations_at_k2".into(),
                    Some(violations_at_k2),
                    LowerIsBetter,
                );
            }
        }
        "BENCH_service.json" => {
            // Deterministic columns gate every run; the wall-clock
            // columns (QPS, latency percentiles) exist only in "full"
            // documents (>= 1M requests), so a CI smoke run can never
            // trip the gate on scheduler noise.
            push(
                "service/errors".into(),
                json.get("errors").and_then(Json::as_f64),
                LowerIsBetter,
            );
            push(
                "service/byte_mismatches".into(),
                json.get("byte_mismatches").and_then(Json::as_f64),
                LowerIsBetter,
            );
            if json.get("mode").and_then(Json::as_str) == Some("full") {
                push(
                    "service/qps".into(),
                    json.get("qps").and_then(Json::as_f64),
                    HigherIsBetter,
                );
                push(
                    "service/p50_us".into(),
                    json.get("p50_us").and_then(Json::as_f64),
                    LowerIsBetter,
                );
                push(
                    "service/p99_us".into(),
                    json.get("p99_us").and_then(Json::as_f64),
                    LowerIsBetter,
                );
            }
        }
        "BENCH_adversary.json" => {
            for cell in json.get("cells").and_then(Json::as_arr).unwrap_or_default() {
                let topo = cell.get("topo").and_then(Json::as_str).unwrap_or("?");
                let attack = cell.get("attack").and_then(Json::as_str).unwrap_or("?");
                let scheme = cell.get("scheme").and_then(Json::as_str).unwrap_or("?");
                let intensity = cell.get("intensity").and_then(Json::as_f64).unwrap_or(0.0);
                push(
                    format!("adversary/{topo}/{attack}/i{intensity}/{scheme}/reachability"),
                    cell.get("reachability").and_then(Json::as_f64),
                    HigherIsBetter,
                );
            }
        }
        _ => {}
    }
    out
}

// ---------------------------------------------------------------------------
// Git history walk
// ---------------------------------------------------------------------------

/// One revision of one BENCH document.
#[derive(Debug, Clone)]
pub struct DocRevision {
    /// Abbreviated commit id, or `"worktree"` for the checked-out copy.
    pub commit: String,
    /// Commit timestamp (unix seconds); the worktree point gets the
    /// newest commit's timestamp so ordering stays total.
    pub ts: u64,
    /// The document text at that revision.
    pub content: String,
}

fn git(repo: &Path, args: &[&str]) -> Option<String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(args)
        .output()
        .ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Every committed revision of `doc` (oldest first), then the working
/// tree when it differs from the newest committed content. Works
/// without git too (plain directory): only the on-disk copy is
/// returned, and the trend degenerates to a single point per metric.
pub fn doc_history(repo: &Path, doc: &str) -> Vec<DocRevision> {
    let mut revs = Vec::new();
    if let Some(log) = git(repo, &["log", "--reverse", "--format=%h %ct", "--", doc]) {
        for line in log.lines() {
            let mut parts = line.split_whitespace();
            let (Some(commit), Some(ts)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(ts) = ts.parse() else { continue };
            let Some(content) = git(repo, &["show", &format!("{commit}:{doc}")]) else {
                continue;
            };
            revs.push(DocRevision {
                commit: commit.to_string(),
                ts,
                content,
            });
        }
    }
    if let Ok(content) = std::fs::read_to_string(repo.join(doc)) {
        if revs.last().map(|r| r.content != content).unwrap_or(true) {
            let ts = revs.last().map(|r| r.ts).unwrap_or(0);
            revs.push(DocRevision {
                commit: "worktree".to_string(),
                ts,
                content,
            });
        }
    }
    revs
}

// ---------------------------------------------------------------------------
// Series + regression check
// ---------------------------------------------------------------------------

/// One observation of one metric at one revision.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Abbreviated commit id (or `"worktree"`).
    pub commit: String,
    /// Commit timestamp (unix seconds).
    pub ts: u64,
    /// The metric value at that revision.
    pub value: f64,
}

/// A metric's full trajectory, oldest point first.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Stable metric name.
    pub name: String,
    /// Which way "better" points.
    pub direction: Direction,
    /// Observations, oldest first.
    pub points: Vec<TrendPoint>,
}

impl Series {
    /// The newest observation.
    pub fn latest(&self) -> Option<&TrendPoint> {
        self.points.last()
    }
}

/// Builds all metric series from a set of document revision histories.
/// `histories` pairs each document name with its revisions (as from
/// [`doc_history`]); malformed revisions are skipped.
pub fn build_series(histories: &[(String, Vec<DocRevision>)]) -> Vec<Series> {
    let mut by_name: BTreeMap<String, Series> = BTreeMap::new();
    for (doc, revs) in histories {
        for rev in revs {
            let Ok(json) = parse_json(&rev.content) else {
                continue;
            };
            for m in extract_metrics(doc, &json) {
                by_name
                    .entry(m.name.clone())
                    .or_insert_with(|| Series {
                        name: m.name,
                        direction: m.direction,
                        points: Vec::new(),
                    })
                    .points
                    .push(TrendPoint {
                        commit: rev.commit.clone(),
                        ts: rev.ts,
                        value: m.value,
                    });
            }
        }
    }
    by_name.into_values().collect()
}

/// A tripped regression threshold: the newest point moved more than
/// `tolerance` in the metric's "worse" direction relative to its
/// predecessor.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed metric.
    pub name: String,
    /// The value one revision back.
    pub prev: f64,
    /// The newest value.
    pub latest: f64,
    /// Signed relative change, `(latest - prev) / |prev|`.
    pub delta: f64,
}

/// Direction-aware regression check of each series' newest point
/// against the one before it. Series with fewer than two points cannot
/// regress; a previous value of exactly zero compares absolutely
/// (any worsening move beyond `tolerance` trips).
pub fn regressions(series: &[Series], tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for s in series {
        let n = s.points.len();
        if n < 2 {
            continue;
        }
        let prev = s.points[n - 2].value;
        let latest = s.points[n - 1].value;
        let delta = if prev.abs() > f64::EPSILON {
            (latest - prev) / prev.abs()
        } else {
            latest - prev
        };
        let worsening = match s.direction {
            Direction::HigherIsBetter => -delta,
            Direction::LowerIsBetter => delta,
        };
        if worsening > tolerance {
            out.push(Regression {
                name: s.name.clone(),
                prev,
                latest,
                delta,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a unicode sparkline, scaled min..max; a flat
/// series renders mid-height.
pub fn sparkline(values: &[f64]) -> String {
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    values
        .iter()
        .map(|v| {
            if (max - min).abs() < f64::EPSILON {
                SPARK[3]
            } else {
                let t = (v - min) / (max - min);
                SPARK[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    }
}

/// The terminal report: every multi-point trajectory as a sparkline
/// with its latest move, single-point metrics summarized by count, and
/// the regression list last (so it is what the eye lands on).
pub fn render_report(series: &[Series], regs: &[Regression], tolerance: f64) -> String {
    let mut out = String::new();
    let commits: std::collections::BTreeSet<&str> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.commit.as_str()))
        .collect();
    out.push_str(&format!(
        "kar-trend: {} metric(s) across {} revision(s), tolerance {:.1}%\n\n",
        series.len(),
        commits.len(),
        tolerance * 100.0
    ));
    let mut flat = 0usize;
    for s in series {
        if s.points.len() < 2 {
            flat += 1;
            continue;
        }
        let values: Vec<f64> = s.points.iter().map(|p| p.value).collect();
        let prev = values[values.len() - 2];
        let latest = values[values.len() - 1];
        let delta = if prev.abs() > f64::EPSILON {
            format!("{:+.1}%", 100.0 * (latest - prev) / prev.abs())
        } else {
            format!("{:+.3}", latest - prev)
        };
        out.push_str(&format!(
            "  {} {}  {} → {} ({delta})\n",
            sparkline(&values),
            s.name,
            fmt_value(prev),
            fmt_value(latest),
        ));
    }
    if flat > 0 {
        out.push_str(&format!(
            "  ({flat} metric(s) have a single revision — no trend yet)\n"
        ));
    }
    out.push('\n');
    if regs.is_empty() {
        out.push_str("no regressions beyond tolerance.\n");
    } else {
        out.push_str(&format!("REGRESSIONS ({}):\n", regs.len()));
        for r in regs {
            out.push_str(&format!(
                "  ⚠ {}  {} → {} ({:+.1}%, tolerance {:.1}%)\n",
                r.name,
                fmt_value(r.prev),
                fmt_value(r.latest),
                r.delta * 100.0,
                tolerance * 100.0
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serializes the full trend document (`BENCH_trend.json`).
pub fn trend_json(series: &[Series], regs: &[Regression], tolerance: f64) -> String {
    let mut out = String::from("{\n\"campaign\":\"trend\",\n");
    out.push_str(&format!("\"tolerance\":{tolerance},\n\"metrics\":[\n"));
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"direction\":\"{}\",\"points\":[",
            json_escape(&s.name),
            s.direction.as_str()
        ));
        for (j, p) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"commit\":\"{}\",\"ts\":{},\"value\":{}}}",
                json_escape(&p.commit),
                p.ts,
                json_num(p.value)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n],\n\"regressions\":[\n");
    for (i, r) in regs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"prev\":{},\"latest\":{},\"delta\":{}}}",
            json_escape(&r.name),
            json_num(r.prev),
            json_num(r.latest),
            json_num(r.delta)
        ));
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_the_shapes_we_read() {
        let doc = r#"{"bench":"x","n":-1.5e2,"ok":true,"none":null,
                      "arr":[1,2,{"k":"v \"q\" A"}]}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert!(v.get("none").unwrap().is_null());
        let arr = v.get("arr").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(
            arr[2].get("k").and_then(Json::as_str),
            Some("v \"q\" A"),
            "escapes decode"
        );
        assert!(parse_json("{\"a\":1}x").is_err(), "trailing junk rejected");
        assert!(parse_json("{").is_err());
    }

    #[test]
    fn dataplane_metrics_extract() {
        let doc = r#"{"residue_rnp28":{"geomean_speedup":2.39},
                      "event_queue":{"speedup":3.77},
                      "forward_rnp28_sw13":{"speedup":1.34},
                      "route_tag_clone":[{"speedup":2.0},{"speedup":8.0}]}"#;
        let metrics = extract_metrics("BENCH_dataplane.json", &parse_json(doc).unwrap());
        let get = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name.ends_with(name))
                .map(|m| m.value)
        };
        assert_eq!(get("residue_rnp28.geomean_speedup"), Some(2.39));
        assert_eq!(get("event_queue.speedup"), Some(3.77));
        assert_eq!(get("forward_rnp28_sw13.speedup"), Some(1.34));
        let g = get("route_tag_clone.geomean_speedup").unwrap();
        assert!((g - 4.0).abs() < 1e-9, "geomean of 2 and 8 is 4, got {g}");
        assert!(metrics
            .iter()
            .all(|m| m.direction == Direction::HigherIsBetter));
    }

    #[test]
    fn breaking_metrics_score_survival_and_count_k2_violations() {
        let doc = r#"{"cells":[
          {"topo":"t","src":"a","dst":"b","technique":"AVP","protection":"none",
           "max_k":3,"breaking":{"k":1}},
          {"topo":"t","src":"a","dst":"b","technique":"HP","protection":"none",
           "max_k":3,"breaking":null},
          {"topo":"t","src":"a","dst":"b","technique":"NIP","protection":"none",
           "max_k":3,"breaking":{"k":3}}]}"#;
        let metrics = extract_metrics("BENCH_breaking.json", &parse_json(doc).unwrap());
        let get = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name.contains(name))
                .map(|m| m.value)
        };
        assert_eq!(get("/AVP/"), Some(1.0));
        assert_eq!(get("/HP/"), Some(4.0), "null breaking scores max_k+1");
        assert_eq!(get("/NIP/"), Some(3.0));
        let v = metrics
            .iter()
            .find(|m| m.name == "breaking/violations_at_k2")
            .unwrap();
        assert_eq!(v.value, 1.0, "only AVP broke at k<=2");
        assert_eq!(v.direction, Direction::LowerIsBetter);
    }

    #[test]
    fn service_metrics_gate_wall_clock_on_full_mode() {
        let full = r#"{"campaign":"service","mode":"full","requests":1000000,
                       "errors":0,"byte_mismatches":0,
                       "qps":52000.5,"p50_us":71.2,"p99_us":190.0}"#;
        let metrics = extract_metrics("BENCH_service.json", &parse_json(full).unwrap());
        let get = |name: &str| metrics.iter().find(|m| m.name == name);
        assert_eq!(get("service/errors").map(|m| m.value), Some(0.0));
        assert_eq!(get("service/byte_mismatches").map(|m| m.value), Some(0.0));
        assert_eq!(get("service/qps").map(|m| m.value), Some(52000.5));
        assert_eq!(
            get("service/qps").map(|m| m.direction),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(get("service/p50_us").map(|m| m.value), Some(71.2));
        assert_eq!(
            get("service/p99_us").map(|m| m.direction),
            Some(Direction::LowerIsBetter)
        );
        // A smoke run contributes only the deterministic columns, even
        // if stray timing fields are present.
        let smoke = r#"{"campaign":"service","mode":"smoke","requests":10000,
                        "errors":0,"byte_mismatches":0,"qps":1.0}"#;
        let metrics = extract_metrics("BENCH_service.json", &parse_json(smoke).unwrap());
        assert_eq!(metrics.len(), 2);
        assert!(metrics.iter().all(|m| !m.name.contains("qps")));
    }

    fn series(direction: Direction, values: &[f64]) -> Series {
        Series {
            name: "m".into(),
            direction,
            points: values
                .iter()
                .enumerate()
                .map(|(i, v)| TrendPoint {
                    commit: format!("c{i}"),
                    ts: i as u64,
                    value: *v,
                })
                .collect(),
        }
    }

    #[test]
    fn regression_check_is_direction_aware() {
        use Direction::*;
        // Higher-is-better dropping 10% trips a 5% tolerance...
        let s = [series(HigherIsBetter, &[2.0, 1.8])];
        assert_eq!(regressions(&s, 0.05).len(), 1);
        // ...but not a 15% tolerance, and improvements never trip.
        assert!(regressions(&s, 0.15).is_empty());
        let s = [series(HigherIsBetter, &[1.8, 2.0])];
        assert!(regressions(&s, 0.05).is_empty());
        // Lower-is-better: growth trips, shrinkage doesn't.
        let s = [series(LowerIsBetter, &[45.0, 52.0])];
        let regs = regressions(&s, 0.05);
        assert_eq!(regs.len(), 1);
        assert!((regs[0].delta - 7.0 / 45.0).abs() < 1e-9);
        let s = [series(LowerIsBetter, &[52.0, 45.0])];
        assert!(regressions(&s, 0.05).is_empty());
        // Single points and zero-previous values don't panic.
        let s = [series(HigherIsBetter, &[2.0])];
        assert!(regressions(&s, 0.05).is_empty());
        let s = [series(LowerIsBetter, &[0.0, 0.2])];
        assert_eq!(
            regressions(&s, 0.05).len(),
            1,
            "zero base compares absolutely"
        );
    }

    #[test]
    fn a_synthetically_regressed_document_trips_the_gate() {
        // Two revisions of a dataplane doc: the second loses half its
        // event-queue speedup. The gate must flag exactly that metric.
        let good = r#"{"event_queue":{"speedup":3.77}}"#;
        let bad = r#"{"event_queue":{"speedup":1.80}}"#;
        let histories = vec![(
            "BENCH_dataplane.json".to_string(),
            vec![
                DocRevision {
                    commit: "aaaa111".into(),
                    ts: 1,
                    content: good.into(),
                },
                DocRevision {
                    commit: "worktree".into(),
                    ts: 2,
                    content: bad.into(),
                },
            ],
        )];
        let series = build_series(&histories);
        let regs = regressions(&series, DEFAULT_TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "dataplane/event_queue.speedup");
        let report = render_report(&series, &regs, DEFAULT_TOLERANCE);
        assert!(report.contains("REGRESSIONS (1)"), "{report}");
        assert!(
            report.contains("⚠ dataplane/event_queue.speedup"),
            "{report}"
        );
        let doc = trend_json(&series, &regs, DEFAULT_TOLERANCE);
        assert!(doc.contains("\"campaign\":\"trend\""), "{doc}");
        assert!(doc.contains("\"commit\":\"aaaa111\""), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]), "▁▅█");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
    }
}
