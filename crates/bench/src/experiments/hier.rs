//! Hierarchical-domain sweep (`BENCH_hier.json`): flat vs two-level
//! hierarchical KAR vs the table-based baselines, 512→4096 switches.
//!
//! The scale campaign (`BENCH_scale.json`) charts KAR's key-growth
//! wall: flat route-ID bits grow with path length, so a 4096-switch
//! ring needs multi-kilobit headers. This sweep measures the cure. Each
//! `(family, switches)` point is partitioned into domains of roughly
//! [`HierConfig::domain_target`] switches ([`Partition::auto`]), and
//! four schemes are compared on the *same* deterministic pair sample:
//!
//! * **flat** — one CRT route ID over the whole path (unprotected),
//!   driven through a traffic sim with one mid-path failure and the
//!   failure-reactive recovery loop;
//! * **hier** — per-domain segments re-stamped at boundary crossings
//!   ([`kar::HierController`], failure-aware), same sim, plus a
//!   flat-vs-hier verification sample proving boundary re-encoding adds
//!   no new loop/blackhole classes;
//! * **fast_failover** / **splicing** — the `kar-baselines` table
//!   schemes: zero header bits but per-switch state that grows with the
//!   destination set (no traffic sim; their cost axis is state).
//!
//! Wall-clock is deliberately never measured: the emitted document is a
//! pure function of the configuration, byte-identical across machines,
//! so the `kar-trend` gate can diff it across commits.

use crate::campaign::{fnv1a, json_f64, splitmix64, DrawStream, Family, FleetFlow, FlowFleet};
use crate::runner::run_map;
use kar::{
    verify_hier_route, verify_route, DeflectionTechnique, EncodeRequest, HierController,
    KarNetwork, Outcome, Protection, RecoveryConfig,
};
use kar_baselines::{FastFailover, PathSplicing};
use kar_rns::IdStrategy;
use kar_simnet::{EdgeLogic, SimTime};
use kar_topology::{paths, LinkId, NodeId, Partition, Topology};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Routing scheme of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Flat KAR: one route ID over the whole path.
    Flat,
    /// Two-level hierarchical KAR: per-domain segments.
    Hier,
    /// Fast-failover tables (zero header, per-switch state).
    FastFailover,
    /// Path-splicing slices (zero header, k× per-switch state).
    Splicing,
}

impl Scheme {
    /// Stable label used in cell keys and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Flat => "flat",
            Scheme::Hier => "hier",
            Scheme::FastFailover => "fast_failover",
            Scheme::Splicing => "splicing",
        }
    }

    /// Every scheme, in sweep order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Flat,
        Scheme::Hier,
        Scheme::FastFailover,
        Scheme::Splicing,
    ];
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierCell {
    /// Topology family.
    pub family: Family,
    /// Core switch count.
    pub switches: usize,
    /// Routing scheme.
    pub scheme: Scheme,
}

impl HierCell {
    /// The cell's stable key (`family/switches/scheme`).
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.family.label(),
            self.switches,
            self.scheme.label()
        )
    }
}

/// Sweep configuration. `Default` is the full 512→4096 sweep.
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// Base seed; placement is derived per `(family, switches)` so every
    /// scheme sees identical pairs.
    pub seed: u64,
    /// Switch counts to sweep.
    pub sizes: Vec<usize>,
    /// Families to sweep.
    pub families: Vec<Family>,
    /// Target switches per domain; the partition gets
    /// `max(2, switches / domain_target)` domains.
    pub domain_target: usize,
    /// Sampled `(src, dst)` pairs per cell.
    pub pairs: usize,
    /// Datagrams each pair sends in the traffic sim.
    pub packets_per_pair: u64,
    /// Pairs carried into the flat-vs-hier verification sample.
    pub verify_pairs: usize,
    /// Single-link failures verified per pair (primary-path links
    /// first, then a stride over the remaining links).
    pub verify_links: usize,
    /// Worker threads for the cell sweep.
    pub jobs: usize,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            seed: 1,
            sizes: vec![512, 1024, 2048, 4096],
            families: Family::ALL.to_vec(),
            domain_target: 64,
            pairs: 24,
            packets_per_pair: 8,
            verify_pairs: 2,
            verify_links: 16,
            jobs: 1,
        }
    }
}

impl HierConfig {
    /// The cell grid in deterministic order: family-major, then size,
    /// then scheme.
    pub fn cells(&self) -> Vec<HierCell> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &switches in &self.sizes {
                for &scheme in &Scheme::ALL {
                    out.push(HierCell {
                        family,
                        switches,
                        scheme,
                    });
                }
            }
        }
        out
    }

    /// Configuration fingerprint (see the campaign engine's contract:
    /// two documents interoperate exactly when fingerprints match).
    pub fn fingerprint(&self) -> String {
        let join = |parts: Vec<String>| parts.join("+");
        format!(
            "hier-v1 seed={} sizes={} families={} domain={} pairs={} ppf={} vpairs={} vlinks={}",
            self.seed,
            join(self.sizes.iter().map(|n| n.to_string()).collect()),
            join(
                self.families
                    .iter()
                    .map(|f| f.label().to_string())
                    .collect()
            ),
            self.domain_target,
            self.pairs,
            self.packets_per_pair,
            self.verify_pairs,
            self.verify_links,
        )
    }

    /// The placement seed of a `(family, switches)` point — shared by
    /// every scheme so their pair samples are identical.
    fn placement_seed(&self, family: Family, switches: usize) -> u64 {
        splitmix64(self.seed ^ fnv1a(&format!("{}/{}", family.label(), switches)))
    }

    /// Domains requested for `switches` switches.
    fn domains_for(&self, switches: usize) -> usize {
        (switches / self.domain_target).max(2)
    }
}

/// Everything one completed cell reports.
#[derive(Debug, Clone, Default)]
pub struct HierRecord {
    /// Cell key (`family/switches/scheme`).
    pub key: String,
    /// Topology family label.
    pub family: String,
    /// Core switches requested.
    pub switches: usize,
    /// Scheme label.
    pub scheme: String,
    /// Placement seed of the `(family, switches)` point.
    pub seed: u64,
    /// ID allocation ceiling, when the strategy could not cover the
    /// cell (all other fields stay zero).
    pub gen_error: Option<usize>,
    /// Edge hosts.
    pub hosts: usize,
    /// Links.
    pub links: usize,
    /// Distinct `(src, dst)` pairs measured.
    pub pairs: usize,
    /// Domains of the partition (hier only, 0 otherwise).
    pub domains: usize,
    /// Domain-boundary links (hier only).
    pub boundary_links: usize,
    /// Worst-case bits a packet of this scheme carries (flat: largest
    /// route ID; hier: largest *segment* ID; tables: 0).
    pub header_bits_max: u32,
    /// Per-switch forwarding state summed over the network (tables
    /// only; KAR cores are stateless).
    pub state_entries: usize,
    /// Mean nominal (failure-free shortest-path) hop count of the pairs.
    pub nominal_hops_mean: f64,
    /// Boundary re-encodes on the nominal routes (hier only).
    pub planned_reencodes: usize,
    /// Traffic-sim results (flat and hier schemes only).
    pub traffic: Option<TrafficOutcome>,
    /// Flat-vs-hier verification sample (hier scheme only).
    pub verify: Option<VerifyOutcome>,
}

/// Traffic-sim results of one cell (one mid-path link failure, NIP
/// deflection).
#[derive(Debug, Clone, Default)]
pub struct TrafficOutcome {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Delivery ratio.
    pub delivery_ratio: f64,
    /// Mean hops of delivered packets.
    pub mean_hops: f64,
    /// `mean_hops / nominal_hops_mean`.
    pub stretch: f64,
    /// Deflection events.
    pub deflections: u64,
    /// Boundary re-stamps observed in the dataplane (hier only).
    pub boundary_restamps: u64,
}

/// Flat-vs-hier verification tallies over the sampled failure cases.
///
/// Two hierarchical postures are verified per case. The **deployed**
/// posture (failure-aware controller, matching the traffic sim's
/// configuration) feeds `hier_*` and the `new_violation_classes` gate.
/// The **transient** posture (failure-unaware controller — segments
/// planned on the intact topology, the same knowledge state as the
/// flat comparator's stale route) is reported as data: before the
/// failure notice lands, a boundary re-stamp can point a deflected
/// packet straight back at the failed link, so the hierarchical
/// transient can wander-loop on host-sparse topologies where flat KAR's
/// whole-path residues happen to absorb the wanderer.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Cases examined (pairs × sampled links).
    pub cases: usize,
    /// Flat (stale-route) cases classified as inescapable loops.
    pub flat_loops: usize,
    /// Flat (stale-route) cases classified as blackholes.
    pub flat_blackholes: usize,
    /// Deployed-posture hier cases classified as inescapable loops.
    pub hier_loops: usize,
    /// Deployed-posture hier cases classified as blackholes (including
    /// ingress drops when the failure disconnects the pair).
    pub hier_blackholes: usize,
    /// Transient-posture hier cases classified as inescapable loops.
    pub transient_hier_loops: usize,
    /// Transient-posture hier cases classified as blackholes.
    pub transient_hier_blackholes: usize,
    /// Violation classes present in the deployed-posture hier tally but
    /// absent from the flat one — the acceptance gate demands 0.
    pub new_violation_classes: usize,
    /// Violation classes present in the transient-posture hier tally
    /// but absent from the flat one (informational).
    pub transient_new_classes: usize,
}

impl HierRecord {
    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push('{');
        write!(o, "\"cell\":\"{}\"", self.key).unwrap();
        write!(o, ",\"family\":\"{}\"", self.family).unwrap();
        write!(o, ",\"switches\":{}", self.switches).unwrap();
        write!(o, ",\"scheme\":\"{}\"", self.scheme).unwrap();
        write!(o, ",\"seed\":{}", self.seed).unwrap();
        if let Some(achieved) = self.gen_error {
            write!(o, ",\"gen_error_achieved\":{achieved}").unwrap();
        }
        write!(o, ",\"hosts\":{}", self.hosts).unwrap();
        write!(o, ",\"links\":{}", self.links).unwrap();
        write!(o, ",\"pairs\":{}", self.pairs).unwrap();
        write!(o, ",\"domains\":{}", self.domains).unwrap();
        write!(o, ",\"boundary_links\":{}", self.boundary_links).unwrap();
        write!(o, ",\"header_bits_max\":{}", self.header_bits_max).unwrap();
        write!(o, ",\"state_entries\":{}", self.state_entries).unwrap();
        write!(
            o,
            ",\"nominal_hops_mean\":{}",
            json_f64(self.nominal_hops_mean)
        )
        .unwrap();
        write!(o, ",\"planned_reencodes\":{}", self.planned_reencodes).unwrap();
        if let Some(t) = &self.traffic {
            write!(o, ",\"injected\":{}", t.injected).unwrap();
            write!(o, ",\"delivered\":{}", t.delivered).unwrap();
            write!(o, ",\"delivery_ratio\":{}", json_f64(t.delivery_ratio)).unwrap();
            write!(o, ",\"mean_hops\":{}", json_f64(t.mean_hops)).unwrap();
            write!(o, ",\"stretch\":{}", json_f64(t.stretch)).unwrap();
            write!(o, ",\"deflections\":{}", t.deflections).unwrap();
            write!(o, ",\"boundary_restamps\":{}", t.boundary_restamps).unwrap();
        }
        if let Some(v) = &self.verify {
            write!(o, ",\"verify_cases\":{}", v.cases).unwrap();
            write!(o, ",\"flat_loops\":{}", v.flat_loops).unwrap();
            write!(o, ",\"flat_blackholes\":{}", v.flat_blackholes).unwrap();
            write!(o, ",\"hier_loops\":{}", v.hier_loops).unwrap();
            write!(o, ",\"hier_blackholes\":{}", v.hier_blackholes).unwrap();
            write!(o, ",\"transient_hier_loops\":{}", v.transient_hier_loops).unwrap();
            write!(
                o,
                ",\"transient_hier_blackholes\":{}",
                v.transient_hier_blackholes
            )
            .unwrap();
            write!(o, ",\"verify_new_classes\":{}", v.new_violation_classes).unwrap();
            write!(o, ",\"transient_new_classes\":{}", v.transient_new_classes).unwrap();
        }
        o.push('}');
        o
    }
}

/// The shared per-point context every scheme derives its record from.
struct Point {
    topo: Topology,
    pairs: Vec<(NodeId, NodeId)>,
    distinct: Vec<(NodeId, NodeId)>,
    nominal_hops_mean: f64,
    seed: u64,
}

fn build_point(cfg: &HierConfig, cell: &HierCell) -> Result<Point, usize> {
    let seed = cfg.placement_seed(cell.family, cell.switches);
    let topo = cell
        .family
        .build(cell.switches, seed, IdStrategy::SmallestPrimes)
        .map_err(|e| e.assigned)?;
    let hosts = topo.edge_nodes();
    let mut draws = DrawStream::new(seed);
    let mut pairs = Vec::with_capacity(cfg.pairs);
    for _ in 0..cfg.pairs {
        let src = hosts[draws.below(hosts.len())];
        let mut dst = hosts[draws.below(hosts.len())];
        while dst == src {
            dst = hosts[draws.below(hosts.len())];
        }
        pairs.push((src, dst));
    }
    let distinct: Vec<(NodeId, NodeId)> = pairs
        .iter()
        .copied()
        .collect::<BTreeSet<(NodeId, NodeId)>>()
        .into_iter()
        .collect();
    let mut hop_sum = 0usize;
    for &(src, dst) in &distinct {
        let path = paths::bfs_shortest_path(&topo, src, dst).expect("families are connected");
        hop_sum += path.len() - 1;
    }
    let nominal_hops_mean = hop_sum as f64 / distinct.len() as f64;
    Ok(Point {
        topo,
        pairs,
        distinct,
        nominal_hops_mean,
        seed,
    })
}

/// The failed link of a point: the middle core link of the first pair's
/// primary path (the same link for every scheme).
fn failure_of(point: &Point) -> Option<LinkId> {
    let (src, dst) = point.pairs[0];
    let primary = paths::bfs_shortest_path(&point.topo, src, dst)?;
    let core_links: Vec<LinkId> = primary
        .windows(2)
        .filter(|w| point.topo.switch_id(w[0]).is_some() && point.topo.switch_id(w[1]).is_some())
        .filter_map(|w| point.topo.link_between(w[0], w[1]))
        .collect();
    core_links.get(core_links.len() / 2).copied()
}

/// Drives the point's pairs through a simulation of `net` with one
/// mid-path failure, CBR pacing seeded from the placement stream.
fn drive(
    point: &Point,
    net: KarNetwork<'_>,
    packets_per_pair: u64,
    nominal_hops_mean: f64,
) -> TrafficOutcome {
    let mut sim = net.into_sim();
    if let Some(link) = failure_of(point) {
        sim.schedule_link_down(SimTime::ZERO, link);
    }
    let mut draws = DrawStream::new(point.seed ^ 0x7261_6666_6963); // "raffic"
    let mut fleets: BTreeMap<usize, Vec<FleetFlow>> = BTreeMap::new();
    for (i, &(src, dst)) in point.pairs.iter().enumerate() {
        let interval = SimTime::from_micros(1_000 + draws.below(1_000) as u64);
        let offset = SimTime::from_micros(draws.below(2_000) as u64);
        fleets.entry(src.0).or_default().push(FleetFlow {
            dst,
            flow: kar_simnet::FlowId(i as u32),
            interval,
            offset,
            packet_bytes: 700,
            limit: packets_per_pair,
            sent: 0,
        });
    }
    for (src, flows) in fleets {
        sim.add_app(NodeId(src), Box::new(FlowFleet { flows }));
    }
    sim.run_to_quiescence();
    let stats = sim.stats();
    let mean_hops = stats.mean_hops().unwrap_or(0.0);
    TrafficOutcome {
        injected: stats.injected,
        delivered: stats.delivered,
        delivery_ratio: stats.delivery_ratio(),
        mean_hops,
        stretch: if nominal_hops_mean > 0.0 {
            mean_hops / nominal_hops_mean
        } else {
            0.0
        },
        deflections: stats.deflections,
        boundary_restamps: 0,
    }
}

/// The sampled failed links for one verification pair: core links along
/// the pair's primary path first (the failures that matter most), then
/// a deterministic stride over the remaining link space.
fn verify_link_sample(topo: &Topology, src: NodeId, dst: NodeId, budget: usize) -> Vec<LinkId> {
    let mut out = Vec::new();
    if let Some(primary) = paths::bfs_shortest_path(topo, src, dst) {
        for w in primary.windows(2) {
            if topo.switch_id(w[0]).is_some() && topo.switch_id(w[1]).is_some() {
                if let Some(l) = topo.link_between(w[0], w[1]) {
                    if out.len() < budget / 2 {
                        out.push(l);
                    }
                }
            }
        }
    }
    let total = topo.link_count();
    let want = budget.saturating_sub(out.len()).min(total);
    if let Some(stride) = total.checked_div(want) {
        let stride = stride.max(1);
        for s in 0..want {
            let l = LinkId((s * stride) % total);
            if !out.contains(&l) {
                out.push(l);
            }
        }
    }
    out
}

/// Classifies the verification pairs under sampled single-link failures
/// on both dataplanes and compares violation classes.
fn verify_point(cfg: &HierConfig, point: &Point, partition: &Arc<Partition>) -> VerifyOutcome {
    let mut out = VerifyOutcome::default();
    // Transient posture: segments planned on the intact topology, the
    // same knowledge state as the flat comparator's stale route.
    let mut stale = HierController::new(Arc::clone(partition));
    for &(src, dst) in point.distinct.iter().take(cfg.verify_pairs) {
        let primary =
            paths::bfs_shortest_path(&point.topo, src, dst).expect("families are connected");
        let flat = kar::protection::encode_with_protection(&point.topo, primary, &Protection::None)
            .expect("unprotected paths encode");
        for link in verify_link_sample(&point.topo, src, dst, cfg.verify_links) {
            let failed: HashSet<LinkId> = [link].into_iter().collect();
            // Deployed posture: a fresh controller told about the
            // failure (as the sim's recovery notice would), so segments
            // are planned around it. An install failure means the
            // failure disconnected the pair — no routing scheme can
            // deliver, so the case probes nothing and is skipped for
            // all three tallies.
            let mut aware = HierController::new(Arc::clone(partition));
            aware.set_failure_aware(true);
            aware.on_link_event(&point.topo, link, false, SimTime::ZERO);
            let Ok(deployed) = verify_hier_route(
                &point.topo,
                &mut aware,
                src,
                dst,
                DeflectionTechnique::Nip,
                &failed,
            )
            .map(|r| r.outcome) else {
                continue;
            };
            let f = verify_route(
                &point.topo,
                &flat,
                src,
                dst,
                DeflectionTechnique::Nip,
                &failed,
            );
            let t = verify_hier_route(
                &point.topo,
                &mut stale,
                src,
                dst,
                DeflectionTechnique::Nip,
                &failed,
            )
            .expect("hier routes install on the intact topology");
            out.cases += 1;
            match f.outcome {
                Outcome::Loop => out.flat_loops += 1,
                Outcome::Blackhole => out.flat_blackholes += 1,
                _ => {}
            }
            match t.outcome {
                Outcome::Loop => out.transient_hier_loops += 1,
                Outcome::Blackhole => out.transient_hier_blackholes += 1,
                _ => {}
            }
            match deployed {
                Outcome::Loop => out.hier_loops += 1,
                Outcome::Blackhole => out.hier_blackholes += 1,
                _ => {}
            }
        }
    }
    out.new_violation_classes = usize::from(out.hier_loops > 0 && out.flat_loops == 0)
        + usize::from(out.hier_blackholes > 0 && out.flat_blackholes == 0);
    out.transient_new_classes = usize::from(out.transient_hier_loops > 0 && out.flat_loops == 0)
        + usize::from(out.transient_hier_blackholes > 0 && out.flat_blackholes == 0);
    out
}

/// Runs one sweep cell to completion.
pub fn run_cell(cfg: &HierConfig, cell: &HierCell) -> HierRecord {
    let mut record = HierRecord {
        key: cell.key(),
        family: cell.family.label().to_string(),
        switches: cell.switches,
        scheme: cell.scheme.label().to_string(),
        ..HierRecord::default()
    };
    let point = match build_point(cfg, cell) {
        Ok(p) => p,
        Err(achieved) => {
            record.gen_error = Some(achieved);
            return record;
        }
    };
    record.seed = point.seed;
    record.hosts = point.topo.edge_nodes().len();
    record.links = point.topo.link_count();
    record.pairs = point.distinct.len();
    record.nominal_hops_mean = point.nominal_hops_mean;
    let ttl = ((cell.switches * 4).clamp(64, 16384)) as u16;
    match cell.scheme {
        Scheme::Flat => {
            let mut net = KarNetwork::builder(&point.topo, DeflectionTechnique::Nip)
                .seed(point.seed)
                .ttl(ttl)
                .fast_path(true)
                // Without detection + recovery the wrong-edge recompute
                // loop livelocks on stale routes (see the scale
                // campaign); flat gets the reactive controller.
                .detection_delay(SimTime::from_micros(50))
                .recovery(RecoveryConfig {
                    notification_delay: SimTime::from_micros(200),
                    ..RecoveryConfig::default()
                })
                .build();
            for &(src, dst) in &point.distinct {
                let outcome = net
                    .encode(&EncodeRequest::new(src, dst))
                    .expect("families are connected");
                record.header_bits_max = record.header_bits_max.max(outcome.route.bit_length());
            }
            record.traffic = Some(drive(
                &point,
                net,
                cfg.packets_per_pair,
                point.nominal_hops_mean,
            ));
        }
        Scheme::Hier => {
            let partition = Arc::new(
                Partition::auto(&point.topo, cfg.domains_for(cell.switches))
                    .expect("generated families partition"),
            );
            record.domains = partition.num_domains();
            record.boundary_links = partition.boundary_links().len();
            let mut net = KarNetwork::builder(&point.topo, DeflectionTechnique::Nip)
                .seed(point.seed)
                .ttl(ttl)
                .fast_path(true)
                .detection_delay(SimTime::from_micros(50))
                .hierarchy(Arc::clone(&partition))
                .build();
            {
                let ctrl = net.hier_controller_mut().expect("hierarchy enabled");
                // Post-failure quiescence: replan installed pairs when
                // the failure notice lands (flat gets the recovery loop
                // for the same reason).
                ctrl.set_failure_aware(true);
                for &(src, dst) in &point.distinct {
                    let route = ctrl
                        .install(&point.topo, src, dst, &Protection::None)
                        .expect("families are connected");
                    record.header_bits_max = record.header_bits_max.max(route.max_bits());
                    record.planned_reencodes += route.reencodes();
                }
            }
            let stats = net.hier_stats().expect("hierarchy enabled");
            let mut traffic = drive(&point, net, cfg.packets_per_pair, point.nominal_hops_mean);
            traffic.boundary_restamps = stats
                .boundary_stamps
                .load(std::sync::atomic::Ordering::Relaxed)
                + stats
                    .boundary_recomputes
                    .load(std::sync::atomic::Ordering::Relaxed);
            record.traffic = Some(traffic);
            record.verify = Some(verify_point(cfg, &point, &partition));
        }
        Scheme::FastFailover => {
            let dsts: Vec<NodeId> = point
                .distinct
                .iter()
                .map(|&(_, d)| d)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            record.state_entries = FastFailover::precompute(&point.topo, &dsts).total_entries();
        }
        Scheme::Splicing => {
            let dsts: Vec<NodeId> = point
                .distinct
                .iter()
                .map(|&(_, d)| d)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            record.state_entries =
                PathSplicing::precompute(&point.topo, &dsts, 4, point.seed).total_entries();
        }
    }
    record
}

/// Outcome of [`run`].
#[derive(Debug, Clone)]
pub struct HierResult {
    /// Configuration fingerprint.
    pub fingerprint: String,
    /// `(cell key, record JSON)` in grid order.
    pub records: Vec<(String, String)>,
}

impl HierResult {
    /// Renders the full `BENCH_hier.json` document (line-oriented, like
    /// the other campaign documents).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"campaign\":\"hier\",\n");
        out.push_str(&format!(
            "\"fingerprint\":\"{}\",\n\"cells\":[\n",
            self.fingerprint
        ));
        for (i, (_, json)) in self.records.iter().enumerate() {
            out.push_str(json);
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// A human-readable summary table (stdout side of `fig_hier`).
    pub fn render_table(&self) -> String {
        use crate::campaign::json_field;
        let mut out = String::from(
            "| Cell | Hdr bits | State | Domains | Delivery | Stretch | New classes |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for (key, json) in &self.records {
            let get = |f: &str| json_field(json, f).unwrap_or("-").to_string();
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                key,
                get("header_bits_max"),
                get("state_entries"),
                get("domains"),
                get("delivery_ratio"),
                get("stretch"),
                get("verify_new_classes"),
            ));
        }
        out
    }
}

/// Runs the sweep over the configured grid.
pub fn run(cfg: &HierConfig) -> HierResult {
    let cells = cfg.cells();
    let records = run_map(&cells, cfg.jobs, |cell| {
        let record = run_cell(cfg, cell);
        (record.key.clone(), record.to_json())
    });
    HierResult {
        fingerprint: cfg.fingerprint(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::json_field;

    fn smoke_config() -> HierConfig {
        HierConfig {
            seed: 9,
            sizes: vec![24],
            families: vec![Family::Ring],
            domain_target: 6,
            pairs: 6,
            packets_per_pair: 4,
            verify_pairs: 2,
            verify_links: 6,
            jobs: 2,
        }
    }

    #[test]
    fn run_cell_is_deterministic_and_hier_beats_flat_on_bits() {
        let cfg = smoke_config();
        let flat_cell = HierCell {
            family: Family::Ring,
            switches: 24,
            scheme: Scheme::Flat,
        };
        let hier_cell = HierCell {
            scheme: Scheme::Hier,
            ..flat_cell
        };
        let flat = run_cell(&cfg, &flat_cell);
        let hier = run_cell(&cfg, &hier_cell);
        assert_eq!(flat.to_json(), run_cell(&cfg, &flat_cell).to_json());
        assert_eq!(hier.to_json(), run_cell(&cfg, &hier_cell).to_json());
        // Same placement: schemes measure identical pair samples.
        assert_eq!(flat.seed, hier.seed);
        assert_eq!(flat.pairs, hier.pairs);
        assert_eq!(flat.nominal_hops_mean, hier.nominal_hops_mean);
        // The headline: per-domain segments are smaller than whole-path
        // route IDs.
        assert!(
            hier.header_bits_max < flat.header_bits_max,
            "hier {} vs flat {}",
            hier.header_bits_max,
            flat.header_bits_max
        );
        assert_eq!(hier.domains, 4);
        assert!(hier.boundary_links > 0);
        let ht = hier.traffic.as_ref().unwrap();
        let ft = flat.traffic.as_ref().unwrap();
        assert!(ht.delivery_ratio > 0.9, "{ht:?}");
        assert!(ft.delivery_ratio > 0.9, "{ft:?}");
        assert!(ht.boundary_restamps > 0);
        let v = hier.verify.as_ref().unwrap();
        assert!(v.cases > 0);
        assert_eq!(v.new_violation_classes, 0, "{v:?}");
    }

    #[test]
    fn table_schemes_report_state_not_headers() {
        let cfg = smoke_config();
        let ff = run_cell(
            &cfg,
            &HierCell {
                family: Family::Ring,
                switches: 24,
                scheme: Scheme::FastFailover,
            },
        );
        assert_eq!(ff.header_bits_max, 0);
        assert!(ff.state_entries > 0);
        assert!(ff.traffic.is_none());
        let sp = run_cell(
            &cfg,
            &HierCell {
                family: Family::Ring,
                switches: 24,
                scheme: Scheme::Splicing,
            },
        );
        assert!(sp.state_entries > ff.state_entries, "k slices cost more");
    }

    #[test]
    fn sweep_document_shape_and_grid_order() {
        let cfg = smoke_config();
        let result = run(&cfg);
        assert_eq!(result.records.len(), 4);
        let keys: Vec<&str> = result.records.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "ring/24/flat",
                "ring/24/hier",
                "ring/24/fast_failover",
                "ring/24/splicing"
            ]
        );
        let doc = result.to_json();
        assert!(doc.starts_with("{\"campaign\":\"hier\""));
        let hier_line = &result.records[1].1;
        assert!(json_field(hier_line, "verify_new_classes").is_some());
        assert!(result.render_table().contains("ring/24/hier"));
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let serial = run(&HierConfig {
            jobs: 1,
            ..smoke_config()
        });
        let parallel = run(&HierConfig {
            jobs: 4,
            ..smoke_config()
        });
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}
