//! Fig. 7: TCP throughput on the RNP backbone with no failure and with
//! failures at SW7-SW13, SW13-SW41 and SW41-SW73 (NIP, partial
//! protection).
//!
//! Expected shape (paper §3.2): SW7-SW13 costs <5% (the deflection is
//! deterministic — one extra hop, no disorder); SW13-SW41 costs ≈40%
//! and has the highest variance (five-way random deflection, only 2/5
//! driven); SW41-SW73 costs ≈30% (two-way deflection, both driven, but
//! over paths of different length → persistent reordering).

use crate::harness::{FailureWindow, TcpRun};
use crate::runner;
use crate::telemetry::{self, RunRecord};
use kar::{DeflectionTechnique, EncodingCache, Protection};
use kar_simnet::SimTime;
use kar_tcp::SampleStats;
use kar_topology::rnp28;
use std::sync::Arc;

/// One bar of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Cell {
    /// `"none"` or the failed link, e.g. `"SW13-SW41"`.
    pub failure: String,
    /// Throughput statistics (Mbit/s).
    pub stats: SampleStats,
    /// Mean fraction of the no-failure throughput (filled by [`run`]).
    pub relative: f64,
    /// Mean reordered arrivals per run.
    pub mean_reordered: f64,
}

/// Runs the four bars (`runs` repetitions of `secs`-second transfers
/// each) on `jobs` worker threads; results are independent of `jobs`.
pub fn run_jobs(runs: usize, secs: u64, base_seed: u64, jobs: usize) -> Vec<Fig7Cell> {
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG7_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let mut cases: Vec<(String, Option<kar_topology::LinkId>)> = vec![("none".to_string(), None)];
    for (a, b) in rnp28::FIG7_FAILURES {
        cases.push((format!("{a}-{b}"), Some(topo.expect_link(a, b))));
    }
    let cache = Arc::new(EncodingCache::new());
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for (name, link) in &cases {
        for r in 0..runs {
            specs.push(TcpRun {
                technique: DeflectionTechnique::Nip,
                protection: protection.clone(),
                duration: SimTime::from_secs(secs),
                failure: link.map(|l| FailureWindow {
                    link: l,
                    down: SimTime::ZERO,
                    up: SimTime::from_secs(secs + 1),
                }),
                seed: base_seed + r as u64 * 104_729,
                // Shared-softswitch calibration for the RNP
                // workload (≈90% CPU at the no-failure rate).
                switch_service: Some(SimTime::from_micros(20)),
                cache: Some(cache.clone()),
                label: format!("fig7/{name}/r{r}"),
                ..TcpRun::new(&topo, primary.clone())
            });
            labels.push(format!("{name}/r{r}"));
        }
    }
    let results = runner::run_all(&specs, jobs);
    let records: Vec<RunRecord> = results
        .iter()
        .enumerate()
        .map(|(i, res)| RunRecord::new("fig7", &labels[i], i, &specs[i], res))
        .collect();
    telemetry::emit(&records);
    let mut cells: Vec<Fig7Cell> = cases
        .iter()
        .enumerate()
        .map(|(ci, (name, _))| {
            let case_results = &results[ci * runs..(ci + 1) * runs];
            let reordered: u64 = case_results.iter().map(|res| res.reordered).sum();
            let samples: Vec<f64> = case_results
                .iter()
                .map(|res| res.meter.mean_mbps(SimTime::ZERO, SimTime::from_secs(secs)))
                .collect();
            Fig7Cell {
                failure: name.clone(),
                stats: SampleStats::from_samples(&samples),
                relative: 0.0,
                mean_reordered: reordered as f64 / runs as f64,
            }
        })
        .collect();
    let nominal = cells[0].stats.mean;
    for c in &mut cells {
        c.relative = if nominal > 0.0 {
            c.stats.mean / nominal
        } else {
            0.0
        };
    }
    cells
}

/// Serial [`run_jobs`].
pub fn run(runs: usize, secs: u64, base_seed: u64) -> Vec<Fig7Cell> {
    run_jobs(runs, secs, base_seed, 1)
}

/// Renders the bars with relative throughput.
pub fn render(cells: &[Fig7Cell]) -> String {
    let mut out = String::from(
        "Fig. 7 — RNP backbone, NIP + partial protection (route SW7→SW13→SW41→SW73)\n\
         | Failure | Mean (Mbit/s) | ±95% CI | Relative | Reordered/run |\n|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.0}% | {:.0} |\n",
            c.failure,
            c.stats.mean,
            c.stats.ci95,
            c.relative * 100.0,
            c.mean_reordered
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down (2 × 3 s): the paper's qualitative ordering must hold:
    /// SW7-SW13 is nearly free; the other two failures cost real
    /// throughput.
    #[test]
    fn shape_holds_scaled_down() {
        let cells = run(2, 3, 5);
        assert_eq!(cells.len(), 4);
        let rel = |name: &str| cells.iter().find(|c| c.failure == name).unwrap().relative;
        let r_713 = rel("SW7-SW13");
        let r_1341 = rel("SW13-SW41");
        let r_4173 = rel("SW41-SW73");
        assert!(
            r_713 > 0.85,
            "SW7-SW13 should cost little (deterministic detour): {r_713}"
        );
        assert!(
            r_713 > r_1341,
            "SW13-SW41 (5-way deflection) must cost more than SW7-SW13: {r_1341} vs {r_713}"
        );
        assert!(r_1341 > 0.05, "traffic must survive SW13-SW41: {r_1341}");
        assert!(r_4173 > 0.05, "traffic must survive SW41-SW73: {r_4173}");
        // The deterministic detour adds no reordering; the random ones do.
        let reord = |name: &str| {
            cells
                .iter()
                .find(|c| c.failure == name)
                .unwrap()
                .mean_reordered
        };
        assert!(
            reord("SW13-SW41") > reord("none"),
            "five-way deflection must reorder"
        );
    }

    #[test]
    fn render_lists_all_cases() {
        let cells = run(1, 2, 1);
        let text = render(&cells);
        for name in ["none", "SW7-SW13", "SW13-SW41", "SW41-SW73"] {
            assert!(text.contains(name), "{name} missing from\n{text}");
        }
    }
}
