//! Table 2: the feature matrix, with the implemented rows verified
//! experimentally (see `kar-baselines`).

use kar_baselines::{check_fast_failover_state, check_kar_row, render_table2};
use kar_topology::topo15;

/// Renders the paper's table plus the experimental evidence block.
pub fn run_and_render(seed: u64) -> String {
    let mut out = String::from("TABLE 2. Feature comparison (as in the paper)\n\n");
    out.push_str(&render_table2());
    let (kar_state, delivered, injected) = check_kar_row(seed);
    let topo = topo15::build();
    let ff_state = check_fast_failover_state(&topo);
    out.push_str(&format!(
        "\nExperimental evidence (15-node network):\n\
         - KAR core state entries: {kar_state} (stateless ✓)\n\
         - KAR delivery under TWO simultaneous failures: {delivered}/{injected} (multi-failure ✓)\n\
         - FastFailover core state entries: {ff_state} (stateful, grows with destinations)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn evidence_block_renders() {
        let text = super::run_and_render(5);
        assert!(text.contains("stateless ✓"));
        assert!(text.contains("| KAR | Yes | Yes | Stateless |"));
    }
}
