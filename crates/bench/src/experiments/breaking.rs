//! Breaking-point search (`BENCH_breaking.json`): for each
//! (pair, technique, protection) cell, the *smallest* failure set that
//! defeats the dataplane — found symbolically by
//! [`kar::min_failure_set`], then confirmed by replaying the witness set
//! through the real forwarder and measured against the table-based
//! baseline schemes under the identical failures.
//!
//! The sweep answers the question the k-failure classification tables
//! only aggregate: not *how many* failure sets break a technique, but
//! *how much* simultaneous damage each protection budget actually buys
//! per pair — the resilience frontier. A cell with no breaking point up
//! to `max_k` survives every failure set of that size that leaves the
//! pair physically connected.
//!
//! Every reported breaking point carries a replay record: the witness
//! links are failed at t=0 in a traced simulation and the run must
//! reproduce the predicted failure class (TTL exhaustion for `Loop`,
//! a core drop for `Blackhole`). The verifier models nondeterministic
//! deflection choices, so a random-walking technique may need a few
//! seeds before a packet walks into the trap; the replay retries a
//! bounded seed window and records the confirming seed.

use kar::verify::BreakingPoint;
use kar::{
    min_failure_set, DeflectionTechnique, EncodeRequest, EncodingCache, KarNetwork, Outcome,
    Protection,
};
use kar_baselines::{TableEdge, TableScheme};
use kar_simnet::{DropReason, FlowId, PacketKind, Sim, SimConfig, SimTime};
use kar_topology::{LinkId, NodeId, Topology};
use std::fmt::Write as _;

/// Seeds tried before declaring a witness unconfirmed. Deterministic
/// drops confirm on the first seed; a witness that requires a long
/// chain of random deflection choices (an NIP blackhole on rnp28 needs
/// a 13-hop walk that only ~a quarter of seeded runs take) needs a
/// statistical window. At a 25% per-seed hit rate, 32 seeds leave a
/// miss probability under 1e-4.
pub const REPLAY_SEED_TRIES: u64 = 32;

/// Protection levels swept, identically for every technique.
pub fn protection_levels() -> [(&'static str, Protection); 3] {
    [
        ("none", Protection::None),
        ("budget24", Protection::AutoBudget { max_bits: 24 }),
        ("full", Protection::AutoFull),
    ]
}

/// One replay of a witness failure set through the real forwarder.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Seed that produced this record (the confirming one, or the last
    /// tried when nothing confirmed).
    pub seed: u64,
    /// Whether the run reproduced the predicted failure class.
    pub confirms: bool,
    /// Probes injected.
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Drops by TTL expiry (the `Loop` signature).
    pub ttl_drops: u64,
    /// Drops inside the core with nowhere to forward (the `Blackhole`
    /// signature: dead port, no route, residue out of range).
    pub blackhole_drops: u64,
}

/// A baseline scheme measured under the identical witness failure set.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Scheme label.
    pub scheme: &'static str,
    /// Probes injected.
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
}

/// The breaking point of one cell, replay attached.
#[derive(Debug, Clone)]
pub struct BreakingDetail {
    /// Witness set size (the minimum that breaks the cell).
    pub k: usize,
    /// Witness links by endpoint names, e.g. `SW10-SW17`.
    pub links: Vec<String>,
    /// Predicted failure class (`Loop` or `Blackhole`).
    pub outcome: Outcome,
    /// The forwarder replay of the witness set.
    pub replay: Replay,
    /// Table-based baselines under the same failures.
    pub baselines: Vec<BaselineRun>,
}

/// One (pair, technique, protection) cell of the sweep.
#[derive(Debug, Clone)]
pub struct BreakingCell {
    /// Topology name.
    pub topo: &'static str,
    /// Source edge name.
    pub src: &'static str,
    /// Destination edge name.
    pub dst: &'static str,
    /// Deflection technique.
    pub technique: DeflectionTechnique,
    /// Protection level label (see [`protection_levels`]).
    pub protection: &'static str,
    /// Largest failure-set size searched.
    pub max_k: usize,
    /// The breaking point, or `None` if the cell survives every
    /// connectivity-preserving failure set up to `max_k`.
    pub breaking: Option<BreakingDetail>,
}

fn blackhole_drops(stats: &kar_simnet::Stats) -> u64 {
    [
        DropReason::PortDown,
        DropReason::NoRoute,
        DropReason::ResidueOutOfRange,
    ]
    .iter()
    .map(|r| stats.drops.get(r).copied().unwrap_or(0))
    .sum()
}

fn drive(sim: &mut Sim, src: NodeId, dst: NodeId, probes: u64) {
    for i in 0..probes {
        // Paced injections: measure routing, not burst absorption.
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
}

/// Everything a witness replay needs besides the seed: the cell under
/// test and the observability sink its runs report into.
pub struct ReplayCtx<'a> {
    /// Topology under test.
    pub topo: &'a Topology,
    /// `(src, dst)` edge pair.
    pub pair: (NodeId, NodeId),
    /// Deflection technique of the cell.
    pub technique: DeflectionTechnique,
    /// Protection level of the cell.
    pub protection: &'a Protection,
    /// Probes injected per replay.
    pub probes: u64,
    /// Metrics sink the replays attach to.
    pub obs: &'a crate::obs::RunObs,
}

impl ReplayCtx<'_> {
    fn replay_once(&self, failed: &[LinkId], outcome: Outcome, seed: u64) -> Replay {
        let (src, dst) = self.pair;
        let mut net = KarNetwork::builder(self.topo, self.technique)
            .seed(seed)
            .ttl(255)
            .build();
        net.encode(&EncodeRequest::new(src, dst).with_protection(self.protection.clone()))
            .expect("route installs");
        let mut sim = net.into_sim();
        sim.attach_obs(&self.obs.handle);
        for &l in failed {
            sim.schedule_link_down(SimTime::ZERO, l);
        }
        drive(&mut sim, src, dst, self.probes);
        let stats = sim.stats();
        let ttl_drops = stats
            .drops
            .get(&DropReason::TtlExpired)
            .copied()
            .unwrap_or(0);
        let bh_drops = blackhole_drops(stats);
        let confirms = match outcome {
            Outcome::Loop => ttl_drops > 0,
            Outcome::Blackhole => bh_drops > 0,
            _ => false,
        };
        Replay {
            seed,
            confirms,
            injected: stats.injected,
            delivered: stats.delivered,
            ttl_drops,
            blackhole_drops: bh_drops,
        }
    }

    /// Replays a witness set, retrying up to [`REPLAY_SEED_TRIES`] seeds
    /// until one reproduces the predicted failure class.
    pub fn replay_witness(&self, bp: &BreakingPoint, base_seed: u64) -> Replay {
        let mut last = None;
        for offset in 0..REPLAY_SEED_TRIES {
            let r = self.replay_once(&bp.failed, bp.outcome, base_seed + offset);
            if r.confirms {
                return r;
            }
            last = Some(r);
        }
        last.expect("at least one replay ran")
    }
}

fn run_baselines(
    topo: &Topology,
    (src, dst): (NodeId, NodeId),
    failed: &[LinkId],
    seed: u64,
    probes: u64,
) -> Vec<BaselineRun> {
    TableScheme::DEFAULT
        .into_iter()
        .map(|scheme| {
            let mut sim = Sim::new(
                topo,
                scheme.forwarder(topo, &[src, dst], seed),
                Box::new(TableEdge),
                SimConfig {
                    seed,
                    default_ttl: 255,
                    ..SimConfig::default()
                },
            );
            for &l in failed {
                sim.schedule_link_down(SimTime::ZERO, l);
            }
            drive(&mut sim, src, dst, probes);
            BaselineRun {
                scheme: scheme.label(),
                injected: sim.stats().injected,
                delivered: sim.stats().delivered,
            }
        })
        .collect()
}

fn link_names(topo: &Topology, links: &[LinkId]) -> Vec<String> {
    links
        .iter()
        .map(|&l| {
            let link = topo.link(l);
            format!("{}-{}", topo.node(link.a).name, topo.node(link.b).name)
        })
        .collect()
}

/// Runs the sweep for one pair on one topology: every technique × every
/// protection level, breaking points searched up to `max_k`.
pub fn run_pair(
    topo: &Topology,
    topo_name: &'static str,
    src_name: &'static str,
    dst_name: &'static str,
    max_k: usize,
    seed: u64,
    probes: u64,
) -> Vec<BreakingCell> {
    let src = topo.expect(src_name);
    let dst = topo.expect(dst_name);
    let cache = EncodingCache::new();
    let mut out = Vec::new();
    for (pname, protection) in protection_levels() {
        for technique in DeflectionTechnique::ALL {
            let obs = crate::obs::RunObs::begin();
            let bp = min_failure_set(topo, src, dst, technique, &protection, &cache, max_k)
                .expect("breaking-point search runs");
            let ctx = ReplayCtx {
                topo,
                pair: (src, dst),
                technique,
                protection: &protection,
                probes,
                obs: &obs,
            };
            let breaking = bp.map(|bp| {
                let replay = ctx.replay_witness(&bp, seed);
                let baselines = run_baselines(topo, (src, dst), &bp.failed, seed, probes);
                BreakingDetail {
                    k: bp.failed.len(),
                    links: link_names(topo, &bp.failed),
                    outcome: bp.outcome,
                    replay,
                    baselines,
                }
            });
            obs.submit(
                &format!(
                    "breaking/{topo_name}/{src_name}-{dst_name}/{}/{pname}",
                    technique.label()
                ),
                topo,
            );
            out.push(BreakingCell {
                topo: topo_name,
                src: src_name,
                dst: dst_name,
                technique,
                protection: pname,
                max_k,
                breaking,
            });
        }
    }
    out
}

/// Renders the sweep as a markdown table.
pub fn render(cells: &[BreakingCell]) -> String {
    let mut out = String::from(
        "Breaking points — smallest failure set that defeats each cell\n\
         | topo | pair | technique | protection | breaks at | outcome | witness | replay | baselines (same failures) |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for c in cells {
        let (breaks, outcome, witness, replay, baselines) = match &c.breaking {
            None => (
                format!("> k={}", c.max_k),
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
            ),
            Some(d) => (
                format!("k={}", d.k),
                d.outcome.to_string(),
                d.links.join(", "),
                format!(
                    "{}/{} delivered{} (seed {})",
                    d.replay.delivered,
                    d.replay.injected,
                    if d.replay.confirms {
                        ", confirmed"
                    } else {
                        ", UNCONFIRMED"
                    },
                    d.replay.seed
                ),
                d.baselines
                    .iter()
                    .map(|b| format!("{} {}/{}", b.scheme, b.delivered, b.injected))
                    .collect::<Vec<_>>()
                    .join("; "),
            ),
        };
        writeln!(
            out,
            "| {} | {}→{} | {} | {} | {} | {} | {} | {} | {} |",
            c.topo,
            c.src,
            c.dst,
            c.technique.label(),
            c.protection,
            breaks,
            outcome,
            witness,
            replay,
            baselines,
        )
        .unwrap();
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the sweep as the `BENCH_breaking.json` document. Contains
/// no wall-clock fields: the document is a pure function of the
/// configuration, byte-identical across runs and machines, so it can be
/// committed and diffed.
pub fn to_json(cells: &[BreakingCell]) -> String {
    let mut o = String::from("{\n\"experiment\":\"breaking\",\n\"cells\":[\n");
    for (i, c) in cells.iter().enumerate() {
        o.push('{');
        write!(
            o,
            "\"topo\":\"{}\",\"src\":\"{}\",\"dst\":\"{}\",\"technique\":\"{}\",\"protection\":\"{}\",\"max_k\":{}",
            c.topo,
            c.src,
            c.dst,
            json_escape(c.technique.label()),
            c.protection,
            c.max_k
        )
        .unwrap();
        match &c.breaking {
            None => o.push_str(",\"breaking\":null"),
            Some(d) => {
                write!(
                    o,
                    ",\"breaking\":{{\"k\":{},\"links\":[{}],\"outcome\":\"{}\"",
                    d.k,
                    d.links
                        .iter()
                        .map(|l| format!("\"{}\"", json_escape(l)))
                        .collect::<Vec<_>>()
                        .join(","),
                    d.outcome
                )
                .unwrap();
                write!(
                    o,
                    ",\"replay\":{{\"seed\":{},\"confirms\":{},\"injected\":{},\"delivered\":{},\"ttl_drops\":{},\"blackhole_drops\":{}}}",
                    d.replay.seed,
                    d.replay.confirms,
                    d.replay.injected,
                    d.replay.delivered,
                    d.replay.ttl_drops,
                    d.replay.blackhole_drops
                )
                .unwrap();
                o.push_str(",\"baselines\":[");
                for (j, b) in d.baselines.iter().enumerate() {
                    if j > 0 {
                        o.push(',');
                    }
                    write!(
                        o,
                        "{{\"scheme\":\"{}\",\"injected\":{},\"delivered\":{}}}",
                        json_escape(b.scheme),
                        b.injected,
                        b.delivered
                    )
                    .unwrap();
                }
                o.push_str("]}");
            }
        }
        o.push('}');
        if i + 1 < cells.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("]}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;

    #[test]
    fn unprotected_cells_break_and_replays_confirm() {
        let topo = topo15::build();
        let cells = run_pair(&topo, "topo15", "AS1", "AS3", 2, 11, 20);
        assert_eq!(cells.len(), 3 * DeflectionTechnique::ALL.len());
        // Drop-on-failure without protection breaks on the first primary
        // link — the Fig. 4 premise.
        let none = cells
            .iter()
            .find(|c| c.technique == DeflectionTechnique::None && c.protection == "none")
            .unwrap();
        let d = none.breaking.as_ref().expect("unprotected cell breaks");
        assert_eq!(d.k, 1);
        assert_eq!(d.outcome, Outcome::Blackhole);
        // The acceptance criterion: every reported breaking point's
        // witness replays through the real forwarder reproducing the
        // predicted failure class.
        for c in &cells {
            if let Some(d) = &c.breaking {
                assert!(
                    d.replay.confirms,
                    "{}/{}/{} witness {:?} did not reproduce {} in replay",
                    c.topo,
                    c.technique.label(),
                    c.protection,
                    d.links,
                    d.outcome
                );
                assert!(!d.baselines.is_empty());
            }
        }
    }

    #[test]
    fn protection_never_lowers_the_breaking_point() {
        let topo = topo15::build();
        let cells = run_pair(&topo, "topo15", "AS1", "AS3", 2, 3, 10);
        let breaks_at = |tech, prot: &str| {
            cells
                .iter()
                .find(|c| c.technique == tech && c.protection == prot)
                .unwrap()
                .breaking
                .as_ref()
                .map_or(usize::MAX, |d| d.k)
        };
        for tech in DeflectionTechnique::ALL {
            assert!(
                breaks_at(tech, "full") >= breaks_at(tech, "none"),
                "{}: full protection broke earlier than none",
                tech.label()
            );
        }
    }

    #[test]
    fn json_is_wellformed_enough_to_commit() {
        let topo = topo15::build();
        let cells = run_pair(&topo, "topo15", "AS1", "AS3", 1, 5, 10);
        let json = to_json(&cells);
        assert!(json.starts_with("{\n\"experiment\":\"breaking\""));
        assert_eq!(json.matches("\"technique\"").count(), cells.len());
        assert!(json.contains("\"breaking\":{") || json.contains("\"breaking\":null"));
        // Deterministic: same configuration, byte-identical document.
        let again = to_json(&run_pair(&topo, "topo15", "AS1", "AS3", 1, 5, 10));
        assert_eq!(json, again);
        let text = render(&cells);
        assert!(text.contains("breaking points") || text.contains("Breaking points"));
    }
}
