//! Ablation: how fast must local failure detection be for KAR's hitless
//! property to hold?
//!
//! The paper assumes a switch notices a dead port instantly. Real
//! detection (loss-of-light, BFD) takes microseconds to tens of
//! milliseconds, and every packet forwarded into the dead port during
//! that window is lost. This sweep measures delivered probes vs
//! detection delay — quantifying an assumption the paper leaves
//! implicit.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::topo15;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct DetectionPoint {
    /// Detection delay in microseconds.
    pub delay_us: u64,
    /// Delivered probes out of [`run`]'s `probes`.
    pub delivered: u64,
    /// Probes lost into the undetected dead port.
    pub lost: u64,
}

/// Sweeps detection delays on topo15 with NIP + full protection; the
/// failure strikes mid-stream while `probes` paced probes cross.
pub fn run(delays_us: &[u64], probes: u64, seed: u64) -> Vec<DetectionPoint> {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    delays_us
        .iter()
        .map(|&delay_us| {
            let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                .seed(seed)
                .ttl(255)
                .detection_delay(SimTime::from_micros(delay_us))
                .build();
            net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                .expect("route installs");
            let mut sim = net.into_sim();
            // Fail mid-stream: probes are paced at one per 100 µs.
            sim.schedule_link_down(
                SimTime::from_micros(probes * 50),
                topo.expect_link("SW7", "SW13"),
            );
            for i in 0..probes {
                sim.run_until(SimTime::from_micros(i * 100));
                sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            DetectionPoint {
                delay_us,
                delivered: sim.stats().delivered,
                lost: sim.stats().dropped(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(probes: u64, points: &[DetectionPoint]) -> String {
    let mut out = format!(
        "Detection-delay ablation — {probes} probes, failure mid-stream, NIP + full protection\n\
         | Detection delay (µs) | Delivered | Lost |\n|---|---|---|\n"
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {}/{} | {} |\n",
            p.delay_us, p.delivered, probes, p.lost
        ));
    }
    out.push_str("\nInstant detection (0 µs) is hitless; every extra window loses the packets in flight toward the dead port.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_is_hitless_and_losses_grow() {
        let points = run(&[0, 500, 5_000], 100, 3);
        assert_eq!(points[0].delivered, 100, "instant detection is hitless");
        assert!(points[1].lost >= points[0].lost);
        assert!(
            points[2].lost > points[0].lost,
            "a 5 ms blind window must lose packets: {points:?}"
        );
        for p in &points {
            assert_eq!(p.delivered + p.lost, 100, "conservation");
        }
    }

    #[test]
    fn render_lists_points() {
        let text = render(10, &run(&[0, 1000], 10, 1));
        assert!(text.contains("| 0 |"));
        assert!(text.contains("| 1000 |"));
    }
}
