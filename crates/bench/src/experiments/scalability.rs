//! Scalability of the route encoding: header cost and controller encode
//! time as the network and path grow, across three stateless-vs-stateful
//! points in the design space:
//!
//! * **KAR** — one integer, `⌈log₂(M−1)⌉` bits (Eq. 9);
//! * **Slick-Packets-style** — 6 explicit bytes per hop;
//! * **Fast failover** — zero header but `O(destinations)` entries in
//!   every switch.

use kar::{EncodedRoute, RouteSpec};
use kar_baselines::{FastFailover, SlickEdge};
use kar_rns::IdStrategy;
use kar_topology::{gen, paths, LinkParams, Topology};
use std::time::Instant;

/// One measured network size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Short description of the network.
    pub network: String,
    /// Core switches.
    pub switches: usize,
    /// Hops of the measured route.
    pub hops: usize,
    /// KAR route-ID size in bytes (unprotected).
    pub kar_bytes: usize,
    /// KAR encode time in microseconds.
    pub kar_encode_us: f64,
    /// Slick header size in bytes for the same path.
    pub slick_bytes: usize,
    /// Total fast-failover entries for one destination.
    pub ff_entries: usize,
}

fn measure(name: &str, topo: &Topology) -> ScalePoint {
    let edges = topo.edge_nodes();
    let (src, dst) = (edges[0], *edges.last().expect("has edges"));
    let path = paths::bfs_shortest_path(topo, src, dst).expect("connected");
    let spec = RouteSpec::unprotected(path.clone());
    let start = Instant::now();
    const REPS: u32 = 100;
    let mut route = None;
    for _ in 0..REPS {
        route = Some(EncodedRoute::encode(topo, &spec).expect("encodes"));
    }
    let kar_encode_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;
    let route = route.expect("encoded at least once");
    let mut slick = SlickEdge::new();
    let header = slick.install(topo, src, dst).expect("slick plans");
    let ff = FastFailover::precompute(topo, &[dst]);
    ScalePoint {
        network: name.to_string(),
        switches: topo.core_nodes().len(),
        hops: path.len() - 1,
        kar_bytes: route.bit_length().div_ceil(8) as usize,
        kar_encode_us,
        slick_bytes: header.wire_bytes(),
        ff_entries: ff.total_entries(),
    }
}

/// Runs the sweep over fat-trees and random graphs.
pub fn run() -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for k in [4usize, 6, 8] {
        let topo = gen::fat_tree(k, IdStrategy::SmallestPrimes, LinkParams::default());
        out.push(measure(&format!("fat-tree k={k}"), &topo));
    }
    for n in [25usize, 50, 100, 200] {
        let topo = gen::random_connected(
            n,
            n / 2,
            7,
            IdStrategy::SmallestPrimes,
            LinkParams::default(),
        );
        out.push(measure(&format!("random n={n}"), &topo));
    }
    out
}

/// Renders the sweep.
pub fn render(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "Encoding scalability — KAR (one integer) vs Slick (per-hop bytes) vs fast-failover state\n\
         | Network | Switches | Hops | KAR hdr (B) | KAR encode (µs) | Slick hdr (B) | FF entries/dst |\n|---|---|---|---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} | {} | {} |\n",
            p.network,
            p.switches,
            p.hops,
            p.kar_bytes,
            p.kar_encode_us,
            p.slick_bytes,
            p.ff_entries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_consistent_points() {
        let points = run();
        assert_eq!(points.len(), 7);
        for p in &points {
            assert!(p.hops >= 2, "{p:?}");
            assert!(p.kar_bytes >= 1);
            // One entry per forwarding core switch = hops minus the
            // host ingress hop.
            assert_eq!(p.slick_bytes, 1 + 6 * (p.hops - 1), "{p:?}");
            assert_eq!(p.ff_entries, p.switches);
        }
        // KAR's header stays small while fast-failover state grows with
        // the network.
        let big = points.iter().find(|p| p.network == "random n=200").unwrap();
        assert!(big.kar_bytes < 32, "{big:?}");
        assert_eq!(big.ff_entries, 200);
    }

    #[test]
    fn render_has_all_networks() {
        let text = render(&run());
        assert!(text.contains("fat-tree k=8"));
        assert!(text.contains("random n=200"));
    }
}
