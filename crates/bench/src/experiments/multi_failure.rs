//! Multiple simultaneous link failures — the Table 2 "supports multiple
//! link failures" claim, quantified.
//!
//! For k = 0..=3 random simultaneous core-link failures, inject a batch
//! of probes and measure the delivery ratio of three schemes: KAR with
//! NIP + full protection, KAR without deflection, and table-based fast
//! failover (one backup per destination — which a second failure can
//! exhaust).

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_baselines::{TableEdge, TableScheme};
use kar_simnet::{srlg_groups, FlowId, PacketKind, Sim, SimConfig, SimTime};
use kar_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Schemes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// KAR, NIP deflection, auto-planned full protection.
    KarNipFull,
    /// KAR dataplane with no deflection (drop on failure).
    KarNoDeflection,
    /// Stateful per-destination primary/backup tables.
    FastFailover,
    /// Stateful k-slice splicing (k = 4).
    PathSplicing,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 4] = [
        Scheme::KarNipFull,
        Scheme::KarNoDeflection,
        Scheme::FastFailover,
        Scheme::PathSplicing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::KarNipFull => "KAR NIP+full",
            Scheme::KarNoDeflection => "KAR no-deflection",
            Scheme::FastFailover => "FastFailover",
            Scheme::PathSplicing => "PathSplicing k=4",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct MultiFailurePoint {
    /// Simultaneous failures.
    pub k: usize,
    /// Scheme measured.
    pub scheme: Scheme,
    /// Mean delivery ratio over the trials.
    pub delivery: f64,
}

/// Candidate links for failure: core-core links not on the last hop to
/// an edge (so the destination stays attached).
fn failable_links(topo: &Topology) -> Vec<LinkId> {
    (0..topo.link_count())
        .map(LinkId)
        .filter(|&l| {
            let link = topo.link(l);
            topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
        })
        .collect()
}

fn run_one(
    topo: &Topology,
    (src, dst): (NodeId, NodeId),
    scheme: Scheme,
    failures: &[LinkId],
    seed: u64,
    probes: u64,
    obs: &crate::obs::RunObs,
) -> f64 {
    let mut sim = match scheme {
        Scheme::KarNipFull | Scheme::KarNoDeflection => {
            let technique = if scheme == Scheme::KarNipFull {
                DeflectionTechnique::Nip
            } else {
                DeflectionTechnique::None
            };
            let mut net = KarNetwork::builder(topo, technique)
                .seed(seed)
                .ttl(255)
                .build();
            net.encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
                .expect("route installs");
            net.into_sim()
        }
        Scheme::FastFailover | Scheme::PathSplicing => {
            let table = if scheme == Scheme::FastFailover {
                TableScheme::FastFailover
            } else {
                TableScheme::PathSplicing { slices: 4 }
            };
            Sim::new(
                topo,
                table.forwarder(topo, &[src, dst], seed),
                Box::new(TableEdge),
                SimConfig {
                    seed,
                    default_ttl: 255,
                    ..SimConfig::default()
                },
            )
        }
    };
    sim.attach_obs(&obs.handle);
    if let Some(profiler) = &obs.profiler {
        sim.attach_profiler(profiler.clone());
    }
    for &l in failures {
        sim.schedule_link_down(SimTime::ZERO, l);
    }
    for i in 0..probes {
        // Pace injections below line rate so drop-tail queues measure
        // routing, not burst absorption.
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    sim.stats().delivered as f64 / probes as f64
}

/// Runs the sweep on one topology between `src`/`dst` edge names.
pub fn run(
    topo: &Topology,
    src_name: &str,
    dst_name: &str,
    ks: &[usize],
    trials: usize,
    probes: u64,
    base_seed: u64,
) -> Vec<MultiFailurePoint> {
    let src = topo.expect(src_name);
    let dst = topo.expect(dst_name);
    let candidates = failable_links(topo);
    let mut out = Vec::new();
    for &k in ks {
        for scheme in Scheme::ALL {
            // One dump per measured point, aggregated over its trials.
            let obs = crate::obs::RunObs::begin();
            let mut total = 0.0;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(base_seed ^ ((k as u64) << 16) ^ t as u64);
                let mut links = candidates.clone();
                links.shuffle(&mut rng);
                links.truncate(k);
                total += run_one(
                    topo,
                    (src, dst),
                    scheme,
                    &links,
                    base_seed + t as u64,
                    probes,
                    &obs,
                );
            }
            obs.submit(
                &format!("multi/{src_name}-{dst_name}/{}/k{k}", scheme.label()),
                topo,
            );
            out.push(MultiFailurePoint {
                k,
                scheme,
                delivery: total / trials as f64,
            });
        }
    }
    out
}

/// Outcome of the correlated (SRLG) failure sweep for one scheme.
///
/// Unlike the independent sweep above, failures here arrive as whole
/// shared-risk link groups — every core-core link of one switch dies
/// together, as a line-card or fiber-conduit loss would take it. Groups
/// fail cumulatively in a per-trial random order, so the sweep measures
/// which scheme is the *first* to black-hole as correlated damage grows.
#[derive(Debug, Clone)]
pub struct CorrelatedOutcome {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Mean delivery ratio after `g + 1` SRLG groups have failed.
    pub delivery: Vec<f64>,
    /// Per trial: the smallest number of failed groups at which the
    /// scheme delivered nothing, if it ever black-holed.
    pub first_blackhole: Vec<Option<usize>>,
    /// Trials in which this scheme black-holed at the smallest group
    /// count among all schemes (ties count for every tied scheme).
    pub blackholed_first: usize,
}

impl CorrelatedOutcome {
    /// Mean group count at first blackhole over the trials that
    /// black-holed, or `None` if the scheme always delivered something.
    pub fn mean_first_blackhole(&self) -> Option<f64> {
        let hits: Vec<usize> = self.first_blackhole.iter().flatten().copied().collect();
        if hits.is_empty() {
            None
        } else {
            Some(hits.iter().sum::<usize>() as f64 / hits.len() as f64)
        }
    }
}

/// Runs the correlated-failure sweep: per trial, shuffle the topology's
/// SRLG groups, fail them cumulatively up to `max_groups`, and measure
/// every scheme on the identical damage sequence.
pub fn run_correlated(
    topo: &Topology,
    src_name: &str,
    dst_name: &str,
    max_groups: usize,
    trials: usize,
    probes: u64,
    base_seed: u64,
) -> Vec<CorrelatedOutcome> {
    let src = topo.expect(src_name);
    let dst = topo.expect(dst_name);
    let groups = srlg_groups(topo);
    let depth = max_groups.min(groups.len());
    let mut outcomes: Vec<CorrelatedOutcome> = Scheme::ALL
        .into_iter()
        .map(|scheme| CorrelatedOutcome {
            scheme,
            delivery: vec![0.0; depth],
            first_blackhole: Vec::new(),
            blackholed_first: 0,
        })
        .collect();
    // One aggregated dump per scheme across every trial and group depth.
    let scheme_obs: Vec<crate::obs::RunObs> = Scheme::ALL
        .iter()
        .map(|_| crate::obs::RunObs::begin())
        .collect();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(base_seed ^ ((t as u64) << 20));
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.shuffle(&mut rng);
        let mut firsts = [None; Scheme::ALL.len()];
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            let mut failed: BTreeSet<LinkId> = BTreeSet::new();
            let mut first = None;
            for g in 0..depth {
                failed.extend(groups[order[g]].iter().copied());
                let links: Vec<LinkId> = failed.iter().copied().collect();
                let ratio = run_one(
                    topo,
                    (src, dst),
                    scheme,
                    &links,
                    base_seed + t as u64,
                    probes,
                    &scheme_obs[si],
                );
                outcomes[si].delivery[g] += ratio;
                if first.is_none() && ratio == 0.0 {
                    first = Some(g + 1);
                }
            }
            outcomes[si].first_blackhole.push(first);
            firsts[si] = first;
        }
        if let Some(min) = firsts.iter().flatten().min().copied() {
            for (si, f) in firsts.iter().enumerate() {
                if *f == Some(min) {
                    outcomes[si].blackholed_first += 1;
                }
            }
        }
    }
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        scheme_obs[si].submit(
            &format!("multi-correlated/{src_name}-{dst_name}/{}", scheme.label()),
            topo,
        );
    }
    for outcome in &mut outcomes {
        for d in &mut outcome.delivery {
            *d /= trials as f64;
        }
    }
    outcomes
}

/// Renders the correlated sweep.
pub fn render_correlated(name: &str, outcomes: &[CorrelatedOutcome]) -> String {
    let depth = outcomes.first().map_or(0, |o| o.delivery.len());
    let mut out =
        format!("Correlated SRLG failures — delivery ratio by failed groups ({name})\n| scheme |");
    for g in 1..=depth {
        out.push_str(&format!(" {g} groups |"));
    }
    out.push_str(" first blackhole (mean groups) | black-holed first |\n|---|");
    out.push_str(&"---|".repeat(depth + 2));
    out.push('\n');
    for o in outcomes {
        out.push_str(&format!("| {} |", o.scheme.label()));
        for d in &o.delivery {
            out.push_str(&format!(" {d:.2} |"));
        }
        match o.mean_first_blackhole() {
            Some(mean) => out.push_str(&format!(" {mean:.1} |")),
            None => out.push_str(" never |"),
        }
        out.push_str(&format!(
            " {}/{} trials |\n",
            o.blackholed_first,
            o.first_blackhole.len()
        ));
    }
    out
}

/// Renders the sweep.
pub fn render(name: &str, points: &[MultiFailurePoint]) -> String {
    let mut out = format!(
        "Multiple simultaneous failures — delivery ratio ({name})\n| k | {} | {} | {} | {} |\n|---|---|---|---|---|\n",
        Scheme::KarNipFull.label(),
        Scheme::KarNoDeflection.label(),
        Scheme::FastFailover.label(),
        Scheme::PathSplicing.label()
    );
    let ks: Vec<usize> = {
        let mut v: Vec<usize> = points.iter().map(|p| p.k).collect();
        v.dedup();
        v
    };
    for k in ks {
        let get = |s: Scheme| {
            points
                .iter()
                .find(|p| p.k == k && p.scheme == s)
                .map(|p| p.delivery)
                .unwrap_or(f64::NAN)
        };
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            k,
            get(Scheme::KarNipFull),
            get(Scheme::KarNoDeflection),
            get(Scheme::FastFailover),
            get(Scheme::PathSplicing)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;

    #[test]
    fn kar_nip_dominates_under_failures() {
        let topo = topo15::build();
        let points = run(&topo, "AS1", "AS3", &[0, 1, 2], 3, 30, 77);
        let get = |k: usize, s: Scheme| {
            points
                .iter()
                .find(|p| p.k == k && p.scheme == s)
                .unwrap()
                .delivery
        };
        // No failures: everyone delivers everything.
        for s in Scheme::ALL {
            assert!((get(0, s) - 1.0).abs() < 1e-9, "{s:?}");
        }
        // With failures, NIP+full beats no-deflection.
        for k in [1usize, 2] {
            assert!(
                get(k, Scheme::KarNipFull) >= get(k, Scheme::KarNoDeflection),
                "k={k}"
            );
        }
        assert!(get(2, Scheme::KarNipFull) > 0.8, "KAR survives k=2");
    }

    #[test]
    fn correlated_groups_hurt_the_stateless_drop_scheme_first() {
        let topo = topo15::build();
        let outcomes = run_correlated(&topo, "AS1", "AS3", 2, 4, 20, 9);
        assert_eq!(outcomes.len(), Scheme::ALL.len());
        let get = |s: Scheme| outcomes.iter().find(|o| o.scheme == s).unwrap();
        let nip = get(Scheme::KarNipFull);
        let none = get(Scheme::KarNoDeflection);
        assert_eq!(nip.delivery.len(), 2);
        assert_eq!(nip.first_blackhole.len(), 4);
        // Identical damage sequences: deflection can only help.
        for g in 0..2 {
            assert!(
                nip.delivery[g] >= none.delivery[g],
                "g={} nip={:?} none={:?}",
                g,
                nip.delivery,
                none.delivery
            );
        }
        // No scheme black-holes before the drop-on-failure dataplane.
        for o in &outcomes {
            assert!(
                none.blackholed_first >= o.blackholed_first || o.scheme == Scheme::KarNoDeflection,
                "{:?} black-holed first more often than no-deflection",
                o.scheme
            );
        }
        // Replays are deterministic.
        let again = run_correlated(&topo, "AS1", "AS3", 2, 4, 20, 9);
        for (a, b) in outcomes.iter().zip(&again) {
            assert_eq!(a.delivery, b.delivery);
            assert_eq!(a.first_blackhole, b.first_blackhole);
            assert_eq!(a.blackholed_first, b.blackholed_first);
        }
    }

    #[test]
    fn correlated_render_lists_every_scheme() {
        let topo = topo15::build();
        let outcomes = run_correlated(&topo, "AS1", "AS3", 1, 2, 10, 5);
        let text = render_correlated("topo15", &outcomes);
        for s in Scheme::ALL {
            assert!(text.contains(s.label()), "{text}");
        }
        assert!(text.contains("first blackhole"));
    }

    #[test]
    fn render_has_all_ks() {
        let topo = topo15::build();
        let points = run(&topo, "AS1", "AS3", &[0, 1], 2, 20, 3);
        let text = render("topo15", &points);
        assert!(text.contains("| 0 |"));
        assert!(text.contains("| 1 |"));
    }
}
