//! Multiple simultaneous link failures — the Table 2 "supports multiple
//! link failures" claim, quantified.
//!
//! For k = 0..=3 random simultaneous core-link failures, inject a batch
//! of probes and measure the delivery ratio of three schemes: KAR with
//! NIP + full protection, KAR without deflection, and table-based fast
//! failover (one backup per destination — which a second failure can
//! exhaust).

use kar::{DeflectionTechnique, KarNetwork, Protection};
use kar_baselines::{FastFailover, PathSplicing, TableEdge};
use kar_simnet::{FlowId, PacketKind, Sim, SimConfig, SimTime};
use kar_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Schemes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// KAR, NIP deflection, auto-planned full protection.
    KarNipFull,
    /// KAR dataplane with no deflection (drop on failure).
    KarNoDeflection,
    /// Stateful per-destination primary/backup tables.
    FastFailover,
    /// Stateful k-slice splicing (k = 4).
    PathSplicing,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 4] = [
        Scheme::KarNipFull,
        Scheme::KarNoDeflection,
        Scheme::FastFailover,
        Scheme::PathSplicing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::KarNipFull => "KAR NIP+full",
            Scheme::KarNoDeflection => "KAR no-deflection",
            Scheme::FastFailover => "FastFailover",
            Scheme::PathSplicing => "PathSplicing k=4",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct MultiFailurePoint {
    /// Simultaneous failures.
    pub k: usize,
    /// Scheme measured.
    pub scheme: Scheme,
    /// Mean delivery ratio over the trials.
    pub delivery: f64,
}

/// Candidate links for failure: core-core links not on the last hop to
/// an edge (so the destination stays attached).
fn failable_links(topo: &Topology) -> Vec<LinkId> {
    (0..topo.link_count())
        .map(LinkId)
        .filter(|&l| {
            let link = topo.link(l);
            topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some()
        })
        .collect()
}

fn run_one(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    scheme: Scheme,
    failures: &[LinkId],
    seed: u64,
    probes: u64,
) -> f64 {
    let mut sim = match scheme {
        Scheme::KarNipFull | Scheme::KarNoDeflection => {
            let technique = if scheme == Scheme::KarNipFull {
                DeflectionTechnique::Nip
            } else {
                DeflectionTechnique::None
            };
            let mut net = KarNetwork::new(topo, technique)
                .with_seed(seed)
                .with_ttl(255);
            net.install_route(src, dst, &Protection::AutoFull)
                .expect("route installs");
            net.into_sim()
        }
        Scheme::FastFailover => {
            let ff = FastFailover::precompute(topo, &[src, dst]);
            Sim::new(
                topo,
                Box::new(ff),
                Box::new(TableEdge),
                SimConfig {
                    seed,
                    default_ttl: 255,
                    ..SimConfig::default()
                },
            )
        }
        Scheme::PathSplicing => {
            let ps = PathSplicing::precompute(topo, &[src, dst], 4, seed);
            Sim::new(
                topo,
                Box::new(ps),
                Box::new(TableEdge),
                SimConfig {
                    seed,
                    default_ttl: 255,
                    ..SimConfig::default()
                },
            )
        }
    };
    for &l in failures {
        sim.schedule_link_down(SimTime::ZERO, l);
    }
    for i in 0..probes {
        // Pace injections below line rate so drop-tail queues measure
        // routing, not burst absorption.
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    sim.stats().delivered as f64 / probes as f64
}

/// Runs the sweep on one topology between `src`/`dst` edge names.
pub fn run(
    topo: &Topology,
    src_name: &str,
    dst_name: &str,
    ks: &[usize],
    trials: usize,
    probes: u64,
    base_seed: u64,
) -> Vec<MultiFailurePoint> {
    let src = topo.expect(src_name);
    let dst = topo.expect(dst_name);
    let candidates = failable_links(topo);
    let mut out = Vec::new();
    for &k in ks {
        for scheme in Scheme::ALL {
            let mut total = 0.0;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(base_seed ^ ((k as u64) << 16) ^ t as u64);
                let mut links = candidates.clone();
                links.shuffle(&mut rng);
                links.truncate(k);
                total += run_one(topo, src, dst, scheme, &links, base_seed + t as u64, probes);
            }
            out.push(MultiFailurePoint {
                k,
                scheme,
                delivery: total / trials as f64,
            });
        }
    }
    out
}

/// Renders the sweep.
pub fn render(name: &str, points: &[MultiFailurePoint]) -> String {
    let mut out = format!(
        "Multiple simultaneous failures — delivery ratio ({name})\n| k | {} | {} | {} | {} |\n|---|---|---|---|---|\n",
        Scheme::KarNipFull.label(),
        Scheme::KarNoDeflection.label(),
        Scheme::FastFailover.label(),
        Scheme::PathSplicing.label()
    );
    let ks: Vec<usize> = {
        let mut v: Vec<usize> = points.iter().map(|p| p.k).collect();
        v.dedup();
        v
    };
    for k in ks {
        let get = |s: Scheme| {
            points
                .iter()
                .find(|p| p.k == k && p.scheme == s)
                .map(|p| p.delivery)
                .unwrap_or(f64::NAN)
        };
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            k,
            get(Scheme::KarNipFull),
            get(Scheme::KarNoDeflection),
            get(Scheme::FastFailover),
            get(Scheme::PathSplicing)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;

    #[test]
    fn kar_nip_dominates_under_failures() {
        let topo = topo15::build();
        let points = run(&topo, "AS1", "AS3", &[0, 1, 2], 3, 30, 77);
        let get = |k: usize, s: Scheme| {
            points
                .iter()
                .find(|p| p.k == k && p.scheme == s)
                .unwrap()
                .delivery
        };
        // No failures: everyone delivers everything.
        for s in Scheme::ALL {
            assert!((get(0, s) - 1.0).abs() < 1e-9, "{s:?}");
        }
        // With failures, NIP+full beats no-deflection.
        for k in [1usize, 2] {
            assert!(
                get(k, Scheme::KarNipFull) >= get(k, Scheme::KarNoDeflection),
                "k={k}"
            );
        }
        assert!(get(2, Scheme::KarNipFull) > 0.8, "KAR survives k=2");
    }

    #[test]
    fn render_has_all_ks() {
        let topo = topo15::build();
        let points = run(&topo, "AS1", "AS3", &[0, 1], 2, 20, 3);
        let text = render("topo15", &points);
        assert!(text.contains("| 0 |"));
        assert!(text.contains("| 1 |"));
    }
}
