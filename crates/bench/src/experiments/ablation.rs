//! Ablation studies beyond the paper's figures:
//!
//! 1. **Encoding size vs ID-assignment strategy** (paper §2.3 raises the
//!    bit-length concern; we quantify how much the allocator strategy
//!    matters as paths grow).
//! 2. **Protection bit budget vs failure coverage** on the 15-node
//!    network (the paper's partial-protection idea, swept continuously).

use kar::analysis::failure_coverage;
use kar::{protection, EncodedRoute, Protection, RouteSpec};
use kar_rns::IdStrategy;
use kar_topology::{gen, paths, topo15, LinkParams};

/// One row of the strategy ablation: bit length of an end-to-end route
/// on a line of `path_len` switches, per allocation strategy.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// Number of core switches on the path.
    pub path_len: usize,
    /// Bits with consecutive small primes.
    pub smallest_primes: u32,
    /// Bits with smallest coprime integers (prime powers allowed).
    pub smallest_coprime: u32,
    /// Bits with primes from 100 up (a naive "roomy" assignment).
    pub primes_from_100: u32,
}

/// Sweeps line topologies of growing length.
pub fn strategy_sweep(lengths: &[usize]) -> Vec<StrategyRow> {
    lengths
        .iter()
        .map(|&n| {
            let bits = |strategy: IdStrategy| {
                let topo = gen::line(n, strategy, LinkParams::default());
                let path = paths::bfs_shortest_path(&topo, topo.expect("H0"), topo.expect("H1"))
                    .expect("line is connected");
                EncodedRoute::encode(&topo, &RouteSpec::unprotected(path))
                    .expect("line encodes")
                    .bit_length()
            };
            StrategyRow {
                path_len: n,
                smallest_primes: bits(IdStrategy::SmallestPrimes),
                smallest_coprime: bits(IdStrategy::SmallestCoprime),
                primes_from_100: bits(IdStrategy::PrimesFrom(100)),
            }
        })
        .collect()
}

/// One row of the budget ablation.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// Allowed route-ID bits.
    pub max_bits: u32,
    /// Bits actually used.
    pub used_bits: u32,
    /// Switches folded into the route ID.
    pub switches: usize,
    /// Guaranteed coverage fraction per failure location, in
    /// [`topo15::FAILURE_LOCATIONS`] order.
    pub coverage: [f64; 3],
}

/// Sweeps the protection budget on topo15's primary route.
pub fn budget_sweep(budgets: &[u32]) -> Vec<BudgetRow> {
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    let dst = topo.expect("AS3");
    budgets
        .iter()
        .map(|&max_bits| {
            let route = protection::encode_with_protection(
                &topo,
                primary.clone(),
                &Protection::AutoBudget { max_bits },
            )
            .expect("budgeted route encodes");
            let mut coverage = [0.0f64; 3];
            for (i, (a, b)) in topo15::FAILURE_LOCATIONS.iter().enumerate() {
                coverage[i] =
                    failure_coverage(&topo, &route, &primary, topo.expect_link(a, b), dst)
                        .fraction();
            }
            BudgetRow {
                max_bits,
                used_bits: route.bit_length(),
                switches: route.pairs.len(),
                coverage,
            }
        })
        .collect()
}

/// Renders both ablations.
pub fn render(strategy: &[StrategyRow], budget: &[BudgetRow]) -> String {
    let mut out = String::from(
        "Ablation 1 — route-ID bits vs path length per ID-assignment strategy\n\
         | Path length | SmallestPrimes | SmallestCoprime | PrimesFrom(100) |\n|---|---|---|---|\n",
    );
    for r in strategy {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.path_len, r.smallest_primes, r.smallest_coprime, r.primes_from_100
        ));
    }
    out.push_str(
        "\nAblation 2 — protection bit budget vs guaranteed coverage (topo15 primary route)\n\
         | Budget (bits) | Used | Switches | cov(SW10-SW7) | cov(SW7-SW13) | cov(SW13-SW29) |\n|---|---|---|---|---|---|\n",
    );
    for r in budget {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} |\n",
            r.max_bits, r.used_bits, r.switches, r.coverage[0], r.coverage[1], r.coverage[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coprime_never_beats_primes_by_much_and_small_beats_roomy() {
        let rows = strategy_sweep(&[2, 4, 8, 12]);
        for r in &rows {
            // Small IDs always beat IDs ≥ 100.
            assert!(r.smallest_primes < r.primes_from_100, "{r:?}");
            assert!(r.smallest_coprime <= r.smallest_primes, "{r:?}");
        }
        // Bits grow with path length.
        assert!(rows
            .windows(2)
            .all(|w| w[1].smallest_primes > w[0].smallest_primes));
    }

    #[test]
    fn budget_sweep_reaches_full_coverage() {
        let rows = budget_sweep(&[15, 28, 43, 64]);
        assert_eq!(rows[0].switches, 4, "15 bits fits only the primary");
        let last = rows.last().unwrap();
        assert!(last.coverage.iter().all(|&c| (c - 1.0).abs() < 1e-9));
        for r in &rows {
            assert!(r.used_bits <= r.max_bits);
        }
    }

    #[test]
    fn render_shows_both_tables() {
        let text = render(&strategy_sweep(&[2, 4]), &budget_sweep(&[15, 64]));
        assert!(text.contains("Ablation 1"));
        assert!(text.contains("Ablation 2"));
    }
}
