//! Table 1: maximum route-ID bit length per protection mechanism on the
//! 15-node network.

use kar::{EncodedRoute, RouteSpec};
use kar_topology::topo15;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Protection mechanism name.
    pub mechanism: &'static str,
    /// `⌈log₂(M−1)⌉` of the encoded route (Eq. 9).
    pub bit_length: u32,
    /// Switches folded into the route ID.
    pub switches: usize,
    /// The paper's reported value, for the comparison column.
    pub paper_bits: u32,
    /// The paper's reported switch count.
    pub paper_switches: usize,
}

/// Computes the three rows from the reconstructed topology.
pub fn compute() -> Vec<Table1Row> {
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    let partial = topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION);
    let mut full = partial.clone();
    full.extend(topo15::protection_pairs(
        &topo,
        &topo15::FULL_EXTRA_PROTECTION,
    ));

    let encode = |prot: Vec<_>| {
        EncodedRoute::encode(&topo, &RouteSpec::protected(primary.clone(), prot))
            .expect("topo15 scenario encodes")
    };
    let unprot = encode(Vec::new());
    let part = encode(partial);
    let full = encode(full);
    vec![
        Table1Row {
            mechanism: "Unprotected",
            bit_length: unprot.bit_length(),
            switches: unprot.pairs.len(),
            paper_bits: 15,
            paper_switches: 4,
        },
        Table1Row {
            mechanism: "Partial protection",
            bit_length: part.bit_length(),
            switches: part.pairs.len(),
            paper_bits: 28,
            paper_switches: 7,
        },
        Table1Row {
            mechanism: "Full protection",
            bit_length: full.bit_length(),
            switches: full.pairs.len(),
            paper_bits: 43,
            paper_switches: 10,
        },
    ]
}

/// Renders the table with a paper-vs-measured comparison.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "TABLE 1. Maximum bit length required by each protection mechanism (15-node network)\n\
         | Protection mechanism | Bit length | Switches in route ID | Paper bits | Paper switches |\n\
         |---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.mechanism, r.bit_length, r.switches, r.paper_bits, r.paper_switches
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_exactly() {
        for row in compute() {
            assert_eq!(row.bit_length, row.paper_bits, "{}", row.mechanism);
            assert_eq!(row.switches, row.paper_switches, "{}", row.mechanism);
        }
    }

    #[test]
    fn renders_all_rows() {
        let s = render(&compute());
        assert!(s.contains("Unprotected | 15 | 4 | 15 | 4"));
        assert!(s.contains("Partial protection | 28 | 7"));
        assert!(s.contains("Full protection | 43 | 10"));
    }
}
