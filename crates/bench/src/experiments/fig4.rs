//! Fig. 4: TCP throughput time series across a 30-second failure of link
//! SW7–SW13 for the four deflection techniques.
//!
//! Paper protocol: measurement starts 30 s before the failure, the
//! failure lasts 30 s, measurement continues 30 s after repair. Expected
//! shape: *no deflection* collapses to zero during the outage; NIP keeps
//! the highest deflected throughput (the paper reports ≈150 of
//! 200 Mbit/s, a ≈25% disordering penalty); HP is the worst deflecting
//! technique.

use crate::harness::{FailureWindow, TcpRun};
use crate::runner;
use crate::telemetry::{self, RunRecord};
use kar::{DeflectionTechnique, EncodingCache, Protection};
use kar_simnet::SimTime;
use kar_topology::topo15;
use std::sync::Arc;

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Config {
    /// Seconds before the failure.
    pub pre_s: u64,
    /// Failure duration in seconds.
    pub fail_s: u64,
    /// Seconds after repair.
    pub post_s: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    /// The paper's 30 s / 30 s / 30 s protocol.
    fn default() -> Self {
        Fig4Config {
            pre_s: 30,
            fail_s: 30,
            post_s: 30,
            seed: 1,
        }
    }
}

/// One curve of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// Deflection technique.
    pub technique: DeflectionTechnique,
    /// Per-second goodput in Mbit/s.
    pub series: Vec<f64>,
    /// Mean goodput during the failure window.
    pub mean_during_failure: f64,
    /// Mean goodput before the failure.
    pub mean_before: f64,
    /// Out-of-order arrivals at the receiver.
    pub reordered: u64,
}

/// Runs the four curves (NoDeflection, HP, AVP, NIP) with the paper's
/// Fig. 3 partial protection, one worker thread per curve up to `jobs`.
pub fn run_jobs(cfg: Fig4Config, jobs: usize) -> Vec<Fig4Series> {
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    let protection =
        Protection::Segments(topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION));
    let total = SimTime::from_secs(cfg.pre_s + cfg.fail_s + cfg.post_s);
    let down = SimTime::from_secs(cfg.pre_s);
    let up = SimTime::from_secs(cfg.pre_s + cfg.fail_s);
    let link = topo.expect_link("SW7", "SW13");
    let cache = Arc::new(EncodingCache::new());
    let specs: Vec<TcpRun<'_>> = DeflectionTechnique::ALL
        .iter()
        .map(|&technique| TcpRun {
            technique,
            protection: protection.clone(),
            duration: total,
            failure: Some(FailureWindow { link, down, up }),
            seed: cfg.seed,
            // Calibrated so the 200 Mbit/s no-failure workload runs
            // the shared softswitch near saturation, as in the
            // paper's single-host emulation.
            switch_service: Some(SimTime::from_micros(7)),
            cache: Some(cache.clone()),
            label: format!("fig4/{}", technique.label()),
            ..TcpRun::new(&topo, primary.clone())
        })
        .collect();
    let results = runner::run_all(&specs, jobs);
    let records: Vec<RunRecord> = results
        .iter()
        .enumerate()
        .map(|(i, res)| {
            RunRecord::new(
                "fig4",
                DeflectionTechnique::ALL[i].label(),
                i,
                &specs[i],
                res,
            )
        })
        .collect();
    telemetry::emit(&records);
    results
        .iter()
        .zip(DeflectionTechnique::ALL)
        .map(|(res, technique)| {
            // Skip the first second of both windows (slow-start /
            // failure-detection transients), as iperf interval reads do.
            let mean_before = res
                .meter
                .mean_mbps(SimTime::from_secs(1.min(cfg.pre_s)), down);
            let mean_during_failure = res.meter.mean_mbps(down + SimTime::from_secs(1), up);
            Fig4Series {
                technique,
                series: res.meter.series_mbps(total),
                mean_during_failure,
                mean_before,
                reordered: res.reordered,
            }
        })
        .collect()
}

/// Serial [`run_jobs`].
pub fn run(cfg: Fig4Config) -> Vec<Fig4Series> {
    run_jobs(cfg, 1)
}

/// Renders the per-second series as CSV (`t,NoDeflection,HP,AVP,NIP`)
/// plus a summary block.
pub fn render(series: &[Fig4Series]) -> String {
    let mut out = String::from("Fig. 4 — TCP throughput vs time, failure of SW7-SW13\n");
    out.push_str("t_s");
    for s in series {
        out.push_str(&format!(",{}", s.technique));
    }
    out.push('\n');
    let len = series.iter().map(|s| s.series.len()).max().unwrap_or(0);
    for t in 0..len {
        out.push_str(&format!("{t}"));
        for s in series {
            out.push_str(&format!(",{:.2}", s.series.get(t).copied().unwrap_or(0.0)));
        }
        out.push('\n');
    }
    out.push_str("\nSummary (Mbit/s):\n");
    for s in series {
        out.push_str(&format!(
            "  {:<12} before={:>7.1}  during-failure={:>7.1}  reordered={}\n",
            s.technique.to_string(),
            s.mean_before,
            s.mean_during_failure,
            s.reordered
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down Fig. 4 (3 s / 4 s / 3 s) — the paper's qualitative
    /// ordering must hold: NoDeflection starves; NIP and AVP keep TCP
    /// alive; deflecting techniques beat the no-deflection reference.
    #[test]
    fn shape_holds_scaled_down() {
        let series = run(Fig4Config {
            pre_s: 3,
            fail_s: 4,
            post_s: 3,
            seed: 7,
        });
        assert_eq!(series.len(), 4);
        let get = |t: DeflectionTechnique| {
            series
                .iter()
                .find(|s| s.technique == t)
                .unwrap()
                .mean_during_failure
        };
        let none = get(DeflectionTechnique::None);
        let nip = get(DeflectionTechnique::Nip);
        let avp = get(DeflectionTechnique::Avp);
        assert!(none < 1.0, "no deflection must starve: {none}");
        assert!(nip > 20.0, "NIP must keep TCP alive: {nip}");
        assert!(avp > 5.0, "AVP must keep TCP alive: {avp}");
        assert!(nip > none && avp > none);
        // Before the failure every technique saturates.
        for s in &series {
            assert!(s.mean_before > 120.0, "{}: {}", s.technique, s.mean_before);
        }
    }

    #[test]
    fn render_emits_csv_and_summary() {
        let series = run(Fig4Config {
            pre_s: 2,
            fail_s: 2,
            post_s: 1,
            seed: 1,
        });
        let text = render(&series);
        assert!(text.contains("t_s,NoDeflection,HP,AVP,NIP"));
        assert!(text.contains("during-failure="));
    }
}
