//! Adversarial & churn scenario suite — the experiment behind the
//! `fig_adversary` binary (`BENCH_adversary.json`).
//!
//! The paper's evaluation assumes fail-stop links and honest switches.
//! This experiment stresses both assumptions at once:
//!
//! * **Targeted link campaigns** fail core links in descending
//!   edge-betweenness order ([`kar_topology::analysis::ranked_links`]) —
//!   the "cut where the shortest paths concentrate" attacker — and are
//!   compared against **random campaigns of matched intensity** (same
//!   link count, same schedule, links drawn uniformly from the same
//!   core-core pool).
//! * **Byzantine switches** ([`kar_simnet::Behavior`]) misforward to
//!   random healthy ports, corrupt route-ID residues in flight, or drop
//!   silently; compromised switches are placed at the highest-load
//!   positions ([`kar_topology::analysis::ranked_core_switches`]).
//! * **Rolling churn** drives Poisson down/up trains on the most loaded
//!   links while the failure-reactive controller repairs concurrently.
//!
//! Every scheme in a cell — KAR's deflection techniques at two
//! protection levels and the table-based baselines of
//! [`kar_baselines`] — faces the **identical attack trace**: the fault
//! plan and Byzantine placement are seeded from `(topology, attack,
//! intensity)` only, never from the scheme, so the comparison isolates
//! the routing scheme. The grid fans out through
//! [`crate::runner::run_map`] and every point carries a digest, so
//! `--jobs N` determinism is testable; the JSON document contains no
//! wall-clock fields and is committed at the repository root.

use crate::harness::row;
use crate::runner::run_map;
use kar::recovery::RecoveryConfig;
use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_baselines::{TableEdge, TableScheme};
use kar_simnet::{Behavior, DropReason, FaultPlan, FlowId, PacketKind, Sim, SimConfig, SimTime};
use kar_topology::{analysis, paths, rnp28, topo15, NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

/// One attack family, parameterized by an intensity `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Fail the `n` highest-betweenness core links, one every interval.
    TargetedLinks,
    /// Fail `n` uniformly drawn core links on the same schedule — the
    /// matched-intensity control for [`AttackKind::TargetedLinks`].
    RandomLinks,
    /// Poisson down/up trains on the `2n` most loaded core links,
    /// concurrent with controller repair.
    RollingChurn,
    /// The `n` highest-load core switches forward every packet out a
    /// random healthy port.
    ByzMisforward,
    /// The `n` highest-load core switches rewrite route-ID residues in
    /// flight.
    ByzCorrupt,
    /// The `n` highest-load core switches silently discard all traffic.
    ByzDrop,
}

impl AttackKind {
    /// Every attack family, in render order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::TargetedLinks,
        AttackKind::RandomLinks,
        AttackKind::RollingChurn,
        AttackKind::ByzMisforward,
        AttackKind::ByzCorrupt,
        AttackKind::ByzDrop,
    ];

    /// Stable kebab-case label (used in seeds, JSON and tables).
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::TargetedLinks => "targeted-links",
            AttackKind::RandomLinks => "random-links",
            AttackKind::RollingChurn => "rolling-churn",
            AttackKind::ByzMisforward => "byz-misforward",
            AttackKind::ByzCorrupt => "byz-corrupt",
            AttackKind::ByzDrop => "byz-drop",
        }
    }

    /// The switch behavior this attack installs, when it is a Byzantine
    /// attack rather than a link campaign.
    pub fn byzantine_behavior(self) -> Option<Behavior> {
        match self {
            AttackKind::ByzMisforward => Some(Behavior::Misforward),
            AttackKind::ByzCorrupt => Some(Behavior::CorruptResidue),
            AttackKind::ByzDrop => Some(Behavior::DropSilently),
            _ => None,
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One routing scheme under attack: a KAR technique at a protection
/// level, or a table-based baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// KAR dataplane with the failure-reactive controller enabled.
    Kar {
        /// Deflection technique.
        technique: DeflectionTechnique,
        /// Protection level label: `"none"` or `"full"`.
        protection: &'static str,
    },
    /// A precomputed-table comparator from [`kar_baselines`].
    Table(TableScheme),
}

impl SchemeSpec {
    /// Display label, e.g. `"NIP/full"` or `"FastFailover"`.
    pub fn label(self) -> String {
        match self {
            SchemeSpec::Kar {
                technique,
                protection,
            } => format!("{}/{}", technique.label(), protection),
            SchemeSpec::Table(t) => t.label().to_string(),
        }
    }
}

/// The scheme grid: HP/AVP/NIP at `none` and `full` protection, plus
/// the default table-based comparators — 8 schemes per cell.
pub fn schemes() -> Vec<SchemeSpec> {
    let mut out = Vec::new();
    for technique in [
        DeflectionTechnique::HotPotato,
        DeflectionTechnique::Avp,
        DeflectionTechnique::Nip,
    ] {
        for protection in ["none", "full"] {
            out.push(SchemeSpec::Kar {
                technique,
                protection,
            });
        }
    }
    out.extend(TableScheme::DEFAULT.into_iter().map(SchemeSpec::Table));
    out
}

/// Knobs of one adversary sweep.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Probes injected per flow (one per `gap`).
    pub probes: u64,
    /// Inter-injection gap per flow.
    pub gap: SimTime,
    /// Data-plane failure-detection delay.
    pub detection: SimTime,
    /// Controller notification delay on top of detection (KAR schemes).
    pub notification: SimTime,
    /// Base RNG seed; attack traces and sims derive from it.
    pub seed: u64,
    /// Attack intensities `n` to sweep.
    pub intensities: Vec<u32>,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            probes: 120,
            gap: SimTime::from_micros(300),
            detection: SimTime::from_micros(200),
            notification: SimTime::from_millis(1),
            seed: 23,
            intensities: vec![1, 2, 4],
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryPoint {
    /// Topology name (`"topo15"`, `"rnp28"`).
    pub topo: &'static str,
    /// Attack family.
    pub attack: AttackKind,
    /// Attack intensity `n`.
    pub intensity: u32,
    /// Scheme label (see [`SchemeSpec::label`]).
    pub scheme: String,
    /// Probes injected (all flows).
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Probes dropped (all reasons).
    pub dropped: u64,
    /// Delivered / injected.
    pub reachability: f64,
    /// Mean delivered hops relative to each flow's fault-free shortest
    /// path (NaN when nothing was delivered).
    pub stretch: f64,
    /// Drops classified as tampered residues
    /// ([`DropReason::CorruptedResidue`]) — corruption *detected* by the
    /// residue range check.
    pub corrupted_residue_drops: u64,
    /// Packets a Byzantine switch silently discarded.
    pub adversary_drops: u64,
    /// Packets pushed out a port the honest forwarder did not choose.
    pub byzantine_misforwards: u64,
    /// Route tags rewritten in flight.
    pub byzantine_corruptions: u64,
    /// Packets discarded by [`Behavior::DropSilently`] switches as
    /// counted by the engine's Byzantine counter (must equal the
    /// [`DropReason::AdversaryDrop`] bucket).
    pub byzantine_drops: u64,
    /// Physical link up→down transitions.
    pub link_failures: u64,
    /// Physical down→up transitions.
    pub link_repairs: u64,
    /// Flows the controller re-encoded onto a detour (0 for baselines,
    /// which have no controller).
    pub recovered_flows: usize,
    /// Mean failure-detection → recovered-traffic latency in seconds
    /// (NaN when no flow recovered).
    pub mean_recovery_latency_s: f64,
}

impl AdversaryPoint {
    /// Canonical serialization of every simulated quantity; two runs of
    /// the same grid point are deterministic exactly when digests match
    /// (the `--jobs` conformance property).
    pub fn digest(&self) -> String {
        format!(
            "{}/{}/n{}/{} injected={} delivered={} dropped={} stretch={:?} corrupt_drops={} adv_drops={} misfwd={} corruptions={} byz_drops={} failures={} repairs={} recovered={} latency={:?}",
            self.topo,
            self.attack,
            self.intensity,
            self.scheme,
            self.injected,
            self.delivered,
            self.dropped,
            self.stretch,
            self.corrupted_residue_drops,
            self.adversary_drops,
            self.byzantine_misforwards,
            self.byzantine_corruptions,
            self.byzantine_drops,
            self.link_failures,
            self.link_repairs,
            self.recovered_flows,
            self.mean_recovery_latency_s,
        )
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed of the attack trace — a function of `(topology, attack,
/// intensity)` and the base seed ONLY, so every scheme in a cell faces
/// the identical trace.
fn attack_seed(cfg: &AdversaryConfig, topo: &str, attack: AttackKind, n: u32) -> u64 {
    splitmix64(cfg.seed ^ fnv1a(&format!("{topo}/{attack}/{n}")))
}

/// Seed of one scheme's simulation (adds the scheme to the key so e.g.
/// HP's random walk and PathSplicing's slices draw independent streams).
fn sim_seed(cfg: &AdversaryConfig, topo: &str, attack: AttackKind, n: u32, scheme: &str) -> u64 {
    splitmix64(cfg.seed ^ fnv1a(&format!("{topo}/{attack}/{n}/{scheme}")))
}

/// All campaigns start here: flows are warmed up, then the attack lands
/// mid-traffic.
const ATTACK_START: SimTime = SimTime(10_000_000);
/// One campaign failure every 4 ms.
const CAMPAIGN_INTERVAL: SimTime = SimTime(4_000_000);
/// Churn runs for 30 ms past the attack start.
const CHURN_HORIZON: SimTime = SimTime(30_000_000);
/// Mean Poisson gap between outages of one churned link.
const CHURN_MEAN_GAP: SimTime = SimTime(6_000_000);
/// Mean Poisson outage duration.
const CHURN_MEAN_DOWNTIME: SimTime = SimTime(3_000_000);

/// Builds the link-level fault plan of one attack trace, or `None` for
/// the Byzantine attacks (which fail no links).
fn attack_plan(topo: &Topology, attack: AttackKind, n: u32, plan_seed: u64) -> Option<FaultPlan> {
    let ranked = analysis::ranked_links(topo);
    let count = (n as usize).min(ranked.len());
    match attack {
        AttackKind::TargetedLinks => Some(FaultPlan::new(plan_seed).campaign(
            ranked[..count].to_vec(),
            ATTACK_START,
            CAMPAIGN_INTERVAL,
        )),
        AttackKind::RandomLinks => {
            // Matched intensity: same pool, same count, same schedule —
            // only the link choice differs (uniform, from the plan seed).
            let mut pool = ranked;
            let mut rng = StdRng::seed_from_u64(plan_seed);
            pool.shuffle(&mut rng);
            pool.truncate(count);
            Some(FaultPlan::new(plan_seed).campaign(pool, ATTACK_START, CAMPAIGN_INTERVAL))
        }
        AttackKind::RollingChurn => {
            let churned = (2 * n as usize).min(ranked.len());
            Some(FaultPlan::new(plan_seed).churn(
                ranked[..churned].to_vec(),
                ATTACK_START,
                CHURN_HORIZON,
                CHURN_MEAN_GAP,
                CHURN_MEAN_DOWNTIME,
            ))
        }
        _ => None,
    }
}

/// The Byzantine placement of one attack trace: the `n` highest-load
/// core switches, all running the attack's behavior.
fn byzantine_set(topo: &Topology, attack: AttackKind, n: u32) -> Vec<(NodeId, Behavior)> {
    let Some(behavior) = attack.byzantine_behavior() else {
        return Vec::new();
    };
    let ranked = analysis::ranked_core_switches(topo);
    ranked
        .into_iter()
        .take(n as usize)
        .map(|node| (node, behavior))
        .collect()
}

/// Fault-free shortest-path core hops of each flow — the stretch
/// denominator (edge hosts don't forward, so a path of `len` nodes
/// crosses `len - 2` core switches).
fn nominal_hops(topo: &Topology, flows: &[(NodeId, NodeId)]) -> Vec<u64> {
    flows
        .iter()
        .map(|&(src, dst)| {
            let path = paths::bfs_shortest_path(topo, src, dst).expect("flow pair connected");
            path.len().saturating_sub(2) as u64
        })
        .collect()
}

fn drive(sim: &mut Sim, flows: &[(NodeId, NodeId)], cfg: &AdversaryConfig) {
    for i in 0..cfg.probes {
        sim.run_until(SimTime(i * cfg.gap.as_nanos()));
        for (f, &(src, dst)) in flows.iter().enumerate() {
            sim.inject(src, dst, FlowId(f as u32), i, PacketKind::Probe, 500);
        }
    }
    sim.run_to_quiescence();
}

/// Runs one `(topology, attack, intensity, scheme)` point. The fault
/// plan and Byzantine placement derive from the attack trace seed
/// (scheme-independent); only the simulation seed knows the scheme.
pub fn run_point(
    topo: &Topology,
    topo_name: &'static str,
    flows: &[(NodeId, NodeId)],
    attack: AttackKind,
    intensity: u32,
    scheme: SchemeSpec,
    cfg: &AdversaryConfig,
) -> AdversaryPoint {
    let plan_seed = attack_seed(cfg, topo_name, attack, intensity);
    let run_seed = sim_seed(cfg, topo_name, attack, intensity, &scheme.label());
    let plan = attack_plan(topo, attack, intensity, plan_seed);
    let byz = byzantine_set(topo, attack, intensity);
    let obs = crate::obs::RunObs::begin();
    let (stats, recovered_flows, mean_recovery_latency_s) = match scheme {
        SchemeSpec::Kar {
            technique,
            protection,
        } => {
            let protection = match protection {
                "none" => Protection::None,
                "full" => Protection::AutoFull,
                other => unreachable!("unknown protection level {other}"),
            };
            let mut builder = KarNetwork::builder(topo, technique)
                .seed(run_seed)
                .ttl(255)
                .detection_delay(cfg.detection)
                .obs(obs.handle.clone());
            if let Some(profiler) = &obs.profiler {
                builder = builder.profiler(profiler.clone());
            }
            for &(node, behavior) in &byz {
                builder = builder.byzantine(node, behavior);
            }
            let mut net = builder
                .recovery(RecoveryConfig {
                    notification_delay: cfg.notification,
                    protection: Protection::None,
                })
                .build();
            let log = net.recovery_log().expect("recovery enabled");
            for &(src, dst) in flows {
                net.encode(&EncodeRequest::new(src, dst).with_protection(protection.clone()))
                    .expect("route installs");
            }
            let mut sim = net.into_sim();
            if let Some(plan) = &plan {
                plan.apply(&mut sim);
            }
            drive(&mut sim, flows, cfg);
            let log = log.lock().expect("recovery log lock");
            (
                sim.stats().clone(),
                log.flows.len(),
                log.mean_recovery_latency_s(),
            )
        }
        SchemeSpec::Table(table) => {
            let endpoints: Vec<NodeId> = flows.iter().flat_map(|&(s, d)| [s, d]).collect();
            let mut sim = Sim::new(
                topo,
                table.forwarder(topo, &endpoints, run_seed),
                Box::new(TableEdge),
                SimConfig {
                    seed: run_seed,
                    default_ttl: 255,
                    detection_delay: cfg.detection,
                    ..SimConfig::default()
                },
            );
            sim.attach_obs(&obs.handle);
            for &(node, behavior) in &byz {
                sim.set_behavior(node, behavior);
            }
            if let Some(plan) = &plan {
                plan.apply(&mut sim);
            }
            drive(&mut sim, flows, cfg);
            (sim.stats().clone(), 0, f64::NAN)
        }
    };
    obs.submit(
        &format!(
            "fig_adversary/{topo_name}/{}/n{intensity}/{}",
            attack.label(),
            scheme.label()
        ),
        topo,
    );
    let nominals = nominal_hops(topo, flows);
    let nominal_total: u64 = flows
        .iter()
        .enumerate()
        .map(|(f, _)| {
            let delivered = stats
                .flows
                .get(&FlowId(f as u32))
                .map_or(0, |fs| fs.delivered_pkts);
            delivered * nominals[f]
        })
        .sum();
    AdversaryPoint {
        topo: topo_name,
        attack,
        intensity,
        scheme: scheme.label(),
        injected: stats.injected,
        delivered: stats.delivered,
        dropped: stats.dropped(),
        reachability: stats.delivery_ratio(),
        stretch: stats.total_hops as f64 / nominal_total as f64,
        corrupted_residue_drops: stats.dropped_for(DropReason::CorruptedResidue),
        adversary_drops: stats.dropped_for(DropReason::AdversaryDrop),
        byzantine_misforwards: stats.byzantine_misforwards,
        byzantine_corruptions: stats.byzantine_corruptions,
        byzantine_drops: stats.byzantine_drops,
        link_failures: stats.link_failures,
        link_repairs: stats.link_repairs,
        recovered_flows,
        mean_recovery_latency_s,
    }
}

/// The flow set of one topology: every attack runs the same multi-flow
/// workload so reachability aggregates over independent paths.
pub fn flow_set(topo: &Topology, topo_name: &str) -> Vec<(NodeId, NodeId)> {
    let pairs: &[(&str, &str)] = match topo_name {
        "topo15" => &[
            ("AS1", "AS3"),
            ("AS3", "AS1"),
            ("AS1", "AS2"),
            ("AS2", "AS3"),
        ],
        "rnp28" => &[
            ("E_BV", "E_SP"),
            ("E_SP", "E_BV"),
            ("E_BH", "E_113"),
            ("E_113", "E_BH"),
        ],
        other => unreachable!("unknown topology {other}"),
    };
    pairs
        .iter()
        .map(|&(s, d)| (topo.expect(s), topo.expect(d)))
        .collect()
}

/// Runs the attack × intensity × scheme grid on one topology across
/// `jobs` workers (byte-identical results at any job count).
pub fn run_topology(
    topo: &Topology,
    topo_name: &'static str,
    cfg: &AdversaryConfig,
    jobs: usize,
) -> Vec<AdversaryPoint> {
    let flows = flow_set(topo, topo_name);
    let grid: Vec<(AttackKind, u32, SchemeSpec)> = AttackKind::ALL
        .into_iter()
        .flat_map(|a| {
            cfg.intensities
                .iter()
                .flat_map(move |&n| schemes().into_iter().map(move |s| (a, n, s)))
        })
        .collect();
    run_map(&grid, jobs, |&(attack, intensity, scheme)| {
        run_point(topo, topo_name, &flows, attack, intensity, scheme, cfg)
    })
}

/// Runs the full suite on the paper's two topologies.
pub fn run(cfg: &AdversaryConfig, jobs: usize) -> Vec<AdversaryPoint> {
    let mut out = run_topology(&topo15::build(), "topo15", cfg, jobs);
    out.extend(run_topology(&rnp28::build(), "rnp28", cfg, jobs));
    out
}

/// Mean reachability of the targeted campaign vs its matched-intensity
/// random control, per `(topology, intensity)` — positive `gap` means
/// the targeted attack degrades reachability faster.
#[derive(Debug, Clone, PartialEq)]
pub struct GapReport {
    /// Topology name.
    pub topo: &'static str,
    /// Attack intensity.
    pub intensity: u32,
    /// Mean reachability under [`AttackKind::TargetedLinks`].
    pub targeted: f64,
    /// Mean reachability under [`AttackKind::RandomLinks`].
    pub random: f64,
    /// `random - targeted`.
    pub gap: f64,
}

/// Computes the targeted-vs-random gap over all schemes of each
/// `(topology, intensity)` cell present in `points`.
pub fn targeted_vs_random(points: &[AdversaryPoint]) -> Vec<GapReport> {
    let mut keys: Vec<(&'static str, u32)> = points
        .iter()
        .filter(|p| p.attack == AttackKind::TargetedLinks)
        .map(|p| (p.topo, p.intensity))
        .collect();
    keys.dedup();
    keys.sort();
    keys.dedup();
    let mean = |topo: &str, n: u32, attack: AttackKind| -> f64 {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| p.topo == topo && p.intensity == n && p.attack == attack)
            .map(|p| p.reachability)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    keys.into_iter()
        .map(|(topo, n)| {
            let targeted = mean(topo, n, AttackKind::TargetedLinks);
            let random = mean(topo, n, AttackKind::RandomLinks);
            GapReport {
                topo,
                intensity: n,
                targeted,
                random,
                gap: random - targeted,
            }
        })
        .collect()
}

/// Renders the grid and gap summary as markdown tables.
pub fn render(points: &[AdversaryPoint], gaps: &[GapReport]) -> String {
    let mut out = String::from(
        "Adversarial & churn suite — reachability under attack\n\
         | topo | attack | n | scheme | delivered | reach | stretch | byz (misfwd/corrupt/drop) | corrupt detected | failures/repairs | recovered | mean recovery |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&row(&[
            p.topo.to_string(),
            p.attack.label().to_string(),
            format!("{}", p.intensity),
            p.scheme.clone(),
            format!("{}/{}", p.delivered, p.injected),
            format!("{:.3}", p.reachability),
            if p.stretch.is_finite() {
                format!("{:.2}", p.stretch)
            } else {
                "-".to_string()
            },
            format!(
                "{}/{}/{}",
                p.byzantine_misforwards, p.byzantine_corruptions, p.adversary_drops
            ),
            format!("{}", p.corrupted_residue_drops),
            format!("{}/{}", p.link_failures, p.link_repairs),
            format!("{}", p.recovered_flows),
            if p.recovered_flows == 0 {
                "-".to_string()
            } else {
                format!("{:.2} ms", p.mean_recovery_latency_s * 1e3)
            },
        ]));
        out.push('\n');
    }
    out.push_str(
        "\nTargeted vs random campaigns (mean reachability over all schemes)\n\
         | topo | n | targeted | random | gap |\n\
         |---|---|---|---|---|\n",
    );
    for g in gaps {
        out.push_str(&row(&[
            g.topo.to_string(),
            format!("{}", g.intensity),
            format!("{:.3}", g.targeted),
            format!("{:.3}", g.random),
            format!("{:+.3}", g.gap),
        ]));
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes the sweep as the `BENCH_adversary.json` document. No
/// wall-clock fields: a pure function of the configuration,
/// byte-identical across runs and machines, committed at the repository
/// root so shifts in the attack-resilience frontier show up in review
/// diffs.
pub fn to_json(points: &[AdversaryPoint], gaps: &[GapReport]) -> String {
    let mut o = String::from("{\n\"experiment\":\"adversary\",\n\"cells\":[\n");
    for (i, p) in points.iter().enumerate() {
        o.push('{');
        write!(
            o,
            "\"topo\":\"{}\",\"attack\":\"{}\",\"intensity\":{},\"scheme\":\"{}\",\
             \"injected\":{},\"delivered\":{},\"dropped\":{},\"reachability\":{},\
             \"stretch\":{},\"corrupted_residue_drops\":{},\"adversary_drops\":{},\
             \"byzantine_misforwards\":{},\"byzantine_corruptions\":{},\
             \"byzantine_drops\":{},\
             \"link_failures\":{},\"link_repairs\":{},\"recovered_flows\":{},\
             \"mean_recovery_latency_s\":{}",
            p.topo,
            p.attack,
            p.intensity,
            json_escape(&p.scheme),
            p.injected,
            p.delivered,
            p.dropped,
            json_f64(p.reachability),
            json_f64(p.stretch),
            p.corrupted_residue_drops,
            p.adversary_drops,
            p.byzantine_misforwards,
            p.byzantine_corruptions,
            p.byzantine_drops,
            p.link_failures,
            p.link_repairs,
            p.recovered_flows,
            json_f64(p.mean_recovery_latency_s),
        )
        .unwrap();
        o.push('}');
        if i + 1 < points.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("],\n\"targeted_vs_random\":[\n");
    for (i, g) in gaps.iter().enumerate() {
        write!(
            o,
            "{{\"topo\":\"{}\",\"intensity\":{},\"targeted\":{},\"random\":{},\"gap\":{}}}",
            g.topo,
            g.intensity,
            json_f64(g.targeted),
            json_f64(g.random),
            json_f64(g.gap),
        )
        .unwrap();
        if i + 1 < gaps.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("]}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A grid small enough for debug-mode CI: one intensity, topo15.
    fn quick() -> AdversaryConfig {
        AdversaryConfig {
            probes: 40,
            intensities: vec![1],
            ..AdversaryConfig::default()
        }
    }

    #[test]
    fn grid_covers_attacks_and_schemes() {
        let topo = topo15::build();
        let cfg = quick();
        let points = run_topology(&topo, "topo15", &cfg, 2);
        assert_eq!(points.len(), AttackKind::ALL.len() * schemes().len());
        for p in &points {
            assert_eq!(p.injected, 40 * 4, "{}", p.digest());
            assert_eq!(p.injected, p.delivered + p.dropped, "{}", p.digest());
            assert!((0.0..=1.0).contains(&p.reachability), "{}", p.digest());
        }
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_serial() {
        let topo = topo15::build();
        let cfg = quick();
        let serial = run_topology(&topo, "topo15", &cfg, 1);
        let parallel = run_topology(&topo, "topo15", &cfg, 4);
        let s: Vec<String> = serial.iter().map(AdversaryPoint::digest).collect();
        let p: Vec<String> = parallel.iter().map(AdversaryPoint::digest).collect();
        assert_eq!(s, p);
    }

    #[test]
    fn byzantine_attacks_register_on_the_right_counters() {
        let topo = topo15::build();
        let flows = flow_set(&topo, "topo15");
        let cfg = quick();
        let nip = SchemeSpec::Kar {
            technique: DeflectionTechnique::Nip,
            protection: "none",
        };
        let drop = run_point(&topo, "topo15", &flows, AttackKind::ByzDrop, 1, nip, &cfg);
        assert!(drop.adversary_drops > 0, "{}", drop.digest());
        assert_eq!(drop.adversary_drops, drop.byzantine_drops);
        // Deflecting techniques absorb a tampered residue as a
        // deflection, so corruption surfaces as path stretch, not drops.
        let corrupt = run_point(
            &topo,
            "topo15",
            &flows,
            AttackKind::ByzCorrupt,
            1,
            nip,
            &cfg,
        );
        assert!(corrupt.byzantine_corruptions > 0, "{}", corrupt.digest());
        assert!(
            corrupt.stretch > 1.5,
            "corruption under NIP shows up as detours: {}",
            corrupt.digest()
        );
        // The drop-on-failure plane is where the residue range check
        // actually classifies tampering (DropReason::CorruptedResidue).
        let plain = SchemeSpec::Kar {
            technique: DeflectionTechnique::None,
            protection: "none",
        };
        let caught = run_point(
            &topo,
            "topo15",
            &flows,
            AttackKind::ByzCorrupt,
            1,
            plain,
            &cfg,
        );
        assert!(
            caught.corrupted_residue_drops > 0,
            "tampered residues must trip the range check: {}",
            caught.digest()
        );
        let misfwd = run_point(
            &topo,
            "topo15",
            &flows,
            AttackKind::ByzMisforward,
            1,
            nip,
            &cfg,
        );
        assert!(misfwd.byzantine_misforwards > 0, "{}", misfwd.digest());
    }

    #[test]
    fn attack_traces_are_scheme_independent() {
        let topo = topo15::build();
        let cfg = quick();
        let seed = attack_seed(&cfg, "topo15", AttackKind::TargetedLinks, 2);
        let a = attack_plan(&topo, AttackKind::TargetedLinks, 2, seed).unwrap();
        let b = attack_plan(&topo, AttackKind::TargetedLinks, 2, seed).unwrap();
        assert_eq!(a.compile(&topo), b.compile(&topo));
        // Random campaigns match the targeted intensity: same number of
        // failure events on the same schedule.
        let r = attack_plan(&topo, AttackKind::RandomLinks, 2, seed).unwrap();
        let targeted = a.compile(&topo);
        let random = r.compile(&topo);
        assert_eq!(targeted.len(), random.len());
        for (t, r) in targeted.iter().zip(random.iter()) {
            assert_eq!(t.at, r.at, "matched schedule");
        }
    }

    #[test]
    fn gap_report_covers_every_cell_once() {
        let topo = topo15::build();
        let cfg = quick();
        let points = run_topology(&topo, "topo15", &cfg, 2);
        let gaps = targeted_vs_random(&points);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].topo, "topo15");
        assert_eq!(gaps[0].intensity, 1);
        assert!((gaps[0].gap - (gaps[0].random - gaps[0].targeted)).abs() < 1e-12);
        let json = to_json(&points, &gaps);
        assert!(json.contains("\"targeted_vs_random\":["));
        assert!(json.contains("\"experiment\":\"adversary\""));
        assert!(!render(&points, &gaps).is_empty());
    }
}
