//! Fig. 5: TCP throughput vs failure location × protection level ×
//! deflection technique on the 15-node network.
//!
//! Paper protocol: for each failure location (SW10-SW7, SW7-SW13,
//! SW13-SW29), protection level (unprotected / partial / full) and
//! technique (AVP, NIP), run iperf 30 × 5 s with the failure in place
//! and report mean ± 95% CI. Expected shape: full protection is best
//! everywhere (≈140 of 200 Mbit/s); partial ≈ full except for the
//! SW10-SW7 failure, where only 1/3 of deflected packets are driven
//! (≈80 vs ≈140 Mbit/s for NIP).

use crate::harness::{FailureWindow, TcpRun};
use crate::runner;
use crate::telemetry::{self, RunRecord};
use kar::{DeflectionTechnique, EncodingCache, Protection};
use kar_simnet::SimTime;
use kar_tcp::SampleStats;
use kar_topology::{topo15, Topology};
use std::sync::Arc;

/// Protection level labels of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionLevel {
    /// No driven-deflection segments.
    Unprotected,
    /// The Fig. 3 partial segments.
    Partial,
    /// Partial plus the SW17/SW37/SW41 branch.
    Full,
}

impl ProtectionLevel {
    /// All levels in figure order.
    pub const ALL: [ProtectionLevel; 3] = [
        ProtectionLevel::Unprotected,
        ProtectionLevel::Partial,
        ProtectionLevel::Full,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            ProtectionLevel::Unprotected => "Unprotected",
            ProtectionLevel::Partial => "Partial",
            ProtectionLevel::Full => "Full",
        }
    }

    /// Resolves to concrete protection segments on topo15.
    pub fn protection(self, topo: &kar_topology::Topology) -> Protection {
        match self {
            ProtectionLevel::Unprotected => Protection::None,
            ProtectionLevel::Partial => {
                Protection::Segments(topo15::protection_pairs(topo, &topo15::PARTIAL_PROTECTION))
            }
            ProtectionLevel::Full => {
                let mut segs = topo15::protection_pairs(topo, &topo15::PARTIAL_PROTECTION);
                segs.extend(topo15::protection_pairs(
                    topo,
                    &topo15::FULL_EXTRA_PROTECTION,
                ));
                Protection::Segments(segs)
            }
        }
    }
}

/// One bar of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Cell {
    /// Failure location, e.g. `"SW10-SW7"`.
    pub failure: String,
    /// Protection level.
    pub level: ProtectionLevel,
    /// Deflection technique.
    pub technique: DeflectionTechnique,
    /// Throughput statistics over the repetitions (Mbit/s).
    pub stats: SampleStats,
}

/// Builds the flat spec list of the Fig. 5 grid, in cell-major order
/// (`runs` consecutive specs per cell), plus the cell coordinates of
/// every spec. One shared encoding cache serves the whole sweep — each
/// `(protection level, direction)` route is sealed once and reused by
/// the other `3 × runs - 1` runs that need it.
pub fn spec_set(
    topo: &Topology,
    runs: usize,
    secs: u64,
    base_seed: u64,
) -> (Vec<TcpRun<'_>>, Vec<String>) {
    let primary = topo15::primary_route(topo);
    let cache = Arc::new(EncodingCache::new());
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for (a, b) in topo15::FAILURE_LOCATIONS {
        let link = topo.expect_link(a, b);
        for level in ProtectionLevel::ALL {
            for technique in [DeflectionTechnique::Avp, DeflectionTechnique::Nip] {
                for r in 0..runs {
                    let label = format!("{a}-{b}/{}/{technique}/r{r}", level.label());
                    specs.push(TcpRun {
                        technique,
                        protection: level.protection(topo),
                        duration: SimTime::from_secs(secs),
                        failure: Some(FailureWindow {
                            link,
                            down: SimTime::ZERO,
                            up: SimTime::from_secs(secs + 1), // never repaired
                        }),
                        seed: base_seed + r as u64 * 7919,
                        // Same shared-softswitch calibration as Fig. 4.
                        switch_service: Some(SimTime::from_micros(7)),
                        cache: Some(cache.clone()),
                        label: format!("fig5/{label}"),
                        ..TcpRun::new(topo, primary.clone())
                    });
                    labels.push(label);
                }
            }
        }
    }
    (specs, labels)
}

/// Runs the full grid: `runs` repetitions of `secs`-second transfers per
/// cell, on `jobs` worker threads (results are independent of `jobs`).
pub fn run_jobs(runs: usize, secs: u64, base_seed: u64, jobs: usize) -> Vec<Fig5Cell> {
    let topo = topo15::build();
    let (specs, labels) = spec_set(&topo, runs, secs, base_seed);
    let results = runner::run_all(&specs, jobs);
    let records: Vec<RunRecord> = results
        .iter()
        .enumerate()
        .map(|(i, res)| RunRecord::new("fig5", &labels[i], i, &specs[i], res))
        .collect();
    telemetry::emit(&records);
    let mut cells = Vec::new();
    let mut next = results.iter();
    for (a, b) in topo15::FAILURE_LOCATIONS {
        for level in ProtectionLevel::ALL {
            for technique in [DeflectionTechnique::Avp, DeflectionTechnique::Nip] {
                let samples: Vec<f64> = (0..runs)
                    .map(|_| {
                        next.next()
                            .expect("one result per spec")
                            .meter
                            .mean_mbps(SimTime::ZERO, SimTime::from_secs(secs))
                    })
                    .collect();
                cells.push(Fig5Cell {
                    failure: format!("{a}-{b}"),
                    level,
                    technique,
                    stats: SampleStats::from_samples(&samples),
                });
            }
        }
    }
    cells
}

/// Serial [`run_jobs`].
pub fn run(runs: usize, secs: u64, base_seed: u64) -> Vec<Fig5Cell> {
    run_jobs(runs, secs, base_seed, 1)
}

/// Renders the grid as a table with 95% confidence intervals.
pub fn render(cells: &[Fig5Cell]) -> String {
    let mut out = String::from(
        "Fig. 5 — TCP throughput (Mbit/s) vs failure location, protection, technique\n\
         | Failure | Protection | Technique | Mean | ±95% CI | n |\n|---|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {} |\n",
            c.failure,
            c.level.label(),
            c.technique,
            c.stats.mean,
            c.stats.ci95,
            c.stats.n
        ));
    }
    out
}

/// Fetches a cell by coordinates.
pub fn cell<'a>(
    cells: &'a [Fig5Cell],
    failure: &str,
    level: ProtectionLevel,
    technique: DeflectionTechnique,
) -> &'a Fig5Cell {
    cells
        .iter()
        .find(|c| c.failure == failure && c.level == level && c.technique == technique)
        .expect("cell exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down grid (2 runs × 3 s): the paper's two headline
    /// observations must hold.
    #[test]
    fn paper_observations_hold_scaled_down() {
        let cells = run(2, 3, 11);
        assert_eq!(cells.len(), 3 * 3 * 2);
        let nip = DeflectionTechnique::Nip;
        // Observation 1: full protection beats unprotected everywhere.
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let f = format!("{a}-{b}");
            let full = cell(&cells, &f, ProtectionLevel::Full, nip).stats.mean;
            let unprot = cell(&cells, &f, ProtectionLevel::Unprotected, nip)
                .stats
                .mean;
            assert!(
                full > unprot * 0.9,
                "{f}: full {full} should not lose to unprotected {unprot}"
            );
            assert!(full > 40.0, "{f}: full protection keeps TCP alive: {full}");
        }
        // Observation 2: for SW10-SW7 (the 2/3-uncovered failure), full
        // protection clearly beats partial; for the enclosed failures the
        // two are comparable.
        let full_107 = cell(&cells, "SW10-SW7", ProtectionLevel::Full, nip)
            .stats
            .mean;
        let part_107 = cell(&cells, "SW10-SW7", ProtectionLevel::Partial, nip)
            .stats
            .mean;
        assert!(
            full_107 > part_107 * 1.2,
            "full ({full_107}) must clearly beat partial ({part_107}) for SW10-SW7"
        );
        let full_713 = cell(&cells, "SW7-SW13", ProtectionLevel::Full, nip)
            .stats
            .mean;
        let part_713 = cell(&cells, "SW7-SW13", ProtectionLevel::Partial, nip)
            .stats
            .mean;
        assert!(
            (part_713 - full_713).abs() < full_713 * 0.4,
            "partial ({part_713}) ≈ full ({full_713}) for the enclosed SW7-SW13 failure"
        );
    }

    #[test]
    fn render_contains_grid() {
        let cells = run(1, 2, 3);
        let text = render(&cells);
        assert!(text.contains("| SW10-SW7 | Unprotected | AVP |"));
        assert!(text.contains("| SW13-SW29 | Full | NIP |"));
    }
}
