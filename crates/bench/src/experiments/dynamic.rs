//! Dynamic fault processes under the failure-reactive controller — the
//! experiment behind the `fig_dynamic` binary.
//!
//! The paper's evaluation fails one link, once, forever. Real outages
//! repair, flap, and take whole SRLGs down together. This experiment
//! drives the paper's topo15 scenario through three declarative
//! [`FaultPlan`]s — a fail-and-repair window, a flap train, and a node
//! crash — with a nonzero detection delay and the recovery loop of
//! [`kar::recovery`] enabled, and reports per technique:
//!
//! * delivery and drops over the whole dynamic episode,
//! * **packets saved by deflection** (delivered packets that deflected
//!   at least once — the packets a drop-on-failure scheme loses),
//! * how many flows the controller re-encoded and the **mean recovery
//!   latency** from failure detection to recovered traffic.
//!
//! The grid fans out through [`crate::runner::run_map`], and every
//! point carries a digest so `--jobs N` determinism is testable.

use crate::harness::row;
use crate::runner::run_map;
use kar::recovery::RecoveryConfig;
use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FaultPlan, FlowId, PacketKind, SimTime};
use kar_topology::{topo15, Topology};

/// A named dynamic fault process (a plan builder, so it can be compiled
/// against any topology instance).
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Builds the fault plan for this scenario.
    pub build: fn(&Topology) -> FaultPlan,
}

/// The three dynamic processes on topo15's primary scenario. All faults
/// start at 10 ms and the dynamics are over by 30 ms; traffic runs to
/// 50 ms, so every scenario also measures post-repair behavior.
pub fn scenarios() -> Vec<Scenario> {
    fn repair(topo: &Topology) -> FaultPlan {
        FaultPlan::new(11).fail_for(
            topo.expect_link("SW7", "SW13"),
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        )
    }
    fn flap(topo: &Topology) -> FaultPlan {
        FaultPlan::new(11).flap(
            topo.expect_link("SW7", "SW13"),
            SimTime::from_millis(10),
            SimTime::from_millis(5),
            0.5,
            4,
        )
    }
    fn node_crash(topo: &Topology) -> FaultPlan {
        FaultPlan::new(11).node_crash(
            topo.expect("SW7"),
            SimTime::from_millis(10),
            Some(SimTime::from_millis(20)),
        )
    }
    vec![
        Scenario {
            name: "repair",
            build: repair,
        },
        Scenario {
            name: "flap",
            build: flap,
        },
        Scenario {
            name: "node-crash",
            build: node_crash,
        },
    ]
}

/// Knobs of one dynamic run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// Probes injected (one per `gap`).
    pub probes: u64,
    /// Inter-injection gap.
    pub gap: SimTime,
    /// Data-plane failure-detection delay.
    pub detection: SimTime,
    /// Controller notification delay on top of detection.
    pub notification: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            probes: 100,
            gap: SimTime::from_micros(500),
            detection: SimTime::from_micros(200),
            notification: SimTime::from_millis(1),
            seed: 11,
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicPoint {
    /// Scenario name.
    pub scenario: String,
    /// Deflection technique.
    pub technique: DeflectionTechnique,
    /// Probes injected.
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Probes dropped (all reasons).
    pub dropped: u64,
    /// Delivered probes that were deflected at least once — the packets
    /// saved by deflection.
    pub saved_by_deflection: u64,
    /// Physical link up→down transitions the engine processed.
    pub link_failures: u64,
    /// Physical down→up transitions.
    pub link_repairs: u64,
    /// Flows the controller re-encoded onto a detour.
    pub recovered_flows: usize,
    /// Mean failure-detection → recovered-traffic latency in seconds.
    pub mean_recovery_latency_s: f64,
}

impl DynamicPoint {
    /// Canonical serialization of every simulated quantity; two runs of
    /// the same grid point are deterministic exactly when digests match
    /// (the `--jobs` conformance property).
    pub fn digest(&self) -> String {
        format!(
            "{}/{} injected={} delivered={} dropped={} saved={} failures={} repairs={} recovered={} latency={:?}",
            self.scenario,
            self.technique.label(),
            self.injected,
            self.delivered,
            self.dropped,
            self.saved_by_deflection,
            self.link_failures,
            self.link_repairs,
            self.recovered_flows,
            self.mean_recovery_latency_s,
        )
    }
}

/// Runs one `(scenario, technique)` point on topo15's AS1 → AS3 flow.
pub fn run_point(
    topo: &Topology,
    scenario: Scenario,
    technique: DeflectionTechnique,
    cfg: DynamicConfig,
) -> DynamicPoint {
    let src = topo.expect("AS1");
    let dst = topo.expect("AS3");
    let obs = crate::obs::RunObs::begin();
    let mut builder = KarNetwork::builder(topo, technique)
        .seed(cfg.seed)
        .ttl(255)
        .detection_delay(cfg.detection)
        .obs(obs.handle.clone());
    if let Some(profiler) = &obs.profiler {
        builder = builder.profiler(profiler.clone());
    }
    let mut net = builder
        .recovery(RecoveryConfig {
            notification_delay: cfg.notification,
            protection: Protection::None,
        })
        .build();
    let log = net.recovery_log().expect("recovery enabled");
    net.encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
        .expect("route installs");
    let mut sim = net.into_sim();
    (scenario.build)(topo).apply(&mut sim);
    for i in 0..cfg.probes {
        sim.run_until(SimTime(i * cfg.gap.as_nanos()));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    obs.submit(
        &format!("fig_dynamic/{}/{}", scenario.name, technique.label()),
        topo,
    );
    let stats = sim.stats();
    let log = log.lock().expect("recovery log lock");
    DynamicPoint {
        scenario: scenario.name.to_string(),
        technique,
        injected: stats.injected,
        delivered: stats.delivered,
        dropped: stats.dropped(),
        saved_by_deflection: stats.deflected_delivered,
        link_failures: stats.link_failures,
        link_repairs: stats.link_repairs,
        recovered_flows: log.flows.len(),
        mean_recovery_latency_s: log.mean_recovery_latency_s(),
    }
}

/// Runs the full scenario × technique grid on topo15 across `jobs`
/// workers (byte-identical results at any job count).
pub fn run(cfg: DynamicConfig, jobs: usize) -> Vec<DynamicPoint> {
    let topo = topo15::build();
    let grid: Vec<(Scenario, DeflectionTechnique)> = scenarios()
        .into_iter()
        .flat_map(|s| DeflectionTechnique::ALL.into_iter().map(move |t| (s, t)))
        .collect();
    run_map(&grid, jobs, |&(scenario, technique)| {
        run_point(&topo, scenario, technique, cfg)
    })
}

/// Renders the grid as a table.
pub fn render(points: &[DynamicPoint]) -> String {
    let mut out = String::from(
        "Dynamic faults with controller recovery (topo15, AS1 → AS3)\n\
         | scenario | technique | delivered | dropped | saved by deflection | failures/repairs | recovered flows | mean recovery |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&row(&[
            p.scenario.clone(),
            p.technique.label().to_string(),
            format!("{}/{}", p.delivered, p.injected),
            format!("{}", p.dropped),
            format!("{}", p.saved_by_deflection),
            format!("{}/{}", p.link_failures, p.link_repairs),
            format!("{}", p.recovered_flows),
            if p.recovered_flows == 0 {
                "-".to_string()
            } else {
                format!("{:.2} ms", p.mean_recovery_latency_s * 1e3)
            },
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DynamicConfig {
        DynamicConfig {
            probes: 60,
            ..DynamicConfig::default()
        }
    }

    #[test]
    fn grid_covers_scenarios_and_techniques() {
        let points = run(quick(), 2);
        assert_eq!(points.len(), 3 * 4);
        for p in &points {
            assert_eq!(p.injected, 60);
            assert_eq!(p.injected, p.delivered + p.dropped, "{}", p.digest());
        }
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_serial() {
        let serial = run(quick(), 1);
        let parallel = run(quick(), 4);
        let s: Vec<String> = serial.iter().map(DynamicPoint::digest).collect();
        let p: Vec<String> = parallel.iter().map(DynamicPoint::digest).collect();
        assert_eq!(s, p);
    }

    #[test]
    fn nip_saves_packets_and_recovers_flows() {
        let topo = topo15::build();
        let repair = scenarios()[0];
        let nip = run_point(&topo, repair, DeflectionTechnique::Nip, quick());
        assert!(
            nip.saved_by_deflection > 0,
            "deflection carries the detection+notification window: {}",
            nip.digest()
        );
        assert_eq!(nip.recovered_flows, 1, "{}", nip.digest());
        assert!(
            nip.mean_recovery_latency_s >= 1e-3,
            "latency includes the 1 ms notification delay: {}",
            nip.digest()
        );
        assert_eq!(nip.link_failures, 1);
        assert_eq!(nip.link_repairs, 1);
        // Recovery rescues later packets even without deflection, but
        // the detection + notification window still costs deliveries.
        let none = run_point(&topo, repair, DeflectionTechnique::None, quick());
        assert_eq!(none.saved_by_deflection, 0);
        assert!(none.delivered < nip.delivered, "{}", none.digest());
    }

    #[test]
    fn flap_processes_every_transition() {
        let topo = topo15::build();
        let flap = scenarios()[1];
        let p = run_point(&topo, flap, DeflectionTechnique::Nip, quick());
        assert_eq!(p.link_failures, 4, "{}", p.digest());
        assert_eq!(p.link_repairs, 4, "{}", p.digest());
    }
}
