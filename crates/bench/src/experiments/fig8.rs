//! Fig. 8: the redundant-path worst case on the RNP backbone.
//!
//! Route SW41→SW73→SW107→SW113 with the parallel branch SW73–SW109–SW113
//! that KAR *cannot* encode as a second option (one residue per switch).
//! Protection SW71→SW17→SW41→SW73 forms a loop back to SW73: on a
//! SW73-SW107 failure, each pass through SW73 is a coin flip between
//! SW109 (delivery) and SW71 (another lap). The paper measures 54.8% of
//! nominal TCP throughput as the cost of those laps.

use crate::harness::{FailureWindow, TcpRun};
use crate::runner;
use crate::telemetry::{self, RunRecord};
use kar::{DeflectionTechnique, EncodingCache, Protection};
use kar_simnet::SimTime;
use kar_tcp::SampleStats;
use kar_topology::rnp28;
use std::sync::Arc;

/// Result of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// No-failure throughput statistics (Mbit/s).
    pub nominal: SampleStats,
    /// Throughput statistics with the SW73-SW107 failure.
    pub with_failure: SampleStats,
    /// `with_failure / nominal` (the paper reports 0.548).
    pub ratio: f64,
    /// Mean hops per delivered packet without failure.
    pub hops_nominal: f64,
    /// Mean hops per delivered packet with the failure (protection-loop
    /// laps show up here).
    pub hops_failure: f64,
}

/// Runs the experiment (`runs` repetitions of `secs`-second transfers
/// per case) on `jobs` worker threads; results are independent of
/// `jobs`.
pub fn run_jobs(runs: usize, secs: u64, base_seed: u64, jobs: usize) -> Fig8Result {
    let topo = rnp28::build();
    let primary: Vec<_> = rnp28::FIG8_ROUTE.iter().map(|n| topo.expect(n)).collect();
    let protection = Protection::Segments(
        rnp28::FIG8_PROTECTION
            .iter()
            .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
            .collect(),
    );
    let (fa, fb) = rnp28::FIG8_FAILURE;
    let failed = topo.expect_link(fa, fb);
    let cache = Arc::new(EncodingCache::new());
    let cases = [
        ("nominal", None),
        (
            "SW73-SW107",
            Some(FailureWindow {
                link: failed,
                down: SimTime::ZERO,
                up: SimTime::from_secs(secs + 1),
            }),
        ),
    ];
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for (name, failure) in cases {
        for r in 0..runs {
            specs.push(TcpRun {
                technique: DeflectionTechnique::Nip,
                protection: protection.clone(),
                duration: SimTime::from_secs(secs),
                failure,
                seed: base_seed + r as u64 * 15_485_863,
                ttl: 255, // protection loops need headroom
                // Same RNP shared-softswitch calibration as Fig. 7.
                switch_service: Some(SimTime::from_micros(20)),
                cache: Some(cache.clone()),
                label: format!("fig8/{name}/r{r}"),
                ..TcpRun::new(&topo, primary.clone())
            });
            labels.push(format!("{name}/r{r}"));
        }
    }
    let results = runner::run_all(&specs, jobs);
    let records: Vec<RunRecord> = results
        .iter()
        .enumerate()
        .map(|(i, res)| RunRecord::new("fig8", &labels[i], i, &specs[i], res))
        .collect();
    telemetry::emit(&records);
    let mut hops = [0.0f64; 2];
    let mut samples = [Vec::new(), Vec::new()];
    for (idx, case_results) in results.chunks(runs.max(1)).enumerate() {
        for res in case_results {
            hops[idx] += res.mean_hops / runs as f64;
            samples[idx].push(res.meter.mean_mbps(SimTime::ZERO, SimTime::from_secs(secs)));
        }
    }
    let nominal = SampleStats::from_samples(&samples[0]);
    let with_failure = SampleStats::from_samples(&samples[1]);
    Fig8Result {
        ratio: if nominal.mean > 0.0 {
            with_failure.mean / nominal.mean
        } else {
            0.0
        },
        nominal,
        with_failure,
        hops_nominal: hops[0],
        hops_failure: hops[1],
    }
}

/// Serial [`run_jobs`].
pub fn run(runs: usize, secs: u64, base_seed: u64) -> Fig8Result {
    run_jobs(runs, secs, base_seed, 1)
}

/// Renders the result with the paper's 54.8% reference point.
pub fn render(r: &Fig8Result) -> String {
    format!(
        "Fig. 8 — redundant-path worst case (route SW41→SW73→SW107→SW113, failure SW73-SW107)\n\
         | Case | Mean (Mbit/s) | ±95% CI | Mean hops |\n|---|---|---|---|\n\
         | no failure | {:.1} | {:.1} | {:.1} |\n\
         | SW73-SW107 failed | {:.1} | {:.1} | {:.1} |\n\
         ratio = {:.1}% of nominal (paper: 54.8%)\n",
        r.nominal.mean,
        r.nominal.ci95,
        r.hops_nominal,
        r.with_failure.mean,
        r.with_failure.ci95,
        r.hops_failure,
        r.ratio * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down: the protection loop must cost real throughput (well
    /// below nominal) without killing the flow, and must inflate hop
    /// counts.
    #[test]
    fn protection_loop_costs_throughput_not_delivery() {
        let r = run(2, 3, 9);
        assert!(
            r.nominal.mean > 60.0,
            "nominal ≈ 100 Mbit/s: {:?}",
            r.nominal
        );
        assert!(
            r.ratio > 0.1 && r.ratio < 0.95,
            "failure must cost real throughput: ratio {}",
            r.ratio
        );
        assert!(
            r.hops_failure > r.hops_nominal,
            "protection laps must inflate hops: {} vs {}",
            r.hops_failure,
            r.hops_nominal
        );
    }

    #[test]
    fn render_mentions_paper_reference() {
        let r = run(1, 2, 2);
        assert!(render(&r).contains("paper: 54.8%"));
    }
}
