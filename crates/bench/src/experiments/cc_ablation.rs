//! Congestion-control ablation: does the choice of Reno vs CUBIC (the
//! Linux default of the paper's era) change KAR's measured failure
//! reaction? Runs the Fig. 4 scenario (SW7-SW13 failure, NIP, partial
//! protection) under both algorithms.

use crate::harness::{run_tcp, FailureWindow, TcpRun};
use kar::{DeflectionTechnique, Protection};
use kar_simnet::SimTime;
use kar_tcp::CongestionControl;
use kar_topology::topo15;

/// One measured row.
#[derive(Debug, Clone, Copy)]
pub struct CcRow {
    /// Congestion-control algorithm.
    pub congestion: CongestionControl,
    /// Mean goodput before the failure (Mbit/s).
    pub before: f64,
    /// Mean goodput during the failure (Mbit/s).
    pub during: f64,
    /// Mean goodput after repair (Mbit/s).
    pub after: f64,
}

/// Runs both algorithms through a `pre`/`fail`/`post` second scenario.
pub fn run(pre: u64, fail: u64, post: u64, seed: u64) -> Vec<CcRow> {
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    let protection =
        Protection::Segments(topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION));
    let link = topo.expect_link("SW7", "SW13");
    let total = SimTime::from_secs(pre + fail + post);
    [CongestionControl::Reno, CongestionControl::Cubic]
        .into_iter()
        .map(|congestion| {
            let spec = TcpRun {
                technique: DeflectionTechnique::Nip,
                protection: protection.clone(),
                duration: total,
                failure: Some(FailureWindow {
                    link,
                    down: SimTime::from_secs(pre),
                    up: SimTime::from_secs(pre + fail),
                }),
                seed,
                congestion,
                switch_service: Some(SimTime::from_micros(7)),
                ..TcpRun::new(&topo, primary.clone())
            };
            let res = run_tcp(&spec);
            CcRow {
                congestion,
                before: res
                    .meter
                    .mean_mbps(SimTime::from_secs(1.min(pre)), SimTime::from_secs(pre)),
                during: res
                    .meter
                    .mean_mbps(SimTime::from_secs(pre + 1), SimTime::from_secs(pre + fail)),
                after: res
                    .meter
                    .mean_mbps(SimTime::from_secs(pre + fail + 1), total),
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[CcRow]) -> String {
    let mut out = String::from(
        "Congestion-control ablation — Fig. 4 scenario (NIP, partial protection)\n\
         | Algorithm | Before | During failure | After repair |\n|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:?} | {:.1} | {:.1} | {:.1} |\n",
            r.congestion, r.before, r.during, r.after
        ));
    }
    out.push_str(
        "\nThe failure-reaction story is robust to the congestion-control choice:\n\
         both algorithms saturate before, survive the failure via deflection, and\n\
         recover after repair.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_survive_the_failure() {
        let rows = run(3, 4, 3, 7);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.before > 120.0, "{r:?}");
            assert!(r.during > 20.0, "deflection keeps TCP alive: {r:?}");
            assert!(r.after > 100.0, "{r:?}");
        }
    }
}
