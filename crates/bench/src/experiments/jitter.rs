//! Jitter under deflection — the "disordering and jitter" goal of §3
//! measured directly with CBR traffic (no TCP dynamics in the way).
//!
//! For each deflection technique, a ~53 Mbit/s CBR flow crosses topo15
//! with full protection while SW10-SW7 is down; the sink reports
//! one-way delay, RFC 3550 jitter, reordering and loss.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, SimTime};
use kar_tcp::{CbrSender, CbrSink, JitterStats};
use kar_topology::topo15;

/// One measured row.
#[derive(Debug, Clone, Copy)]
pub struct JitterRow {
    /// Deflection technique.
    pub technique: DeflectionTechnique,
    /// Sink statistics.
    pub stats: JitterStats,
    /// Datagrams sent.
    pub sent: u64,
}

/// Runs the sweep: `packets` datagrams at 150 µs spacing per technique
/// (tight enough that the one-hop difference between protected branches
/// interleaves consecutive datagrams).
pub fn run(packets: u64, seed: u64) -> Vec<JitterRow> {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    DeflectionTechnique::ALL
        .iter()
        .map(|&technique| {
            let mut net = KarNetwork::builder(&topo, technique)
                .seed(seed)
                .ttl(255)
                .build();
            net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                .expect("route installs");
            let mut sim = net.into_sim();
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW10", "SW7"));
            let tx =
                CbrSender::new(as3, FlowId(1), SimTime::from_micros(150), 1000).with_limit(packets);
            sim.add_app(as1, Box::new(tx));
            let (rx, stats) = CbrSink::new(FlowId(1));
            sim.add_app(as3, Box::new(rx));
            sim.run_to_quiescence();
            let stats = *stats.borrow();
            JitterRow {
                technique,
                stats,
                sent: packets,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[JitterRow]) -> String {
    let mut out = String::from(
        "CBR jitter under a SW10-SW7 failure (full protection, ~53 Mbit/s offered)\n\
         | Technique | Delivered | Reordered | Mean delay (ms) | Jitter (ms) | Loss |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {}/{} | {} | {:.3} | {:.3} | {:.1}% |\n",
            r.technique,
            r.stats.received,
            r.sent,
            r.stats.reordered,
            r.stats.mean_delay_s * 1e3,
            r.stats.jitter_s * 1e3,
            r.stats.loss_ratio(r.sent) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_keeps_cbr_lossless_and_deflection_adds_jitter() {
        let rows = run(400, 9);
        let get = |t: DeflectionTechnique| rows.iter().find(|r| r.technique == t).unwrap();
        let none = get(DeflectionTechnique::None);
        let nip = get(DeflectionTechnique::Nip);
        // Without deflection everything dies at SW10.
        assert_eq!(none.stats.received, 0);
        // NIP + full protection: lossless, but jittery (1/3 vs 2/3 paths).
        assert_eq!(nip.stats.received, 400);
        assert!(nip.stats.jitter_s > 0.0);
        assert!(nip.stats.reordered > 0, "split paths reorder CBR too");
    }

    #[test]
    fn render_has_all_techniques() {
        let text = render(&run(50, 1));
        for t in ["NoDeflection", "HP", "AVP", "NIP"] {
            assert!(text.contains(t));
        }
    }
}
