//! One module per reproduced table/figure plus our extensions.

pub mod ablation;
pub mod adversary;
pub mod breaking;
pub mod cc_ablation;
pub mod detection;
pub mod dynamic;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod hier;
pub mod jitter;
pub mod multi_failure;
pub mod scalability;
pub mod table1;
pub mod table2;
