//! Parallel experiment runner: fans [`TcpRun`] specs across worker
//! threads with deterministic, serial-identical results.
//!
//! Each spec is self-contained — `run_tcp` builds a fresh network and
//! simulator seeded from `spec.seed`, never touching global state — so
//! runs commute. The runner exploits that: workers pull spec indices
//! from a shared atomic counter (work stealing — fast runs free their
//! worker for the next spec), and results are slotted back by index.
//! The output vector at `jobs = N` is therefore byte-identical to the
//! serial `jobs = 1` sweep, which the conformance tests in this module
//! and `tests/parallel_determinism.rs` enforce.

use crate::harness::{run_tcp, TcpRun, TcpRunResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker-thread count to use when the caller expresses no preference:
/// the `--jobs N` CLI flag, then the `KAR_JOBS` environment variable,
/// then all available cores.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the worker count from CLI arguments and environment:
/// `--jobs N` / `--jobs=N` wins, then `KAR_JOBS`, then every core.
/// Invalid or zero values fall back to the next source.
pub fn jobs_from_args<I: IntoIterator<Item = String>>(args: I) -> usize {
    let mut args = args.into_iter();
    let mut from_flag = None;
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            from_flag = args.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            from_flag = v.parse().ok();
        }
    }
    let from_env = std::env::var("KAR_JOBS").ok().and_then(|v| v.parse().ok());
    from_flag
        .or(from_env)
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(default_jobs)
}

/// Order-preserving parallel map: applies `f` to every item on a
/// work-stealing pool of `jobs` threads and returns results in item
/// order.
///
/// `jobs = 1` runs serially on the calling thread; `jobs > 1` fans out
/// over `min(jobs, items.len())` workers pulling indices from a shared
/// atomic counter. As long as `f` is a pure function of its item (no
/// global state), the output is byte-identical at any job count — the
/// property every experiment sweep and the dynamic fault experiments
/// build their `--jobs` determinism guarantee on.
pub fn run_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let result = f(&items[idx]);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every item index was claimed by exactly one worker"))
            .collect()
    })
}

/// Runs every spec and returns the results in spec order (the TCP
/// specialization of [`run_map`]; see the module docs).
pub fn run_all(specs: &[TcpRun<'_>], jobs: usize) -> Vec<TcpRunResult> {
    run_map(specs, jobs, run_tcp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::FailureWindow;
    use kar::{EncodingCache, Protection};
    use kar_simnet::SimTime;
    use kar_topology::topo15;
    use std::sync::Arc;

    fn spec_set(topo: &kar_topology::Topology, n: usize) -> Vec<TcpRun<'_>> {
        let primary = topo15::primary_route(topo);
        let cache = Arc::new(EncodingCache::new());
        (0..n)
            .map(|r| TcpRun {
                protection: Protection::AutoFull,
                duration: SimTime::from_secs(2),
                failure: (r % 2 == 0).then(|| FailureWindow {
                    link: topo.expect_link("SW7", "SW13"),
                    down: SimTime::ZERO,
                    up: SimTime::from_secs(3),
                }),
                seed: 100 + r as u64 * 7919,
                cache: Some(cache.clone()),
                ..TcpRun::new(topo, primary.clone())
            })
            .collect()
    }

    /// The tentpole conformance property: a parallel sweep is
    /// byte-identical to the serial one.
    #[test]
    fn parallel_results_match_serial_byte_for_byte() {
        let topo = topo15::build();
        let specs = spec_set(&topo, 6);
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.digest(), p.digest());
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let topo = topo15::build();
        let specs = spec_set(&topo, 2);
        let results = run_all(&specs, 64);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.delivered > 0));
    }

    #[test]
    fn empty_spec_set_is_fine() {
        assert!(run_all(&[], 8).is_empty());
    }

    #[test]
    fn run_map_preserves_order_for_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 5, 64] {
            assert_eq!(run_map(&items, jobs, |&i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from_args(args.iter().map(|s| s.to_string()));
        std::env::remove_var("KAR_JOBS");
        assert_eq!(parse(&["--jobs", "3"]), 3);
        assert_eq!(parse(&["--jobs=5"]), 5);
        assert_eq!(parse(&["--jobs", "2", "--jobs", "7"]), 7, "last flag wins");
        assert_eq!(parse(&["--jobs", "junk"]), default_jobs());
        assert_eq!(parse(&["--jobs", "0"]), default_jobs());
        assert_eq!(parse(&[]), default_jobs());
        std::env::set_var("KAR_JOBS", "2");
        assert_eq!(parse(&[]), 2, "KAR_JOBS fallback");
        assert_eq!(parse(&["--jobs", "9"]), 9, "flag beats env");
        std::env::remove_var("KAR_JOBS");
    }
}
