//! Machine-readable run telemetry: one JSON line per experiment run.
//!
//! Every `TcpRun` the harness executes can be summarized as a
//! [`RunRecord`] — the run's coordinates (experiment, label, index,
//! seed), its simulated outcome (throughput, drops, deflections,
//! hop inflation, reordering) and the host wall-clock cost. Records
//! serialize to single-line JSON objects, so a sweep's telemetry is a
//! [JSON-lines](https://jsonlines.org) stream that `jq`, pandas or a
//! spreadsheet ingest directly.
//!
//! Emission is opt-in via the `KAR_TELEMETRY` environment variable:
//! unset means off, `-` streams to stderr (keeping stdout clean for the
//! experiment's table), anything else appends to that file path.

use crate::harness::{TcpRun, TcpRunResult};
use kar_simnet::SimTime;
use std::fmt::Write as _;

/// Telemetry of one completed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Experiment name (`"fig5"`, `"fig7"`, …).
    pub experiment: String,
    /// Human-readable run coordinates within the experiment
    /// (e.g. `"SW10-SW7/Full/NIP/r2"`).
    pub label: String,
    /// Index of the run in the sweep's spec order.
    pub index: usize,
    /// RNG seed of the run.
    pub seed: u64,
    /// Deflection technique label.
    pub technique: String,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Deflection events.
    pub deflections: u64,
    /// Mean hops per delivered packet.
    pub mean_hops: f64,
    /// `mean_hops` relative to the primary path's hop count (1.0 means
    /// no deflection detours).
    pub hop_inflation: f64,
    /// Out-of-order arrivals at the destination edge.
    pub reordered: u64,
    /// Mean goodput over the full run (Mbit/s).
    pub mean_mbps: f64,
    /// Host wall-clock milliseconds the run took.
    pub wall_ms: f64,
}

impl RunRecord {
    /// Builds the record for one `(spec, result)` pair.
    pub fn new(
        experiment: &str,
        label: &str,
        index: usize,
        spec: &TcpRun<'_>,
        result: &TcpRunResult,
    ) -> Self {
        // `hops` counts core-switch traversals; the primary path lists
        // edge + cores + edge, so its nominal hop count is len - 2.
        let nominal_hops = spec.primary.len().saturating_sub(2) as f64;
        RunRecord {
            experiment: experiment.to_string(),
            label: label.to_string(),
            index,
            seed: spec.seed,
            technique: spec.technique.label().to_string(),
            duration_s: spec.duration.as_nanos() as f64 / 1e9,
            delivered: result.delivered,
            dropped: result.dropped,
            deflections: result.deflections,
            mean_hops: result.mean_hops,
            hop_inflation: if nominal_hops > 0.0 {
                result.mean_hops / nominal_hops
            } else {
                0.0
            },
            reordered: result.reordered,
            mean_mbps: result.meter.mean_mbps(SimTime::ZERO, spec.duration),
            wall_ms: result.wall.as_secs_f64() * 1e3,
        }
    }

    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        write!(out, "\"experiment\":\"{}\"", escape(&self.experiment)).unwrap();
        write!(out, ",\"label\":\"{}\"", escape(&self.label)).unwrap();
        write!(out, ",\"index\":{}", self.index).unwrap();
        write!(out, ",\"seed\":{}", self.seed).unwrap();
        write!(out, ",\"technique\":\"{}\"", escape(&self.technique)).unwrap();
        write!(out, ",\"duration_s\":{}", json_f64(self.duration_s)).unwrap();
        write!(out, ",\"delivered\":{}", self.delivered).unwrap();
        write!(out, ",\"dropped\":{}", self.dropped).unwrap();
        write!(out, ",\"deflections\":{}", self.deflections).unwrap();
        write!(out, ",\"mean_hops\":{}", json_f64(self.mean_hops)).unwrap();
        write!(out, ",\"hop_inflation\":{}", json_f64(self.hop_inflation)).unwrap();
        write!(out, ",\"reordered\":{}", self.reordered).unwrap();
        write!(out, ",\"mean_mbps\":{}", json_f64(self.mean_mbps)).unwrap();
        write!(out, ",\"wall_ms\":{}", json_f64(self.wall_ms)).unwrap();
        out.push('}');
        out
    }
}

/// Formats a float as a JSON value (`null` for non-finite values, which
/// bare JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

/// Telemetry of one dynamic-fault grid point (the `fig_dynamic`
/// experiment: a fault *process* — repair, flap, crash — rather than a
/// static failure, with the controller recovery loop enabled).
#[derive(Debug, Clone)]
pub struct DynamicRecord {
    /// Experiment name (`"fig_dynamic"`).
    pub experiment: String,
    /// Fault-process scenario name (`"repair"`, `"flap"`, …).
    pub scenario: String,
    /// Deflection technique label.
    pub technique: String,
    /// Probes injected.
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Probes dropped.
    pub dropped: u64,
    /// Delivered probes that deflection rescued (deflected ≥ once).
    pub saved_by_deflection: u64,
    /// Physical link up→down transitions.
    pub link_failures: u64,
    /// Physical down→up transitions.
    pub link_repairs: u64,
    /// Flows the controller re-encoded onto a detour.
    pub recovered_flows: usize,
    /// Mean detection → recovered-traffic latency in seconds.
    pub mean_recovery_latency_s: f64,
}

impl DynamicRecord {
    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        write!(out, "\"experiment\":\"{}\"", escape(&self.experiment)).unwrap();
        write!(out, ",\"scenario\":\"{}\"", escape(&self.scenario)).unwrap();
        write!(out, ",\"technique\":\"{}\"", escape(&self.technique)).unwrap();
        write!(out, ",\"injected\":{}", self.injected).unwrap();
        write!(out, ",\"delivered\":{}", self.delivered).unwrap();
        write!(out, ",\"dropped\":{}", self.dropped).unwrap();
        write!(out, ",\"saved_by_deflection\":{}", self.saved_by_deflection).unwrap();
        write!(out, ",\"link_failures\":{}", self.link_failures).unwrap();
        write!(out, ",\"link_repairs\":{}", self.link_repairs).unwrap();
        write!(out, ",\"recovered_flows\":{}", self.recovered_flows).unwrap();
        write!(
            out,
            ",\"mean_recovery_latency_s\":{}",
            json_f64(self.mean_recovery_latency_s)
        )
        .unwrap();
        out.push('}');
        out
    }
}

/// Telemetry of one adversarial grid point (the `fig_adversary`
/// experiment: targeted/random failure campaigns, Byzantine switches
/// and rolling churn against KAR and the table-based baselines).
#[derive(Debug, Clone)]
pub struct AdversaryRecord {
    /// Experiment name (`"fig_adversary"`).
    pub experiment: String,
    /// Topology name (`"topo15"`, `"rnp28"`).
    pub topo: String,
    /// Attack-kind label (`"targeted-links"`, `"byz-corrupt"`, …).
    pub attack: String,
    /// Attack intensity `n`.
    pub intensity: u32,
    /// Scheme label (`"NIP/full"`, `"FastFailover"`, …).
    pub scheme: String,
    /// Probes injected across all flows.
    pub injected: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Delivered / injected.
    pub reachability: f64,
    /// Mean hops relative to fault-free shortest paths.
    pub stretch: f64,
    /// Tampered residues the range check caught.
    pub corrupted_residue_drops: u64,
    /// Packets silently discarded by Byzantine switches.
    pub adversary_drops: u64,
    /// Flows the controller re-encoded onto a detour.
    pub recovered_flows: usize,
    /// Mean detection → recovered-traffic latency in seconds.
    pub mean_recovery_latency_s: f64,
}

impl AdversaryRecord {
    /// Serializes as one JSON object on a single line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        write!(out, "\"experiment\":\"{}\"", escape(&self.experiment)).unwrap();
        write!(out, ",\"topo\":\"{}\"", escape(&self.topo)).unwrap();
        write!(out, ",\"attack\":\"{}\"", escape(&self.attack)).unwrap();
        write!(out, ",\"intensity\":{}", self.intensity).unwrap();
        write!(out, ",\"scheme\":\"{}\"", escape(&self.scheme)).unwrap();
        write!(out, ",\"injected\":{}", self.injected).unwrap();
        write!(out, ",\"delivered\":{}", self.delivered).unwrap();
        write!(out, ",\"reachability\":{}", json_f64(self.reachability)).unwrap();
        write!(out, ",\"stretch\":{}", json_f64(self.stretch)).unwrap();
        write!(
            out,
            ",\"corrupted_residue_drops\":{}",
            self.corrupted_residue_drops
        )
        .unwrap();
        write!(out, ",\"adversary_drops\":{}", self.adversary_drops).unwrap();
        write!(out, ",\"recovered_flows\":{}", self.recovered_flows).unwrap();
        write!(
            out,
            ",\"mean_recovery_latency_s\":{}",
            json_f64(self.mean_recovery_latency_s)
        )
        .unwrap();
        out.push('}');
        out
    }
}

/// Anything that can serialize itself as one JSON line.
pub trait JsonLine {
    /// Serializes as one JSON object on a single line.
    fn json_line(&self) -> String;
}

impl JsonLine for RunRecord {
    fn json_line(&self) -> String {
        self.to_json()
    }
}

impl JsonLine for DynamicRecord {
    fn json_line(&self) -> String {
        self.to_json()
    }
}

impl JsonLine for AdversaryRecord {
    fn json_line(&self) -> String {
        self.to_json()
    }
}

/// Writes records as JSON lines to any sink.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_jsonl<W: std::io::Write, R: JsonLine>(
    mut sink: W,
    records: &[R],
) -> std::io::Result<()> {
    for record in records {
        writeln!(sink, "{}", record.json_line())?;
    }
    Ok(())
}

/// Emits records according to the `KAR_TELEMETRY` environment variable:
/// unset → no-op, `-` → stderr, a path → append to that file. Emission
/// failures are reported on stderr but never abort an experiment.
pub fn emit<R: JsonLine>(records: &[R]) {
    let Ok(target) = std::env::var("KAR_TELEMETRY") else {
        return;
    };
    let outcome = if target == "-" {
        write_jsonl(std::io::stderr().lock(), records)
    } else {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&target)
            .and_then(|file| write_jsonl(file, records))
    };
    if let Err(err) = outcome {
        eprintln!("telemetry: cannot write to {target}: {err}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;

    fn sample_record() -> RunRecord {
        let topo = topo15::build();
        let spec = TcpRun {
            duration: SimTime::from_secs(2),
            seed: 77,
            ..TcpRun::new(&topo, topo15::primary_route(&topo))
        };
        let result = crate::harness::run_tcp(&spec);
        RunRecord::new("harness", "baseline/r0", 0, &spec, &result)
    }

    #[test]
    fn record_reflects_spec_and_result() {
        let record = sample_record();
        assert_eq!(record.experiment, "harness");
        assert_eq!(record.seed, 77);
        assert_eq!(record.technique, "NIP");
        assert!((record.duration_s - 2.0).abs() < 1e-12);
        assert!(record.delivered > 0);
        assert!(record.mean_mbps > 0.0);
        // No failure → packets stay on the 4-hop primary path.
        assert!((record.hop_inflation - 1.0).abs() < 1e-9, "{record:?}");
        assert!(record.wall_ms >= 0.0);
    }

    #[test]
    fn json_line_is_well_formed() {
        let json = sample_record().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"experiment\":\"harness\""));
        assert!(json.contains("\"label\":\"baseline/r0\""));
        assert!(json.contains("\"seed\":77"));
        // Every key is present exactly once.
        for key in [
            "experiment",
            "label",
            "index",
            "seed",
            "technique",
            "duration_s",
            "delivered",
            "dropped",
            "deflections",
            "mean_hops",
            "hop_inflation",
            "reordered",
            "mean_mbps",
            "wall_ms",
        ] {
            assert_eq!(
                json.matches(&format!("\"{key}\":")).count(),
                1,
                "key {key} in {json}"
            );
        }
    }

    #[test]
    fn escaping_and_nonfinite_floats() {
        let mut record = sample_record();
        record.label = "quote\" slash\\ tab\t".to_string();
        record.mean_hops = f64::NAN;
        record.hop_inflation = f64::INFINITY;
        let json = record.to_json();
        assert!(json.contains("quote\\\" slash\\\\ tab\\t"));
        assert!(json.contains("\"mean_hops\":null"));
        assert!(json.contains("\"hop_inflation\":null"));
    }

    #[test]
    fn dynamic_record_json_carries_the_recovery_fields() {
        let record = DynamicRecord {
            experiment: "fig_dynamic".to_string(),
            scenario: "repair".to_string(),
            technique: "NIP".to_string(),
            injected: 60,
            delivered: 58,
            dropped: 2,
            saved_by_deflection: 4,
            link_failures: 1,
            link_repairs: 1,
            recovered_flows: 1,
            mean_recovery_latency_s: 1.2e-3,
        };
        let json = record.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "experiment",
            "scenario",
            "technique",
            "injected",
            "delivered",
            "dropped",
            "saved_by_deflection",
            "link_failures",
            "link_repairs",
            "recovered_flows",
            "mean_recovery_latency_s",
        ] {
            assert_eq!(
                json.matches(&format!("\"{key}\":")).count(),
                1,
                "key {key} in {json}"
            );
        }
        assert!(json.contains("\"saved_by_deflection\":4"));
        assert!(json.contains("\"mean_recovery_latency_s\":0.0012"));
    }

    #[test]
    fn write_jsonl_emits_one_line_per_record() {
        let records = vec![sample_record(), sample_record()];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
