//! Shared command-line handling for the experiment binaries.
//!
//! Every sweep binary accepts the same quartet of knobs; before this
//! module each `main` re-implemented the parsing by hand. One
//! [`CommonArgs::parse`] call now handles:
//!
//! * `--jobs N` / `--jobs=N` (or `KAR_JOBS`) — worker threads for the
//!   [`crate::runner`] pool;
//! * `--metrics PATH` / `--metrics=PATH` (or `KAR_METRICS`) — enables
//!   the [`crate::obs`] dump sink;
//! * `--trace PATH` / `--trace=PATH` (or `KAR_TRACE`) — also enables
//!   the sink, exporting a Chrome trace-event file (load it in
//!   `chrome://tracing` / Perfetto) on top of, or instead of, the
//!   metrics dump;
//! * `--events-cap N` / `--events-cap=N` (or `KAR_EVENTS_CAP`) — event
//!   ring capacity per run, for when the default window evicts the
//!   events a forensic capture needed;
//! * `--telemetry TARGET` / `--telemetry=TARGET` — sugar for the
//!   `KAR_TELEMETRY` environment variable read by
//!   [`crate::telemetry::emit`] (`-` for stderr, anything else a file
//!   path to append to);
//! * `--seed N` (or `KAR_SEED`) — base RNG seed, with a per-experiment
//!   default.
//!
//! None of the knobs changes simulation results except the seed: jobs
//! only schedules work, and metrics/telemetry are pure observation.
//! Call [`CommonArgs::finish`] at the end of `main` to flush any
//! requested metrics dump.

use crate::harness::env_knob;
use crate::{obs, runner};

/// The flags and environment knobs shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Worker threads for sweep parallelism (`--jobs`, `KAR_JOBS`).
    pub jobs: usize,
    /// Base RNG seed (`--seed`, `KAR_SEED`, experiment default).
    pub seed: u64,
    /// Whether observability collection is on (a metrics dump and/or a
    /// Chrome trace was requested).
    pub metrics: bool,
    /// The `--telemetry` target, when given on the command line.
    pub telemetry: Option<String>,
}

impl CommonArgs {
    /// Parses the process arguments (skipping `argv[0]`), enabling the
    /// metrics sink and exporting the telemetry target as a side effect.
    /// `default_seed` is the experiment's seed when neither `--seed` nor
    /// `KAR_SEED` is present.
    pub fn parse(default_seed: u64) -> CommonArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if let Some(target) = flag_value(&args, "--telemetry") {
            // `telemetry::emit` reads the environment; the flag is sugar.
            std::env::set_var("KAR_TELEMETRY", target);
        }
        let mut common = CommonArgs::parse_pure(&args, default_seed);
        common.metrics = obs::init(args);
        common
    }

    /// The side-effect-free core of [`CommonArgs::parse`]: resolves
    /// `jobs` and `seed` from flags and environment without touching the
    /// metrics sink or the telemetry environment (so tests can exercise
    /// precedence in isolation). `metrics` is left `false`.
    pub fn parse_pure(args: &[String], default_seed: u64) -> CommonArgs {
        let seed = flag_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| env_knob("KAR_SEED", default_seed));
        CommonArgs {
            jobs: runner::jobs_from_args(args.iter().cloned()),
            seed,
            metrics: false,
            telemetry: flag_value(args, "--telemetry"),
        }
    }

    /// Flushes the metrics dump (when one was requested) — call once at
    /// the end of `main`.
    pub fn finish(&self) {
        obs::finish();
    }
}

/// Extracts `--name <value>` or `--name=<value>`; the last occurrence
/// wins (matching [`crate::obs::metrics_path`]'s convention). Public so
/// binaries with extra flags (`fig_scale`'s `--checkpoint`,
/// `--max-switches`) parse them the same way.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut iter = args.iter();
    let mut value = None;
    let prefix = format!("{name}=");
    while let Some(arg) = iter.next() {
        if arg == name {
            value = iter.next().cloned();
        } else if let Some(v) = arg.strip_prefix(&prefix) {
            value = Some(v.to_string());
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn seed_flag_beats_default() {
        let args = argv(&["--seed", "42"]);
        assert_eq!(CommonArgs::parse_pure(&args, 7).seed, 42);
        let args = argv(&["--seed=9"]);
        assert_eq!(CommonArgs::parse_pure(&args, 7).seed, 9);
        assert_eq!(CommonArgs::parse_pure(&[], 7).seed, 7);
    }

    #[test]
    fn jobs_flag_is_recognized() {
        let args = argv(&["--jobs", "3"]);
        assert_eq!(CommonArgs::parse_pure(&args, 1).jobs, 3);
        let args = argv(&["--jobs=2", "--jobs=5"]);
        assert_eq!(CommonArgs::parse_pure(&args, 1).jobs, 5, "last wins");
    }

    #[test]
    fn telemetry_flag_is_captured() {
        let args = argv(&["--telemetry", "-"]);
        assert_eq!(
            CommonArgs::parse_pure(&args, 1).telemetry.as_deref(),
            Some("-")
        );
        assert_eq!(CommonArgs::parse_pure(&[], 1).telemetry, None);
    }

    #[test]
    fn unrelated_flags_are_ignored() {
        let args = argv(&["--correlated", "--seed", "4", "extra"]);
        let c = CommonArgs::parse_pure(&args, 1);
        assert_eq!(c.seed, 4);
        assert!(!c.metrics);
    }
}
