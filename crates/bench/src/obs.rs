//! Experiment-side observability plumbing: the `--metrics <path>` flag.
//!
//! Every experiment binary accepts `--metrics <path>` (or
//! `--metrics=<path>`, or the `KAR_METRICS` environment variable) to
//! collect a [`kar_obs`] dump: per-run metrics
//! snapshots, event traces and profiler tables, written as JSON lines
//! that `kar-inspect` renders back. The flow is:
//!
//! 1. `main` calls [`init`] with its CLI arguments — when a path was
//!    requested, the process-global [`kar_obs::sink`] starts collecting;
//! 2. each run calls [`RunObs::begin`] (an enabled handle + profiler
//!    when collecting, inert otherwise), attaches it to its network via
//!    [`kar::KarNetwork::with_obs`] / `with_profiler`, and calls
//!    [`RunObs::submit`] with its run label when done;
//! 3. `main` calls [`finish`], which writes every submitted dump
//!    (sorted by label, so parallel completion order never shows).
//!
//! Metrics are pure observation: a run with the sink enabled is
//! byte-identical to one without (`tests/obs_determinism.rs` enforces
//! this).

use kar_obs::{sink, ObsHandle, Profiler, RunDump, TopoLabeler};
use kar_topology::Topology;
use std::path::PathBuf;
use std::sync::Arc;

/// Extracts the metrics dump path from CLI arguments (`--metrics <path>`
/// or `--metrics=<path>`; the last occurrence wins), falling back to the
/// `KAR_METRICS` environment variable.
pub fn metrics_path<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut args = args.into_iter();
    let mut path = None;
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            path = args.next().map(PathBuf::from);
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            path = Some(PathBuf::from(v));
        }
    }
    path.or_else(|| std::env::var("KAR_METRICS").ok().map(PathBuf::from))
}

/// Enables the process-global metrics sink when the CLI (or
/// `KAR_METRICS`) asked for a dump. Returns whether collection is on.
pub fn init<I: IntoIterator<Item = String>>(args: I) -> bool {
    match metrics_path(args) {
        Some(path) => {
            sink::enable(&path);
            true
        }
        None => false,
    }
}

/// Flushes every submitted dump to the requested file and disables the
/// sink. Reports the outcome on stderr (never stdout — that belongs to
/// the experiment's table).
pub fn finish() {
    match sink::flush() {
        Ok(Some(path)) => eprintln!("metrics: wrote {}", path.display()),
        Ok(None) => {}
        Err(err) => eprintln!("metrics: write failed: {err}"),
    }
}

/// Per-run observability attachment: an enabled [`ObsHandle`] and
/// [`Profiler`] while the sink is collecting, inert otherwise — so
/// experiment code can attach and submit unconditionally.
#[derive(Debug, Clone, Default)]
pub struct RunObs {
    /// Handle for [`kar::KarNetwork::with_obs`] /
    /// [`kar_simnet::Sim::attach_obs`].
    pub handle: ObsHandle,
    /// Dispatch-loop profiler for `with_profiler` /
    /// [`kar_simnet::Sim::attach_profiler`], present only while
    /// collecting (its timings are host wall clock, excluded from every
    /// determinism digest).
    pub profiler: Option<Arc<Profiler>>,
}

impl RunObs {
    /// Begins observation for one run; inert unless [`init`] enabled the
    /// sink.
    pub fn begin() -> RunObs {
        if sink::enabled() {
            RunObs {
                handle: ObsHandle::enabled(),
                profiler: Some(Arc::new(Profiler::new())),
            }
        } else {
            RunObs::default()
        }
    }

    /// Collects everything recorded so far into a dump labeled `label`
    /// (entities resolved against `topo`) and submits it to the sink.
    /// No-op when observation is off.
    pub fn submit(&self, label: &str, topo: &Topology) {
        let Some(obs) = self.handle.get() else {
            return;
        };
        let labeler = TopoLabeler::new(topo);
        let rows = self.profiler.as_ref().map(|p| p.rows()).unwrap_or_default();
        sink::submit(RunDump::collect(
            label,
            &obs.metrics.snapshot(),
            &obs.events.events(),
            &rows,
            &labeler,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_path_parsing() {
        let parse = |args: &[&str]| metrics_path(args.iter().map(|s| s.to_string()));
        std::env::remove_var("KAR_METRICS");
        assert_eq!(
            parse(&["--metrics", "/tmp/m.jsonl"]),
            Some("/tmp/m.jsonl".into())
        );
        assert_eq!(
            parse(&["--metrics=/tmp/x.jsonl"]),
            Some("/tmp/x.jsonl".into())
        );
        assert_eq!(
            parse(&["--jobs", "4", "--metrics", "a", "--metrics=b"]),
            Some("b".into()),
            "last flag wins"
        );
        assert_eq!(parse(&["--jobs", "4"]), None);
        assert_eq!(parse(&["--metrics"]), None, "missing value is ignored");
    }

    #[test]
    fn run_obs_is_inert_without_the_sink() {
        // The sink is process-global; this test only asserts the
        // *disabled* side (the enabled side is covered by the
        // `obs_determinism` integration test, which owns the sink).
        if !sink::enabled() {
            let obs = RunObs::begin();
            assert!(!obs.handle.is_enabled());
            assert!(obs.profiler.is_none());
        }
    }
}
