//! Experiment-side observability plumbing: the `--metrics <path>` flag.
//!
//! Every experiment binary accepts `--metrics <path>` (or
//! `--metrics=<path>`, or the `KAR_METRICS` environment variable) to
//! collect a [`kar_obs`] dump: per-run metrics
//! snapshots, event traces and profiler tables, written as JSON lines
//! that `kar-inspect` renders back. The flow is:
//!
//! 1. `main` calls [`init`] with its CLI arguments — when a path was
//!    requested, the process-global [`kar_obs::sink`] starts collecting;
//! 2. each run calls [`RunObs::begin`] (an enabled handle + profiler
//!    when collecting, inert otherwise), attaches it to its network via
//!    [`kar::KarNetwork::with_obs`] / `with_profiler`, and calls
//!    [`RunObs::submit`] with its run label when done;
//! 3. `main` calls [`finish`], which writes every submitted dump
//!    (sorted by label, so parallel completion order never shows).
//!
//! Metrics are pure observation: a run with the sink enabled is
//! byte-identical to one without (`tests/obs_determinism.rs` enforces
//! this).

use kar_obs::{sink, Obs, ObsHandle, Profiler, RunDump, TopoLabeler};
use kar_topology::Topology;
use std::path::PathBuf;
use std::sync::Arc;

/// Extracts a `--<name> <value>` / `--<name>=<value>` flag (last
/// occurrence wins), falling back to the `env` variable.
fn flag_or_env<I: IntoIterator<Item = String>>(args: I, name: &str, env: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = args.into_iter();
    let mut value = None;
    while let Some(arg) = args.next() {
        if arg == long {
            value = args.next();
        } else if let Some(v) = arg.strip_prefix(&prefixed) {
            value = Some(v.to_string());
        }
    }
    value.or_else(|| std::env::var(env).ok())
}

/// Extracts the metrics dump path from CLI arguments (`--metrics <path>`
/// or `--metrics=<path>`; the last occurrence wins), falling back to the
/// `KAR_METRICS` environment variable.
pub fn metrics_path<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    flag_or_env(args, "metrics", "KAR_METRICS").map(PathBuf::from)
}

/// Extracts the Chrome trace-export path (`--trace <path>` /
/// `--trace=<path>` / `KAR_TRACE`).
pub fn trace_path<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    flag_or_env(args, "trace", "KAR_TRACE").map(PathBuf::from)
}

/// Extracts the event-ring capacity (`--events-cap <n>` /
/// `--events-cap=<n>` / `KAR_EVENTS_CAP`).
pub fn events_cap<I: IntoIterator<Item = String>>(args: I) -> Option<usize> {
    flag_or_env(args, "events-cap", "KAR_EVENTS_CAP").and_then(|v| v.parse().ok())
}

/// Enables the process-global sink when the CLI (or environment) asked
/// for a metrics dump (`--metrics`) and/or a Chrome trace (`--trace`).
/// Either alone turns collection on; `--events-cap` sizes every run's
/// event ring. Returns whether collection is on.
pub fn init<I: IntoIterator<Item = String>>(args: I) -> bool {
    let args: Vec<String> = args.into_iter().collect();
    if let Some(path) = metrics_path(args.iter().cloned()) {
        sink::enable(&path);
    }
    if let Some(path) = trace_path(args.iter().cloned()) {
        sink::enable_trace(&path);
    }
    if sink::enabled() {
        if let Some(cap) = events_cap(args.iter().cloned()) {
            sink::set_event_cap(cap);
        }
    }
    sink::enabled()
}

/// Flushes every submitted dump to the requested file(s) and disables
/// the sink. Reports the outcome on stderr (never stdout — that
/// belongs to the experiment's table).
pub fn finish() {
    match sink::flush() {
        Ok(report) => {
            if let Some(path) = report.metrics {
                eprintln!("metrics: wrote {}", path.display());
            }
            if let Some(path) = report.trace {
                eprintln!("trace: wrote {}", path.display());
            }
        }
        Err(err) => eprintln!("metrics: write failed: {err}"),
    }
}

/// Per-run observability attachment: an enabled [`ObsHandle`] and
/// [`Profiler`] while the sink is collecting, inert otherwise — so
/// experiment code can attach and submit unconditionally.
#[derive(Debug, Clone, Default)]
pub struct RunObs {
    /// Handle for [`kar::KarNetwork::with_obs`] /
    /// [`kar_simnet::Sim::attach_obs`].
    pub handle: ObsHandle,
    /// Dispatch-loop profiler for `with_profiler` /
    /// [`kar_simnet::Sim::attach_profiler`], present only while
    /// collecting (its timings are host wall clock, excluded from every
    /// determinism digest).
    pub profiler: Option<Arc<Profiler>>,
}

impl RunObs {
    /// Begins observation for one run; inert unless [`init`] enabled the
    /// sink.
    pub fn begin() -> RunObs {
        if sink::enabled() {
            RunObs {
                handle: ObsHandle::from_obs(Arc::new(Obs::with_event_capacity(sink::event_cap()))),
                profiler: Some(Arc::new(Profiler::new())),
            }
        } else {
            RunObs::default()
        }
    }

    /// Collects everything recorded so far into a dump labeled `label`
    /// (entities resolved against `topo`) and submits it to the sink.
    /// No-op when observation is off.
    pub fn submit(&self, label: &str, topo: &Topology) {
        let Some(obs) = self.handle.get() else {
            return;
        };
        let labeler = TopoLabeler::new(topo);
        let rows = self.profiler.as_ref().map(|p| p.rows()).unwrap_or_default();
        sink::submit(RunDump::collect_obs(label, obs, &rows, &labeler));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_path_parsing() {
        let parse = |args: &[&str]| metrics_path(args.iter().map(|s| s.to_string()));
        std::env::remove_var("KAR_METRICS");
        assert_eq!(
            parse(&["--metrics", "/tmp/m.jsonl"]),
            Some("/tmp/m.jsonl".into())
        );
        assert_eq!(
            parse(&["--metrics=/tmp/x.jsonl"]),
            Some("/tmp/x.jsonl".into())
        );
        assert_eq!(
            parse(&["--jobs", "4", "--metrics", "a", "--metrics=b"]),
            Some("b".into()),
            "last flag wins"
        );
        assert_eq!(parse(&["--jobs", "4"]), None);
        assert_eq!(parse(&["--metrics"]), None, "missing value is ignored");
    }

    #[test]
    fn run_obs_is_inert_without_the_sink() {
        // The sink is process-global; this test only asserts the
        // *disabled* side (the enabled side is covered by the
        // `obs_determinism` integration test, which owns the sink).
        if !sink::enabled() {
            let obs = RunObs::begin();
            assert!(!obs.handle.is_enabled());
            assert!(obs.profiler.is_none());
        }
    }
}
