//! CI resilience gate: exhaustively classifies every
//! `(src, dst, single-link-failure)` case on topo15 and rnp28 for the
//! HP, AVP and NIP dataplanes under auto-planned full protection, and
//! exits nonzero if any connected case black-holes or loops — the
//! failures the paper's protection guarantee claims to cover.
//!
//! The no-deflection dataplane is reported too (it drops by design) but
//! never gates. AVP gates against a pinned allowance instead of zero:
//! AVP may deflect back out the input port, and on rnp28 two residues
//! form a deterministic ping-pong — the known loop the paper motivates
//! NIP with (§2.1). The gate fails if AVP ever loops *more* than that.
use kar::verify::{summarize, CaseResult, VerifySummary};
use kar::{verify_single_failures, DeflectionTechnique, EncodingCache, Outcome, Protection};
use kar_bench::cli::CommonArgs;
use kar_bench::obs::RunObs;
use kar_obs::Entity;
use kar_topology::{rnp28, topo15, Topology};

/// Records one technique's verification sweep into a metrics dump
/// labeled `verify/{topo}/{technique}`: global outcome counters plus
/// per-failed-link blackhole/loop counters (the link-heat view of
/// where the dataplane is fragile). The verifier is symbolic — there
/// is no `Sim` to attach to — so the counters are recorded directly
/// from the case results.
fn record(
    topo: &Topology,
    name: &str,
    technique: DeflectionTechnique,
    results: &[CaseResult],
    s: &VerifySummary,
) {
    let run = RunObs::begin();
    let Some(o) = run.handle.get() else { return };
    let m = &o.metrics;
    m.counter(Entity::Global, "verify.cases")
        .add(s.total as u64);
    m.counter(Entity::Global, "verify.disconnected")
        .add(s.disconnected as u64);
    m.counter(Entity::Global, "verify.violations")
        .add(s.violations as u64);
    for (outcome, metric) in [
        (Outcome::Delivered, "verify.delivered"),
        (Outcome::WrongEdge, "verify.wrong_edge"),
        (Outcome::TtlExceeded, "verify.ttl_exceeded"),
        (Outcome::Blackhole, "verify.blackhole"),
        (Outcome::Loop, "verify.loop"),
    ] {
        m.counter(Entity::Global, metric)
            .add(s.count(outcome) as u64);
    }
    for case in results {
        let metric = match case.report.outcome {
            Outcome::Blackhole => "verify.blackhole",
            Outcome::Loop => "verify.loop",
            _ => continue,
        };
        m.counter(Entity::Link(case.failed.0 as u32), metric).inc();
    }
    run.submit(&format!("verify/{name}/{}", technique.label()), topo);
}

fn check(topo: &Topology, name: &str, avp_allowance: usize) -> bool {
    let cache = EncodingCache::new();
    let mut ok = true;
    println!("{name}: exhaustive single-link-failure verification (AutoFull)");
    println!("| technique | cases | delivered | wrong-edge | ttl | blackhole | loop | disconnected | violations |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for technique in DeflectionTechnique::ALL {
        let results = verify_single_failures(topo, technique, &Protection::AutoFull, &cache)
            .expect("verification runs");
        let s = summarize(&results);
        record(topo, name, technique, &results, &s);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            technique.label(),
            s.total,
            s.count(Outcome::Delivered),
            s.count(Outcome::WrongEdge),
            s.count(Outcome::TtlExceeded),
            s.count(Outcome::Blackhole),
            s.count(Outcome::Loop),
            s.disconnected,
            s.violations,
        );
        if technique == DeflectionTechnique::None {
            continue; // drop-on-failure is the baseline, not a guarantee
        }
        let allowance = if technique == DeflectionTechnique::Avp {
            avp_allowance
        } else {
            0
        };
        if s.violations > allowance {
            ok = false;
            for case in results
                .iter()
                .filter(|c| {
                    !c.disconnected
                        && matches!(c.report.outcome, Outcome::Blackhole | Outcome::Loop)
                })
                .take(10)
            {
                let link = topo.link(case.failed);
                eprintln!(
                    "VIOLATION {name}/{}: {} -> {} with {}-{} failed: {} (witness {:?})",
                    technique.label(),
                    topo.node(case.src).name,
                    topo.node(case.dst).name,
                    topo.node(link.a).name,
                    topo.node(link.b).name,
                    case.report.outcome,
                    case.report
                        .loop_witness
                        .as_ref()
                        .or(case.report.blackhole_witness.as_ref()),
                );
            }
        }
    }
    println!();
    ok
}

fn main() {
    let common = CommonArgs::parse(1);
    let mut ok = true;
    ok &= check(&topo15::build(), "topo15", 0);
    // 3 known AVP input-port ping-pong loops around SW107-SW113.
    ok &= check(&rnp28::build(), "rnp28", 3);
    common.finish();
    if !ok {
        eprintln!("resilience gate FAILED: a protected dataplane black-holes or loops on a survivable failure");
        std::process::exit(1);
    }
    println!("resilience gate passed: HP and NIP survive every survivable single-link failure");
}
