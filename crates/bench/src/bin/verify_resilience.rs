//! CI resilience gate: exhaustively classifies every
//! `(src, dst, failure set)` case on topo15 and rnp28 for the HP, AVP
//! and NIP dataplanes under auto-planned full protection, and exits
//! nonzero if the violation counts differ from the pinned expectations
//! — the failures the paper's protection guarantee claims to cover.
//!
//! Flags (on top of the common quartet):
//!
//! * `--k N` — failure-set size to sweep (default 1). `--k 2` runs the
//!   exhaustive two-failure verification; counts gate against the same
//!   pinned tables committed as fixtures in
//!   `crates/core/tests/fixtures/`.
//! * `--topo NAME` — `topo15`, `rnp28` or `both` (default `both`).
//!
//! At k=1 the no-deflection dataplane is reported but never gates (it
//! drops by design), and AVP gates against a pinned allowance instead
//! of zero: AVP may deflect back out the input port, and on rnp28 two
//! residues form a deterministic ping-pong — the known loop the paper
//! motivates NIP with (§2.1). At k=2 *every* technique has pinned
//! counts: two simultaneous failures defeat even NIP on some cases, and
//! the gate's job is to freeze exactly which.
use kar::verify::{summarize, summarize_sets, SweepStats, VerifySummary};
use kar::{
    verify_failure_sets, verify_single_failures, DeflectionTechnique, EncodingCache, Outcome,
    Protection,
};
use kar_bench::cli::{flag_value, CommonArgs};
use kar_bench::obs::RunObs;
use kar_obs::Entity;
use kar_topology::{rnp28, topo15, LinkId, NodeId, Topology};

/// Records one technique's verification sweep into a metrics dump:
/// global outcome counters plus per-failed-link blackhole/loop counters
/// (the link-heat view of where the dataplane is fragile). The verifier
/// is symbolic — there is no `Sim` to attach to — so the counters are
/// recorded directly from the case results.
fn record<'c>(
    topo: &Topology,
    label: &str,
    cases: impl Iterator<Item = (Outcome, &'c [LinkId])>,
    s: &VerifySummary,
) {
    let run = RunObs::begin();
    let Some(o) = run.handle.get() else { return };
    let m = &o.metrics;
    m.counter(Entity::Global, "verify.cases")
        .add(s.total as u64);
    m.counter(Entity::Global, "verify.disconnected")
        .add(s.disconnected as u64);
    m.counter(Entity::Global, "verify.violations")
        .add(s.violations as u64);
    for (outcome, metric) in [
        (Outcome::Delivered, "verify.delivered"),
        (Outcome::WrongEdge, "verify.wrong_edge"),
        (Outcome::TtlExceeded, "verify.ttl_exceeded"),
        (Outcome::Blackhole, "verify.blackhole"),
        (Outcome::Loop, "verify.loop"),
    ] {
        m.counter(Entity::Global, metric)
            .add(s.count(outcome) as u64);
    }
    for (outcome, failed) in cases {
        let metric = match outcome {
            Outcome::Blackhole => "verify.blackhole",
            Outcome::Loop => "verify.loop",
            _ => continue,
        };
        for link in failed {
            m.counter(Entity::Link(link.0 as u32), metric).inc();
        }
    }
    run.submit(label, topo);
}

/// Freezes a verifier-gate mismatch into the flight recorder: one
/// `note` event per offending case (src node, dst in `aux`, first
/// failed link, outcome as tag), then a `verifier-gate` capture — so a
/// failed CI gate ships its own black box inside the metrics dump
/// (`kar-inspect forensics` renders it).
fn record_gate_mismatch(
    topo: &Topology,
    label: &str,
    offenders: &[(NodeId, NodeId, Vec<LinkId>, &'static str)],
) {
    let run = RunObs::begin();
    let Some(o) = run.handle.get() else { return };
    for (i, (src, dst, links, outcome)) in offenders.iter().enumerate() {
        let mut ev = kar_obs::Event::new(i as u64, kar_obs::EventKind::Note);
        ev.node = Some(src.0 as u32);
        ev.aux = dst.0 as u64;
        ev.link = links.first().map(|l| l.0 as u32);
        ev.tag = outcome;
        o.events.push(ev);
    }
    o.forensics.capture("verifier-gate", 0, None, &o.events);
    run.submit(label, topo);
}

fn outcome_tag(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Loop => "loop",
        Outcome::Blackhole => "blackhole",
        Outcome::TtlExceeded => "ttl-exceeded",
        Outcome::WrongEdge => "wrong-edge",
        Outcome::Delivered => "delivered",
    }
}

fn print_header(name: &str, k: usize) {
    println!("{name}: exhaustive {k}-failure-set verification (AutoFull)");
    println!("| technique | cases | delivered | wrong-edge | ttl | blackhole | loop | disconnected | violations |");
    println!("|---|---|---|---|---|---|---|---|---|");
}

fn print_row(technique: DeflectionTechnique, s: &VerifySummary) {
    println!(
        "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
        technique.label(),
        s.total,
        s.count(Outcome::Delivered),
        s.count(Outcome::WrongEdge),
        s.count(Outcome::TtlExceeded),
        s.count(Outcome::Blackhole),
        s.count(Outcome::Loop),
        s.disconnected,
        s.violations,
    );
}

fn link_names(topo: &Topology, links: &[LinkId]) -> String {
    links
        .iter()
        .map(|&l| {
            let link = topo.link(l);
            format!("{}-{}", topo.node(link.a).name, topo.node(link.b).name)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn check(topo: &Topology, name: &str, avp_allowance: usize) -> bool {
    let cache = EncodingCache::new();
    let mut ok = true;
    print_header(name, 1);
    for technique in DeflectionTechnique::ALL {
        let results = verify_single_failures(topo, technique, &Protection::AutoFull, &cache)
            .expect("verification runs");
        let s = summarize(&results);
        record(
            topo,
            &format!("verify/{name}/{}", technique.label()),
            results
                .iter()
                .map(|c| (c.report.outcome, std::slice::from_ref(&c.failed))),
            &s,
        );
        print_row(technique, &s);
        if technique == DeflectionTechnique::None {
            continue; // drop-on-failure is the baseline, not a guarantee
        }
        let allowance = if technique == DeflectionTechnique::Avp {
            avp_allowance
        } else {
            0
        };
        if s.violations > allowance {
            ok = false;
            let offenders: Vec<(NodeId, NodeId, Vec<LinkId>, &'static str)> = results
                .iter()
                .filter(|c| {
                    !c.disconnected
                        && matches!(c.report.outcome, Outcome::Blackhole | Outcome::Loop)
                })
                .take(10)
                .map(|c| (c.src, c.dst, vec![c.failed], outcome_tag(c.report.outcome)))
                .collect();
            record_gate_mismatch(
                topo,
                &format!("verify/{name}/{}/gate-mismatch", technique.label()),
                &offenders,
            );
            for case in results
                .iter()
                .filter(|c| {
                    !c.disconnected
                        && matches!(c.report.outcome, Outcome::Blackhole | Outcome::Loop)
                })
                .take(10)
            {
                eprintln!(
                    "VIOLATION {name}/{}: {} -> {} with {} failed: {} (witness {:?})",
                    technique.label(),
                    topo.node(case.src).name,
                    topo.node(case.dst).name,
                    link_names(topo, &[case.failed]),
                    case.report.outcome,
                    case.report
                        .loop_witness
                        .as_ref()
                        .or(case.report.blackhole_witness.as_ref()),
                );
            }
        }
    }
    println!();
    ok
}

/// Pinned k=2 violation counts under AutoFull — the `--k 2` gate.
/// These numbers are the committed classification fixtures
/// (`crates/core/tests/fixtures/k2_{topo15,rnp28}.tsv`) projected to
/// the one column that gates; the fixture test pins the full tables.
fn pinned_k2_violations(name: &str, technique: DeflectionTechnique) -> Option<usize> {
    match (name, technique) {
        ("topo15", DeflectionTechnique::HotPotato) => Some(0),
        ("topo15", DeflectionTechnique::Avp) => Some(20),
        ("topo15", DeflectionTechnique::Nip) => Some(14),
        ("rnp28", DeflectionTechnique::HotPotato) => Some(0),
        ("rnp28", DeflectionTechnique::Avp) => Some(186),
        ("rnp28", DeflectionTechnique::Nip) => Some(240),
        _ => None,
    }
}

fn check_k(topo: &Topology, name: &str, k: usize) -> bool {
    let cache = EncodingCache::new();
    let mut ok = true;
    print_header(name, k);
    let mut stats = SweepStats::default();
    for technique in DeflectionTechnique::ALL {
        let sweep = verify_failure_sets(topo, technique, &Protection::AutoFull, &cache, k)
            .expect("verification runs");
        let s = summarize_sets(&sweep.results);
        record(
            topo,
            &format!("verify/{name}/k{k}/{}", technique.label()),
            sweep
                .results
                .iter()
                .map(|c| (c.report.outcome, c.failed.as_slice())),
            &s,
        );
        print_row(technique, &s);
        stats.cases += sweep.stats.cases;
        stats.explored += sweep.stats.explored;
        stats.memo_hits += sweep.stats.memo_hits;
        stats.disconnect_pruned += sweep.stats.disconnect_pruned;
        stats.symmetry_hits += sweep.stats.symmetry_hits;
        let pinned = if k == 2 {
            pinned_k2_violations(name, technique)
        } else {
            None
        };
        let Some(pinned) = pinned else { continue };
        if s.violations != pinned {
            ok = false;
            eprintln!(
                "UNPINNED {name}/k{k}/{}: {} violations, pinned {}",
                technique.label(),
                s.violations,
                pinned
            );
            let offenders: Vec<(NodeId, NodeId, Vec<LinkId>, &'static str)> = sweep
                .results
                .iter()
                .filter(|c| {
                    !c.disconnected
                        && matches!(c.report.outcome, Outcome::Blackhole | Outcome::Loop)
                })
                .take(10)
                .map(|c| {
                    (
                        c.src,
                        c.dst,
                        c.failed.clone(),
                        outcome_tag(c.report.outcome),
                    )
                })
                .collect();
            record_gate_mismatch(
                topo,
                &format!("verify/{name}/k{k}/{}/gate-mismatch", technique.label()),
                &offenders,
            );
            for case in sweep
                .results
                .iter()
                .filter(|c| {
                    !c.disconnected
                        && matches!(c.report.outcome, Outcome::Blackhole | Outcome::Loop)
                })
                .take(10)
            {
                let (src, dst): (NodeId, NodeId) = (case.src, case.dst);
                eprintln!(
                    "  {} -> {} with {} failed: {}",
                    topo.node(src).name,
                    topo.node(dst).name,
                    link_names(topo, &case.failed),
                    case.report.outcome,
                );
            }
        }
    }
    println!(
        "{name}: {} cases, {} explorations ({} memo hits, {} disconnect-pruned, {} symmetry hits)",
        stats.cases, stats.explored, stats.memo_hits, stats.disconnect_pruned, stats.symmetry_hits
    );
    println!();
    ok
}

fn main() {
    let common = CommonArgs::parse(1);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = flag_value(&args, "--k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let which = flag_value(&args, "--topo").unwrap_or_else(|| "both".into());
    let run15 = which == "both" || which == "topo15";
    let run28 = which == "both" || which == "rnp28";
    let mut ok = true;
    if k == 1 {
        if run15 {
            ok &= check(&topo15::build(), "topo15", 0);
        }
        if run28 {
            // 3 known AVP input-port ping-pong loops around SW107-SW113.
            ok &= check(&rnp28::build(), "rnp28", 3);
        }
    } else {
        if run15 {
            ok &= check_k(&topo15::build(), "topo15", k);
        }
        if run28 {
            ok &= check_k(&rnp28::build(), "rnp28", k);
        }
    }
    common.finish();
    if !ok {
        eprintln!(
            "resilience gate FAILED: violation counts drifted from the pinned classification"
        );
        std::process::exit(1);
    }
    match k {
        1 => println!(
            "resilience gate passed: HP and NIP survive every survivable single-link failure"
        ),
        _ => println!("resilience gate passed: k={k} classification matches the pinned tables"),
    }
}
