//! Scale sweep (`BENCH_scale.json`): topology families from 16 to 512
//! switches × protection levels, hundreds of concurrent flows per cell,
//! one mid-path link failure each — route-ID growth, delivery, latency
//! percentiles, event throughput and sampled verification counts versus
//! network size.
//!
//! Flags (on top of the common quartet):
//!
//! * `--max-switches N` — largest cell to run (default 256; pass 512
//!   for the full sweep, 64 for a CI smoke run);
//! * `--checkpoint PATH` — JSON-lines checkpoint; an interrupted sweep
//!   re-run with the same flags resumes at the last completed cell;
//! * `--out PATH` (or `KAR_SCALE_OUT`) — where to write the JSON
//!   document (default `BENCH_scale.json` at the repository root).
//!
//! Environment knobs: `KAR_SCALE_FLOWS` (flows per switch, default 2),
//! `KAR_SCALE_PKTS` (packets per flow, default 30), `KAR_SCALE_WALL=0`
//! (omit host wall-clock fields — the remaining document is then a pure
//! function of the configuration, byte-identical across runs and
//! machines).

use kar_bench::campaign::{run_campaign, CampaignConfig};
use kar_bench::cli::{flag_value, CommonArgs};
use kar_bench::harness::env_knob;
use std::path::PathBuf;

fn main() {
    let common = CommonArgs::parse(1);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_switches: usize = flag_value(&args, "--max-switches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let sizes: Vec<usize> = [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= max_switches)
        .collect();
    let cfg = CampaignConfig {
        seed: common.seed,
        sizes,
        flows_per_switch: env_knob("KAR_SCALE_FLOWS", 2) as usize,
        packets_per_flow: env_knob("KAR_SCALE_PKTS", 30),
        checkpoint: flag_value(&args, "--checkpoint").map(PathBuf::from),
        jobs: common.jobs,
        ..CampaignConfig::default()
    };
    let total = cfg.cells().len();
    let result = run_campaign(&cfg);
    eprintln!(
        "fig_scale: {} cells ({} computed, {} from checkpoint)",
        total,
        result.computed,
        total - result.computed
    );
    print!("{}", result.render_table());
    println!();
    println!("| Strategy | Requested | Achieved | Route-ID bits |");
    println!("|---|---|---|---|");
    for row in &result.key_growth {
        println!(
            "| {} | {} | {} | {} |",
            row.strategy, row.requested, row.achieved, row.bits
        );
    }
    let out = flag_value(&args, "--out")
        .or_else(|| std::env::var("KAR_SCALE_OUT").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
        });
    match std::fs::write(&out, result.to_json()) {
        Ok(()) => eprintln!("fig_scale: wrote {}", out.display()),
        Err(e) => eprintln!("fig_scale: cannot write {}: {e}", out.display()),
    }
    common.finish();
}
