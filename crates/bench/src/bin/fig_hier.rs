//! Hierarchy sweep (`BENCH_hier.json`): flat vs two-level hierarchical
//! KAR vs the table baselines, 512→4096 switches — header bits,
//! forwarding state, delivery, stretch, and a flat-vs-hier verification
//! sample per cell. See `kar_bench::experiments::hier`.
//!
//! Flags (on top of the common quartet):
//!
//! * `--max-switches N` — largest cell to run (default 4096). Passing
//!   `N < 512` switches to the small smoke grid `[32, 64, 128]` whose
//!   cell names are disjoint from the committed document, so a CI run
//!   trend-checks trivially as single-point series;
//! * `--out PATH` (or `KAR_HIER_OUT`) — where to write the JSON
//!   document (default `BENCH_hier.json` at the repository root).
//!
//! Environment knobs: `KAR_HIER_PAIRS` (pairs per cell, default 24),
//! `KAR_HIER_PKTS` (packets per pair, default 8), `KAR_HIER_DOMAIN`
//! (target switches per domain, default 64). The document never
//! contains wall-clock fields — it is a pure function of the
//! configuration, byte-identical across runs and machines.

use kar_bench::campaign::json_field;
use kar_bench::cli::{flag_value, CommonArgs};
use kar_bench::experiments::hier::{run, HierConfig};
use kar_bench::harness::env_knob;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let common = CommonArgs::parse(1);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_switches: usize = flag_value(&args, "--max-switches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096);
    let grid: &[usize] = if max_switches < 512 {
        &[32, 64, 128]
    } else {
        &[512, 1024, 2048, 4096]
    };
    let sizes: Vec<usize> = grid
        .iter()
        .copied()
        .filter(|&n| n <= max_switches)
        .collect();
    let domain_target = if max_switches < 512 {
        env_knob("KAR_HIER_DOMAIN", 16) as usize
    } else {
        env_knob("KAR_HIER_DOMAIN", 64) as usize
    };
    let cfg = HierConfig {
        seed: common.seed,
        sizes,
        domain_target,
        pairs: env_knob("KAR_HIER_PAIRS", 24) as usize,
        packets_per_pair: env_knob("KAR_HIER_PKTS", 8),
        jobs: common.jobs,
        ..HierConfig::default()
    };
    let total = cfg.cells().len();
    let result = run(&cfg);
    eprintln!("fig_hier: {} cells", total);
    print!("{}", result.render_table());
    let out = flag_value(&args, "--out")
        .or_else(|| std::env::var("KAR_HIER_OUT").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hier.json"));
    match std::fs::write(&out, result.to_json()) {
        Ok(()) => eprintln!("fig_hier: wrote {}", out.display()),
        Err(e) => eprintln!("fig_hier: cannot write {}: {e}", out.display()),
    }
    common.finish();
    // Acceptance gate: boundary re-encoding must not introduce loop or
    // blackhole classes flat KAR doesn't have (deployed posture).
    let bad: Vec<&str> = result
        .records
        .iter()
        .filter(|(_, json)| {
            json_field(json, "verify_new_classes")
                .and_then(|v| v.parse::<usize>().ok())
                .is_some_and(|n| n > 0)
        })
        .map(|(cell, _)| cell.as_str())
        .collect();
    if bad.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fig_hier: new violation classes vs flat in {} cell(s): {} — failing",
            bad.len(),
            bad.join(", ")
        );
        ExitCode::FAILURE
    }
}
