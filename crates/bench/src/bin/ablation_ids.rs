//! Ablations: encoding size vs ID strategy; protection budget vs coverage.
use kar_bench::experiments::ablation;

fn main() {
    let strategy = ablation::strategy_sweep(&[2, 4, 6, 8, 10, 12, 16, 20]);
    let budget = ablation::budget_sweep(&[15, 20, 24, 28, 34, 43, 64]);
    print!("{}", ablation::render(&strategy, &budget));
}
