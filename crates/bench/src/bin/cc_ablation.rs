//! Reno vs CUBIC under the Fig. 4 failure scenario.
use kar_bench::experiments::cc_ablation;
use kar_bench::harness::env_knob;

fn main() {
    let rows = cc_ablation::run(
        env_knob("KAR_PRE", 15),
        env_knob("KAR_FAIL", 15),
        env_knob("KAR_POST", 15),
        env_knob("KAR_SEED", 1),
    );
    print!("{}", cc_ablation::render(&rows));
}
