//! Regenerates Fig. 7 (RNP backbone, NIP + partial protection).
use kar_bench::experiments::fig7;
use kar_bench::harness::env_knob;

fn main() {
    let runs = env_knob("KAR_RUNS", 30) as usize;
    let secs = env_knob("KAR_SECONDS", 5);
    let seed = env_knob("KAR_SEED", 1);
    eprintln!("fig7: {runs} runs × {secs}s (override with KAR_RUNS/KAR_SECONDS/KAR_SEED)");
    print!("{}", fig7::render(&fig7::run(runs, secs, seed)));
}
