//! Regenerates Fig. 7 (RNP backbone, NIP + partial protection).
use kar_bench::cli::CommonArgs;
use kar_bench::experiments::fig7;
use kar_bench::harness::env_knob;

fn main() {
    let common = CommonArgs::parse(1);
    let runs = env_knob("KAR_RUNS", 30) as usize;
    let secs = env_knob("KAR_SECONDS", 5);
    eprintln!(
        "fig7: {runs} runs × {secs}s, {} jobs (override with KAR_RUNS/KAR_SECONDS/KAR_SEED, --jobs N, --metrics PATH)",
        common.jobs
    );
    print!(
        "{}",
        fig7::render(&fig7::run_jobs(runs, secs, common.seed, common.jobs))
    );
    common.finish();
}
