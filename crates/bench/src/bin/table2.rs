//! Regenerates Table 2 (feature matrix with experimental evidence).
use kar_bench::harness::env_knob;

fn main() {
    print!(
        "{}",
        kar_bench::experiments::table2::run_and_render(env_knob("KAR_SEED", 1))
    );
}
