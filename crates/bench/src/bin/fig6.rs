//! Regenerates Fig. 6: the reconstructed RNP backbone as Graphviz DOT
//! plus an adjacency/rate summary (render with `dot -Tsvg`).
use kar_bench::cli::CommonArgs;
use kar_topology::{rnp28, to_dot};

fn main() {
    // No simulation here — CommonArgs only so the shared observability
    // flags (`--metrics`, `--trace`, …) are accepted uniformly across
    // every fig binary.
    let args = CommonArgs::parse(0);
    let topo = rnp28::build();
    eprintln!(
        "Fig. 6 — RNP backbone: {} PoPs, {} backbone links (+{} host access links)",
        topo.core_nodes().len(),
        rnp28::LINKS.len(),
        rnp28::HOSTS.len(),
    );
    eprintln!("PoP labels:");
    for (name, id, label) in rnp28::SWITCHES {
        eprintln!("  {name:<6} id {id:<3} {label}");
    }
    print!("{}", to_dot(&topo));
    args.finish();
}
