//! Regenerates Fig. 5 (throughput vs failure location × protection × technique).
use kar_bench::cli::CommonArgs;
use kar_bench::experiments::fig5;
use kar_bench::harness::env_knob;

fn main() {
    let common = CommonArgs::parse(1);
    let runs = env_knob("KAR_RUNS", 30) as usize;
    let secs = env_knob("KAR_SECONDS", 5);
    eprintln!(
        "fig5: {runs} runs × {secs}s, {} jobs (override with KAR_RUNS/KAR_SECONDS/KAR_SEED, --jobs N, --metrics PATH)",
        common.jobs
    );
    print!(
        "{}",
        fig5::render(&fig5::run_jobs(runs, secs, common.seed, common.jobs))
    );
    common.finish();
}
