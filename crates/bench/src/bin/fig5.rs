//! Regenerates Fig. 5 (throughput vs failure location × protection × technique).
use kar_bench::experiments::fig5;
use kar_bench::harness::env_knob;

fn main() {
    let runs = env_knob("KAR_RUNS", 30) as usize;
    let secs = env_knob("KAR_SECONDS", 5);
    let seed = env_knob("KAR_SEED", 1);
    eprintln!("fig5: {runs} runs × {secs}s (override with KAR_RUNS/KAR_SECONDS/KAR_SEED)");
    print!("{}", fig5::render(&fig5::run(runs, secs, seed)));
}
