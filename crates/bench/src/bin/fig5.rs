//! Regenerates Fig. 5 (throughput vs failure location × protection × technique).
use kar_bench::experiments::fig5;
use kar_bench::harness::env_knob;
use kar_bench::{obs, runner};

fn main() {
    let runs = env_knob("KAR_RUNS", 30) as usize;
    let secs = env_knob("KAR_SECONDS", 5);
    let seed = env_knob("KAR_SEED", 1);
    let jobs = runner::jobs_from_args(std::env::args());
    obs::init(std::env::args().skip(1));
    eprintln!(
        "fig5: {runs} runs × {secs}s, {jobs} jobs (override with KAR_RUNS/KAR_SECONDS/KAR_SEED, --jobs N, --metrics PATH)"
    );
    print!("{}", fig5::render(&fig5::run_jobs(runs, secs, seed, jobs)));
    obs::finish();
}
