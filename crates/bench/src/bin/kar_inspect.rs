//! `kar-inspect`: renders a `--metrics` dump back into tables.
//!
//! Usage: `kar-inspect <dump.jsonl> [forensics] [--run <substring>]
//! [--pkt <id>] [--json]`
//!
//! The dump file holds one or more labeled runs (see `kar_obs::dump`).
//! With no `--run` filter the tool lists every run and renders the
//! first; `--run` selects the first run whose label contains the given
//! substring. For the selected run it prints:
//!
//! - a per-switch table (injected / forwarded / delivered / deflections
//!   by technique),
//! - a link heat summary (bytes, drops, queue high-water mark, hottest
//!   links first),
//! - global counters and histogram summaries (latency, hops, drops by
//!   reason, recovery timings),
//! - one packet's hop timeline (the busiest packet span by default,
//!   `--pkt` to pick another),
//! - the sim profiler table, when the run carried one.
//!
//! `kar-inspect <dump> forensics` instead renders the flight-recorder
//! captures (anomaly-frozen event windows plus the causal chain from
//! fault to drop, with detection-lag / re-encode-latency / blind-window
//! annotations). `--json` switches the run list and per-switch table to
//! a machine-readable JSON document on stdout.
//!
//! Either view warns when a run's event ring overflowed
//! (`evicted > 0`): timelines and forensics are then missing their
//! oldest events, and `--events-cap` (or `KAR_EVENTS_CAP`) on the
//! producing binary raises the ring size.
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use kar_obs::{fmt_ns, read_dumps, DumpRecord, RunDump};
use kar_simnet::DropReason;

struct Args {
    path: String,
    run: Option<String>,
    pkt: Option<u64>,
    forensics: bool,
    json: bool,
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Args, String> {
    let mut path = None;
    let mut run = None;
    let mut pkt = None;
    let mut forensics = false;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => run = Some(args.next().ok_or("--run needs a value")?),
            "--pkt" => {
                let v = args.next().ok_or("--pkt needs a value")?;
                pkt = Some(v.parse().map_err(|_| format!("bad --pkt value: {v}"))?);
            }
            "forensics" => forensics = true,
            "--json" => json = true,
            _ if path.is_none() => path = Some(arg),
            _ => return Err(format!("unexpected argument: {arg}")),
        }
    }
    Ok(Args {
        path: path.ok_or(
            "usage: kar-inspect <dump.jsonl> [forensics] [--run <substring>] [--pkt <id>] [--json]",
        )?,
        run,
        pkt,
        forensics,
        json,
    })
}

/// The run's `ring` accounting record: `(pushed, evicted, cap)`.
fn ring_stats(run: &RunDump) -> Option<(u64, u64, u64)> {
    run.records.iter().find_map(|r| match r {
        DumpRecord::Ring {
            pushed,
            evicted,
            cap,
        } => Some((*pushed, *evicted, *cap)),
        _ => None,
    })
}

/// Prominent overflow warning: an overflowed ring means timelines and
/// forensic captures silently lost their oldest events.
fn warn_evicted(run: &RunDump) {
    if let Some((_, evicted, cap)) = ring_stats(run) {
        if evicted > 0 {
            println!(
                "WARNING: run {} overflowed its event ring — {evicted} event(s) evicted \
                 (cap {cap}).",
                run.label
            );
            println!(
                "         Timelines and forensics are missing the oldest events; re-run the \
                 producing binary with --events-cap <n> (or KAR_EVENTS_CAP) to keep more."
            );
            println!();
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("kar-inspect: {msg}");
            return ExitCode::from(2);
        }
    };
    let file = match File::open(&args.path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("kar-inspect: cannot open {}: {err}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let dumps = match read_dumps(BufReader::new(file)) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("kar-inspect: cannot read {}: {err}", args.path);
            return ExitCode::FAILURE;
        }
    };
    if dumps.is_empty() {
        eprintln!("kar-inspect: {} holds no dump records", args.path);
        return ExitCode::FAILURE;
    }
    if args.json {
        println!("{}", json_report(&args.path, &dumps));
        return ExitCode::SUCCESS;
    }
    println!("{}: {} run(s)", args.path, dumps.len());
    for d in &dumps {
        let overflow = match ring_stats(d) {
            Some((_, evicted, _)) if evicted > 0 => format!(" [ring evicted {evicted}]"),
            _ => String::new(),
        };
        println!("  {} ({} records){overflow}", d.label, d.records.len());
    }
    println!();
    let selected = match &args.run {
        Some(needle) => match dumps.iter().find(|d| d.label.contains(needle.as_str())) {
            Some(d) => d,
            None => {
                eprintln!("kar-inspect: no run label contains {needle:?}");
                return ExitCode::FAILURE;
            }
        },
        None => &dumps[0],
    };
    if args.forensics {
        warn_evicted(selected);
        print!("{}", kar_obs::forensics::render_forensics(selected));
        return ExitCode::SUCCESS;
    }
    render(selected, args.pkt);
    ExitCode::SUCCESS
}

/// Machine-readable view of the dump: the run list plus each run's ring
/// accounting and per-switch activity table, as one JSON document.
fn json_report(path: &str, dumps: &[RunDump]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"path\":{},\"runs\":[", json_str(path)));
    for (i, d) in dumps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"label\":{},\"records\":{}",
            json_str(&d.label),
            d.records.len()
        ));
        if let Some((pushed, evicted, cap)) = ring_stats(d) {
            out.push_str(&format!(
                ",\"ring\":{{\"pushed\":{pushed},\"evicted\":{evicted},\"cap\":{cap}}}"
            ));
        }
        out.push_str(",\"switches\":[");
        for (j, (name, metrics)) in switch_counters(d).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let get = |m: &str| metrics.get(m).copied().unwrap_or(0);
            out.push_str(&format!(
                "\n  {{\"name\":{},\"injected\":{},\"forwarded\":{},\"delivered\":{}",
                json_str(name),
                get("injected"),
                get("forwarded"),
                get("delivered")
            ));
            let mut first = true;
            for (metric, value) in metrics.iter() {
                if let Some(technique) = metric.strip_prefix("deflect.") {
                    if first {
                        out.push_str(",\"deflect\":{");
                        first = false;
                    } else {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{value}", json_str(technique)));
                }
            }
            if !first {
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// JSON string literal with the escapes our labels can actually contain
/// (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Node-scoped counters per switch: `name -> metric -> value`, the
/// shared source for the rendered table and `--json`.
fn switch_counters(run: &RunDump) -> BTreeMap<&str, BTreeMap<&str, u64>> {
    let mut nodes: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for r in &run.records {
        if let DumpRecord::Counter {
            entity,
            metric,
            value,
        } = r
        {
            if let Some(name) = scoped(entity, "node:") {
                *nodes.entry(name).or_default().entry(metric).or_insert(0) += value;
            }
        }
    }
    nodes
}

fn render(run: &RunDump, pkt: Option<u64>) {
    println!("=== run {} ===", run.label);
    warn_evicted(run);
    render_switch_table(run);
    render_link_heat(run);
    render_drops(run);
    render_global(run);
    render_timeline(run, pkt);
    render_profile(run);
}

/// Drops broken down by the forwarder's exact reason, in
/// [`DropReason::ALL`] declaration order — the engine records one
/// `drop.<reason>` counter per drop, so every reason the dataplane can
/// emit (missing tag, port down, residue out of range, TTL, queue, …)
/// shows up here by name.
fn render_drops(run: &RunDump) {
    let mut by_reason: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &run.records {
        if let DumpRecord::Counter {
            entity,
            metric,
            value,
        } = r
        {
            if entity == "global" {
                if let Some(reason) = metric.strip_prefix("drop.") {
                    *by_reason.entry(reason).or_insert(0) += value;
                }
            }
        }
    }
    if by_reason.is_empty() {
        return;
    }
    let total: u64 = by_reason.values().sum();
    println!("drops by reason ({total} total):");
    println!("| reason | count |");
    println!("|---|---|");
    // Known reasons first, in declaration order; anything the engine
    // invents later still renders (alphabetically) after them.
    for reason in DropReason::ALL {
        if let Some(count) = by_reason.remove(reason.as_str()) {
            println!("| {} | {count} |", reason.as_str());
        }
    }
    for (reason, count) in &by_reason {
        println!("| {reason} | {count} |");
    }
    println!();
}

/// Splits a `node:SW7`-style entity label; `None` for other scopes.
fn scoped<'a>(entity: &'a str, scope: &str) -> Option<&'a str> {
    entity.strip_prefix(scope)
}

fn render_switch_table(run: &RunDump) {
    let nodes = switch_counters(run);
    let mut deflect_cols: Vec<&str> = nodes
        .values()
        .flat_map(|m| m.keys().copied())
        .filter(|m| m.starts_with("deflect."))
        .collect();
    if nodes.is_empty() {
        return;
    }
    deflect_cols.sort_unstable();
    deflect_cols.dedup();
    let mut header = "| switch | injected | forwarded | delivered |".to_string();
    for c in &deflect_cols {
        header.push_str(&format!(" {c} |"));
    }
    println!("per-switch activity:");
    println!("{header}");
    println!("{}", "|---".repeat(4 + deflect_cols.len()) + "|");
    for (name, metrics) in &nodes {
        let get = |m: &str| metrics.get(m).copied().unwrap_or(0);
        let mut row = format!(
            "| {name} | {} | {} | {} |",
            get("injected"),
            get("forwarded"),
            get("delivered")
        );
        for c in &deflect_cols {
            row.push_str(&format!(" {} |", get(c)));
        }
        println!("{row}");
    }
    println!();
}

fn render_link_heat(run: &RunDump) {
    // name -> (bytes, drops, queue high-water).
    let mut links: BTreeMap<&str, (u64, u64, i64)> = BTreeMap::new();
    // Link-scoped counters beyond the traffic trio (e.g. the verifier's
    // per-failed-link `verify.blackhole` / `verify.loop`): name -> metric -> value.
    let mut extra: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for r in &run.records {
        match r {
            DumpRecord::Counter {
                entity,
                metric,
                value,
            } => {
                if let Some(name) = scoped(entity, "link:") {
                    let slot = links.entry(name).or_default();
                    match metric.as_str() {
                        "bytes" => slot.0 += value,
                        "drops" => slot.1 += value,
                        _ => *extra.entry(name).or_default().entry(metric).or_insert(0) += value,
                    }
                }
            }
            DumpRecord::Gauge {
                entity,
                metric,
                max,
                ..
            } => {
                if let Some(name) = scoped(entity, "link:") {
                    if metric == "queue" {
                        let slot = links.entry(name).or_default();
                        slot.2 = slot.2.max(*max);
                    }
                }
            }
            _ => {}
        }
    }
    render_link_counters(&extra);
    links.retain(|_, (bytes, drops, queue)| *bytes > 0 || *drops > 0 || *queue > 0);
    if links.is_empty() {
        return;
    }
    let mut rows: Vec<(&str, (u64, u64, i64))> = links.into_iter().collect();
    // Hottest first: bytes, then drops; name breaks ties deterministically.
    rows.sort_by(|a, b| (b.1 .0, b.1 .1).cmp(&(a.1 .0, a.1 .1)).then(a.0.cmp(b.0)));
    let total: u64 = rows.iter().map(|(_, (bytes, _, _))| bytes).sum();
    println!(
        "link heat ({} active links, {total} bytes total):",
        rows.len()
    );
    println!("| link | bytes | share | drops | queue max |");
    println!("|---|---|---|---|---|");
    for (name, (bytes, drops, queue)) in rows.iter().take(12) {
        let share = if total > 0 {
            format!("{:.1}%", 100.0 * *bytes as f64 / total as f64)
        } else {
            "-".to_string()
        };
        println!("| {name} | {bytes} | {share} | {drops} | {queue} |");
    }
    if rows.len() > 12 {
        println!("(… {} more links)", rows.len() - 12);
    }
    println!();
}

fn render_link_counters(extra: &BTreeMap<&str, BTreeMap<&str, u64>>) {
    if extra.is_empty() {
        return;
    }
    let mut cols: Vec<&str> = extra.values().flat_map(|m| m.keys().copied()).collect();
    cols.sort_unstable();
    cols.dedup();
    let mut rows: Vec<(&str, u64)> = extra
        .iter()
        .map(|(name, m)| (*name, m.values().sum()))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("per-link counters:");
    let mut header = "| link |".to_string();
    for c in &cols {
        header.push_str(&format!(" {c} |"));
    }
    println!("{header}");
    println!("{}", "|---".repeat(1 + cols.len()) + "|");
    for (name, _) in rows.iter().take(12) {
        let mut row = format!("| {name} |");
        for c in &cols {
            row.push_str(&format!(" {} |", extra[name].get(c).copied().unwrap_or(0)));
        }
        println!("{row}");
    }
    if rows.len() > 12 {
        println!("(… {} more links)", rows.len() - 12);
    }
    println!();
}

fn render_global(run: &RunDump) {
    let mut lines = Vec::new();
    for r in &run.records {
        match r {
            DumpRecord::Counter {
                entity,
                metric,
                value,
            } if entity == "global" && !metric.starts_with("drop.") => {
                // `drop.<reason>` counters get their own table above.
                lines.push(format!("  {metric} = {value}"));
            }
            DumpRecord::Hist {
                entity,
                metric,
                count,
                sum,
                min,
                max,
                ..
            } if entity == "global" && *count > 0 => {
                let mean = *sum as f64 / *count as f64;
                let (mean, min, max) = if metric.ends_with("_ns") {
                    (fmt_ns((mean) as u64), fmt_ns(*min), fmt_ns(*max))
                } else {
                    (format!("{mean:.2}"), min.to_string(), max.to_string())
                };
                lines.push(format!(
                    "  {metric}: count {count}, mean {mean}, min {min}, max {max}"
                ));
            }
            _ => {}
        }
    }
    if lines.is_empty() {
        return;
    }
    println!("global:");
    for l in lines {
        println!("{l}");
    }
    println!();
}

fn render_timeline(run: &RunDump, wanted: Option<u64>) {
    // Count events per packet span to pick the busiest by default.
    let mut per_pkt: BTreeMap<u64, usize> = BTreeMap::new();
    for r in &run.records {
        if let DumpRecord::Event { pkt: Some(p), .. } = r {
            *per_pkt.entry(*p).or_insert(0) += 1;
        }
    }
    let chosen = match wanted {
        Some(p) => Some(p),
        None => per_pkt
            .iter()
            .max_by_key(|(p, n)| (**n, std::cmp::Reverse(**p)))
            .map(|(p, _)| *p),
    };
    let Some(chosen) = chosen else {
        // No packet spans; show unscoped events (faults, re-encodes).
        let mut rows: Vec<&DumpRecord> = run
            .records
            .iter()
            .filter(|r| matches!(r, DumpRecord::Event { .. }))
            .collect();
        if rows.is_empty() {
            return;
        }
        rows.sort_by_key(|r| match r {
            DumpRecord::Event { at_ns, .. } => *at_ns,
            _ => 0,
        });
        println!("events (no packet spans):");
        for r in rows.iter().take(30) {
            println!("{}", event_line(r));
        }
        if rows.len() > 30 {
            println!("(… {} more events)", rows.len() - 30);
        }
        println!();
        return;
    };
    let mut rows: Vec<&DumpRecord> = run
        .records
        .iter()
        .filter(|r| matches!(r, DumpRecord::Event { pkt: Some(p), .. } if *p == chosen))
        .collect();
    if rows.is_empty() {
        println!("packet {chosen}: no events in this run");
        println!();
        return;
    }
    rows.sort_by_key(|r| match r {
        DumpRecord::Event { at_ns, .. } => *at_ns,
        _ => 0,
    });
    println!("packet {chosen} timeline ({} events):", rows.len());
    for r in &rows {
        println!("{}", event_line(r));
    }
    println!();
}

fn event_line(r: &DumpRecord) -> String {
    let DumpRecord::Event {
        at_ns,
        kind,
        flow,
        node,
        link,
        aux,
        tag,
        span,
        parent,
        ..
    } = r
    else {
        return String::new();
    };
    let mut line = format!("  {:>10} {kind:<9}", fmt_ns(*at_ns));
    if !node.is_empty() {
        line.push_str(&format!(" at {node}"));
    }
    if !link.is_empty() {
        line.push_str(&format!(" on {link}"));
    }
    if let Some(f) = flow {
        line.push_str(&format!(" flow {f}"));
    }
    if !tag.is_empty() {
        line.push_str(&format!(" [{tag}]"));
    }
    if *aux != 0 {
        line.push_str(&format!(" aux={aux}"));
    }
    match (span, parent) {
        (Some(s), Some(p)) => line.push_str(&format!(" (span {s} ← {p})")),
        (Some(s), None) => line.push_str(&format!(" (span {s})")),
        _ => {}
    }
    line
}

fn render_profile(run: &RunDump) {
    let mut rows: Vec<(&str, u64, u64, u64)> = run
        .records
        .iter()
        .filter_map(|r| match r {
            DumpRecord::Profile {
                label,
                count,
                total_ns,
                max_ns,
            } => Some((label.as_str(), *count, *total_ns, *max_ns)),
            _ => None,
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    println!("profiler (by self-time):");
    println!("| event | count | total | mean | max |");
    println!("|---|---|---|---|---|");
    for (label, count, total_ns, max_ns) in rows {
        let mean = total_ns.checked_div(count).unwrap_or(0);
        println!(
            "| {label} | {count} | {} | {} | {} |",
            fmt_ns(total_ns),
            fmt_ns(mean),
            fmt_ns(max_ns)
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let parse = |a: &[&str]| parse_args(a.iter().map(|s| s.to_string()));
        let args = parse(&["d.jsonl", "--run", "fig4", "--pkt", "7"]).unwrap();
        assert_eq!(args.path, "d.jsonl");
        assert_eq!(args.run.as_deref(), Some("fig4"));
        assert_eq!(args.pkt, Some(7));
        assert!(!args.forensics);
        assert!(!args.json);
        let args = parse(&["d.jsonl", "forensics", "--json"]).unwrap();
        assert!(args.forensics);
        assert!(args.json);
        assert!(parse(&[]).is_err());
        assert!(parse(&["d.jsonl", "extra"]).is_err());
        assert!(parse(&["d.jsonl", "--pkt", "x"]).is_err());
    }

    #[test]
    fn event_lines_render_all_fields() {
        let line = event_line(&DumpRecord::Event {
            at_ns: 1_500_000,
            kind: "deflect".into(),
            pkt: Some(3),
            flow: Some(1),
            node: "SW7".into(),
            link: "SW7-SW13".into(),
            aux: 2,
            tag: "hp".into(),
            span: Some(7),
            parent: Some(4),
        });
        assert!(line.contains("deflect"), "{line}");
        assert!(line.contains("at SW7"), "{line}");
        assert!(line.contains("on SW7-SW13"), "{line}");
        assert!(line.contains("flow 1"), "{line}");
        assert!(line.contains("[hp]"), "{line}");
        assert!(line.contains("aux=2"), "{line}");
        assert!(line.contains("(span 7 ← 4)"), "{line}");
    }

    #[test]
    fn json_report_escapes_and_structures() {
        let run = RunDump {
            label: "fig4/\"quoted\"".to_string(),
            records: vec![
                DumpRecord::Counter {
                    entity: "node:SW7".into(),
                    metric: "injected".into(),
                    value: 3,
                },
                DumpRecord::Counter {
                    entity: "node:SW7".into(),
                    metric: "deflect.avp".into(),
                    value: 2,
                },
                DumpRecord::Ring {
                    pushed: 10,
                    evicted: 4,
                    cap: 6,
                },
            ],
        };
        let doc = json_report("d.jsonl", &[run]);
        assert!(doc.contains("\"label\":\"fig4/\\\"quoted\\\"\""), "{doc}");
        assert!(
            doc.contains("\"ring\":{\"pushed\":10,\"evicted\":4,\"cap\":6}"),
            "{doc}"
        );
        assert!(doc.contains("\"name\":\"SW7\",\"injected\":3"), "{doc}");
        assert!(doc.contains("\"deflect\":{\"avp\":2}"), "{doc}");
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces: {doc}"
        );
    }
}
