//! CBR delay/jitter under deflection (the §3 "disordering and jitter" goal).
use kar_bench::experiments::jitter;
use kar_bench::harness::env_knob;

fn main() {
    let packets = env_knob("KAR_PROBES", 2000);
    let seed = env_knob("KAR_SEED", 1);
    print!("{}", jitter::render(&jitter::run(packets, seed)));
}
