//! Delivery ratio under k simultaneous failures (Table 2's multi-failure claim).
//!
//! With `--correlated`, failures arrive as whole SRLG groups (every
//! core-core link of one switch at once) in a cumulative random order,
//! and the sweep reports which scheme black-holes first.
use kar_bench::cli::CommonArgs;
use kar_bench::experiments::multi_failure as mf;
use kar_bench::harness::env_knob;
use kar_topology::{rnp28, topo15};

fn main() {
    let common = CommonArgs::parse(1);
    let correlated = std::env::args().any(|a| a == "--correlated");
    let trials = env_knob("KAR_RUNS", 20) as usize;
    let probes = env_knob("KAR_PROBES", 200);
    let seed = common.seed;
    let t15 = topo15::build();
    let rnp = rnp28::build();
    if correlated {
        let groups = env_knob("KAR_GROUPS", 3) as usize;
        print!(
            "{}",
            mf::render_correlated(
                "topo15 AS1→AS3",
                &mf::run_correlated(&t15, "AS1", "AS3", groups, trials, probes, seed)
            )
        );
        print!(
            "{}",
            mf::render_correlated(
                "rnp28 E_BV→E_SP",
                &mf::run_correlated(&rnp, "E_BV", "E_SP", groups, trials, probes, seed)
            )
        );
        common.finish();
        return;
    }
    let ks = [0usize, 1, 2, 3];
    print!(
        "{}",
        mf::render(
            "topo15 AS1→AS3",
            &mf::run(&t15, "AS1", "AS3", &ks, trials, probes, seed)
        )
    );
    print!(
        "{}",
        mf::render(
            "rnp28 E_BV→E_SP",
            &mf::run(&rnp, "E_BV", "E_SP", &ks, trials, probes, seed)
        )
    );
    common.finish();
}
