//! Delivery ratio under k simultaneous failures (Table 2's multi-failure claim).
use kar_bench::experiments::multi_failure as mf;
use kar_bench::harness::env_knob;
use kar_topology::{rnp28, topo15};

fn main() {
    let trials = env_knob("KAR_RUNS", 20) as usize;
    let probes = env_knob("KAR_PROBES", 200);
    let seed = env_knob("KAR_SEED", 1);
    let ks = [0usize, 1, 2, 3];
    let t15 = topo15::build();
    print!(
        "{}",
        mf::render(
            "topo15 AS1→AS3",
            &mf::run(&t15, "AS1", "AS3", &ks, trials, probes, seed)
        )
    );
    let rnp = rnp28::build();
    print!(
        "{}",
        mf::render(
            "rnp28 E_BV→E_SP",
            &mf::run(&rnp, "E_BV", "E_SP", &ks, trials, probes, seed)
        )
    );
}
