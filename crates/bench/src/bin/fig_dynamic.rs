//! Dynamic fault processes (repair, flap, node crash) with the
//! failure-reactive controller loop: delivery, packets saved by
//! deflection, and per-flow recovery latency per technique.
use kar_bench::cli::CommonArgs;
use kar_bench::experiments::dynamic;
use kar_bench::harness::env_knob;
use kar_bench::telemetry::{self, DynamicRecord};
use kar_simnet::SimTime;

fn main() {
    let common = CommonArgs::parse(11);
    let cfg = dynamic::DynamicConfig {
        probes: env_knob("KAR_PROBES", 100),
        notification: SimTime::from_micros(env_knob("KAR_NOTIFY_US", 1000)),
        seed: common.seed,
        ..dynamic::DynamicConfig::default()
    };
    let points = dynamic::run(cfg, common.jobs);
    print!("{}", dynamic::render(&points));
    let records: Vec<DynamicRecord> = points
        .iter()
        .map(|p| DynamicRecord {
            experiment: "fig_dynamic".to_string(),
            scenario: p.scenario.clone(),
            technique: p.technique.label().to_string(),
            injected: p.injected,
            delivered: p.delivered,
            dropped: p.dropped,
            saved_by_deflection: p.saved_by_deflection,
            link_failures: p.link_failures,
            link_repairs: p.link_repairs,
            recovered_flows: p.recovered_flows,
            mean_recovery_latency_s: p.mean_recovery_latency_s,
        })
        .collect();
    telemetry::emit(&records);
    common.finish();
}
