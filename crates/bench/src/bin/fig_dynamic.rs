//! Dynamic fault processes (repair, flap, node crash) with the
//! failure-reactive controller loop: delivery, packets saved by
//! deflection, and per-flow recovery latency per technique.
use kar_bench::experiments::dynamic;
use kar_bench::harness::env_knob;
use kar_bench::obs;
use kar_bench::runner::jobs_from_args;
use kar_bench::telemetry::{self, DynamicRecord};
use kar_simnet::SimTime;

fn main() {
    let jobs = jobs_from_args(std::env::args().skip(1));
    obs::init(std::env::args().skip(1));
    let cfg = dynamic::DynamicConfig {
        probes: env_knob("KAR_PROBES", 100),
        notification: SimTime::from_micros(env_knob("KAR_NOTIFY_US", 1000)),
        seed: env_knob("KAR_SEED", 11),
        ..dynamic::DynamicConfig::default()
    };
    let points = dynamic::run(cfg, jobs);
    print!("{}", dynamic::render(&points));
    let records: Vec<DynamicRecord> = points
        .iter()
        .map(|p| DynamicRecord {
            experiment: "fig_dynamic".to_string(),
            scenario: p.scenario.clone(),
            technique: p.technique.label().to_string(),
            injected: p.injected,
            delivered: p.delivered,
            dropped: p.dropped,
            saved_by_deflection: p.saved_by_deflection,
            link_failures: p.link_failures,
            link_repairs: p.link_repairs,
            recovered_flows: p.recovered_flows,
            mean_recovery_latency_s: p.mean_recovery_latency_s,
        })
        .collect();
    telemetry::emit(&records);
    obs::finish();
}
