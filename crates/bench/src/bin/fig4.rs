//! Regenerates Fig. 4 (TCP throughput time series across a failure).
use kar_bench::cli::CommonArgs;
use kar_bench::experiments::fig4;
use kar_bench::harness::env_knob;

fn main() {
    let common = CommonArgs::parse(1);
    let cfg = fig4::Fig4Config {
        pre_s: env_knob("KAR_PRE", 30),
        fail_s: env_knob("KAR_FAIL", 30),
        post_s: env_knob("KAR_POST", 30),
        seed: common.seed,
    };
    eprintln!(
        "fig4: {cfg:?}, {} jobs (override with KAR_PRE/KAR_FAIL/KAR_POST/KAR_SEED, --jobs N, --metrics PATH)",
        common.jobs
    );
    print!("{}", fig4::render(&fig4::run_jobs(cfg, common.jobs)));
    common.finish();
}
