//! Regenerates Fig. 4 (TCP throughput time series across a failure).
use kar_bench::experiments::fig4;
use kar_bench::harness::env_knob;
use kar_bench::{obs, runner};

fn main() {
    let cfg = fig4::Fig4Config {
        pre_s: env_knob("KAR_PRE", 30),
        fail_s: env_knob("KAR_FAIL", 30),
        post_s: env_knob("KAR_POST", 30),
        seed: env_knob("KAR_SEED", 1),
    };
    let jobs = runner::jobs_from_args(std::env::args());
    obs::init(std::env::args().skip(1));
    eprintln!(
        "fig4: {cfg:?}, {jobs} jobs (override with KAR_PRE/KAR_FAIL/KAR_POST/KAR_SEED, --jobs N, --metrics PATH)"
    );
    print!("{}", fig4::render(&fig4::run_jobs(cfg, jobs)));
    obs::finish();
}
