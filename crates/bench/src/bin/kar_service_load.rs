//! Load driver for the `kar-service` daemon (`BENCH_service.json`):
//! spawns the daemon in-process on topo15, opens `--connections`
//! client connections and drives `--requests` hot-cache encode
//! round-trips through the full wire protocol, cycling every ordered
//! edge pair in both wire modes. Every response is checked
//! byte-for-byte against the in-process [`kar_service::expected_header`]
//! serialization, so the committed document doubles as a byte-identity
//! witness at load.
//!
//! Flags (on top of the common quartet):
//!
//! * `--requests N` — total encode round-trips; accepts `k`/`m`
//!   suffixes (`10k`, `1m`; default `1m`);
//! * `--connections N` — concurrent client connections (default 4);
//! * `--out PATH` (or `KAR_SERVICE_OUT`) — where to write the JSON
//!   document (default `BENCH_service.json` at the repository root).
//!
//! The document's `mode` field is `"full"` when at least one million
//! requests were driven — only then are the wall-clock metrics (QPS,
//! p50/p99 latency) present, so `kar-trend` never gates CI on the
//! timing of a 10k smoke run. The deterministic columns (`errors`,
//! `byte_mismatches`) are always present and always gated.

use kar::{EncodeRequest, Protection, WireMode};
use kar_bench::cli::{flag_value, CommonArgs};
use kar_service::{expected_header, Daemon, ServiceClient, ServiceConfig};
use kar_topology::topo15;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One request in the cycled workload: an ordered edge pair, the wire
/// mode to ask for, and the exact bytes the daemon must answer with.
struct WorkItem {
    src: u32,
    dst: u32,
    mode: WireMode,
    expected: Vec<u8>,
}

/// What one connection thread measured.
#[derive(Default)]
struct ThreadResult {
    latencies_ns: Vec<u64>,
    errors: u64,
    byte_mismatches: u64,
}

fn parse_requests(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, scale) = match text.as_bytes().last()? {
        b'k' | b'K' => (&text[..text.len() - 1], 1_000),
        b'm' | b'M' => (&text[..text.len() - 1], 1_000_000),
        _ => (text, 1),
    };
    digits.parse::<u64>().ok().map(|n| n * scale)
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn json_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    requests: u64,
    connections: usize,
    pairs: usize,
    full: bool,
    errors: u64,
    byte_mismatches: u64,
    wall_s: f64,
    sorted_ns: &[u64],
    stats: &kar_service::ServiceStats,
) -> String {
    let mut out = String::from("{\"campaign\":\"service\",\n");
    out.push_str(&format!(
        "\"fingerprint\":\"service-v1 topo=topo15 requests={requests} connections={connections} \
         pairs={pairs} modes=fixed+varint\",\n"
    ));
    out.push_str(&format!(
        "\"mode\":\"{}\",\n",
        if full { "full" } else { "smoke" }
    ));
    out.push_str(&format!(
        "\"requests\":{requests},\n\"connections\":{connections},\n\"pairs\":{pairs},\n"
    ));
    out.push_str(&format!(
        "\"errors\":{errors},\n\"byte_mismatches\":{byte_mismatches},\n"
    ));
    out.push_str(&format!(
        "\"daemon\":{{\"requests\":{},\"encode_ok\":{},\"encode_err\":{},\"invalidations\":{}}},\n",
        stats.requests, stats.encode_ok, stats.encode_err, stats.invalidations
    ));
    if full {
        let mean_ns =
            sorted_ns.iter().map(|&n| n as f64).sum::<f64>() / sorted_ns.len().max(1) as f64;
        out.push_str(&format!(
            "\"qps\":{},\n\"p50_us\":{},\n\"p99_us\":{},\n\"mean_us\":{},\n\"wall_s\":{}\n",
            json_num(requests as f64 / wall_s),
            json_num(percentile(sorted_ns, 0.50) as f64 / 1_000.0),
            json_num(percentile(sorted_ns, 0.99) as f64 / 1_000.0),
            json_num(mean_ns / 1_000.0),
            json_num(wall_s),
        ));
    } else {
        // Wall-clock numbers from a smoke run would teach the trend
        // gate noise; the doc records only what is deterministic.
        out.push_str("\"note\":\"smoke run: wall-clock metrics omitted\"\n");
    }
    out.push_str("}\n");
    out
}

fn main() {
    let common = CommonArgs::parse(17);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests = flag_value(&args, "--requests")
        .and_then(|v| parse_requests(&v))
        .unwrap_or(1_000_000);
    let connections: usize = flag_value(&args, "--connections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);

    let topo = topo15::build();
    let recovery = ServiceConfig::new(topo.clone()).recovery.clone();
    // The workload: every ordered edge pair, both wire modes, with the
    // in-process reference bytes precomputed once.
    let mut work = Vec::new();
    let edges = topo.edge_nodes();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let req = EncodeRequest::new(src, dst);
            let header =
                expected_header(&topo, &req, recovery.clone(), &[]).expect("topo15 is connected");
            for mode in [WireMode::Fixed, WireMode::Varint] {
                work.push(WorkItem {
                    src: src.0 as u32,
                    dst: dst.0 as u32,
                    mode,
                    expected: header.to_wire(mode),
                });
            }
        }
    }
    let work = Arc::new(work);
    let pairs = work.len() / 2;

    let daemon = Daemon::spawn(ServiceConfig::new(topo)).expect("spawn daemon");
    let addr = daemon.addr();
    eprintln!(
        "kar_service_load: daemon on {addr}, {requests} requests over {connections} \
         connection(s), {pairs} pairs x 2 modes, seed {}",
        common.seed
    );

    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..connections {
        let work = Arc::clone(&work);
        let share =
            requests / connections as u64 + u64::from((requests % connections as u64) > t as u64);
        handles.push(std::thread::spawn(move || {
            let mut res = ThreadResult {
                latencies_ns: Vec::with_capacity(share as usize),
                ..ThreadResult::default()
            };
            let mut client = ServiceClient::connect(addr).expect("connect");
            // Stagger start offsets so connections don't march through
            // the workload in lockstep.
            let offset = (t * work.len()) / connections.max(1);
            for i in 0..share {
                let item = &work[(offset + i as usize) % work.len()];
                let t0 = Instant::now();
                match client.encode_raw(item.src, item.dst, &Protection::None, item.mode) {
                    Ok(bytes) => {
                        res.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        if bytes != item.expected {
                            res.byte_mismatches += 1;
                        }
                    }
                    Err(_) => res.errors += 1,
                }
            }
            res
        }));
    }
    let mut latencies = Vec::with_capacity(requests as usize);
    let mut errors = 0u64;
    let mut byte_mismatches = 0u64;
    for h in handles {
        let r = h.join().expect("connection thread");
        latencies.extend(r.latencies_ns);
        errors += r.errors;
        byte_mismatches += r.byte_mismatches;
    }
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let mut tail = ServiceClient::connect(addr).expect("connect for stats");
    let stats = tail.stats().expect("stats");
    drop(tail);
    daemon.shutdown();

    let full = requests >= 1_000_000;
    eprintln!(
        "kar_service_load: {} ok / {errors} errors / {byte_mismatches} byte mismatches in {:.2}s \
         ({:.0} req/s), p50 {:.1}us p99 {:.1}us [{}]",
        latencies.len(),
        wall_s,
        requests as f64 / wall_s,
        percentile(&latencies, 0.50) as f64 / 1_000.0,
        percentile(&latencies, 0.99) as f64 / 1_000.0,
        if full { "full" } else { "smoke" },
    );

    let out = flag_value(&args, "--out")
        .or_else(|| std::env::var("KAR_SERVICE_OUT").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json")
        });
    let doc = to_json(
        requests,
        connections,
        pairs,
        full,
        errors,
        byte_mismatches,
        wall_s,
        &latencies,
        &stats,
    );
    match std::fs::write(&out, doc) {
        Ok(()) => eprintln!("kar_service_load: wrote {}", out.display()),
        Err(e) => eprintln!("kar_service_load: cannot write {}: {e}", out.display()),
    }
    common.finish();
    if errors > 0 || byte_mismatches > 0 {
        eprintln!("kar_service_load: FAILED — errors or byte mismatches under load");
        std::process::exit(1);
    }
}
