//! Adversarial & churn suite (`BENCH_adversary.json`): targeted and
//! random failure campaigns, Byzantine switches and rolling churn
//! against KAR's deflection techniques (at two protection levels) and
//! the table-based baselines, every scheme facing the identical attack
//! trace.
//!
//! Flags (on top of the common quartet):
//!
//! * `--topo NAME` — `topo15`, `rnp28` or `both` (default `both`);
//! * `--probes N` — probes per flow (default 120);
//! * `--intensities LIST` — comma-separated attack intensities
//!   (default `1,2,4`);
//! * `--out PATH` (or `KAR_ADVERSARY_OUT`) — where to write the JSON
//!   document (default `BENCH_adversary.json` at the repository root).
//!
//! The document contains no wall-clock fields: it is a pure function of
//! the configuration, byte-identical across runs, and committed at the
//! repository root.
//!
//! Exits nonzero when the targeted campaign fails to degrade rnp28
//! reachability faster than the matched random campaign at the highest
//! intensity — the betweenness ranking's acceptance criterion.

use kar_bench::cli::{flag_value, CommonArgs};
use kar_bench::experiments::adversary::{self, AdversaryConfig};
use kar_bench::telemetry::{self, AdversaryRecord};
use kar_topology::{rnp28, topo15};
use std::path::PathBuf;

fn main() {
    let common = CommonArgs::parse(23);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = AdversaryConfig {
        seed: common.seed,
        ..AdversaryConfig::default()
    };
    if let Some(p) = flag_value(&args, "--probes").and_then(|v| v.parse().ok()) {
        cfg.probes = p;
    }
    if let Some(list) = flag_value(&args, "--intensities") {
        let parsed: Vec<u32> = list
            .split(',')
            .filter_map(|v| v.trim().parse().ok())
            .collect();
        if !parsed.is_empty() {
            cfg.intensities = parsed;
        }
    }
    let which = flag_value(&args, "--topo").unwrap_or_else(|| "both".into());
    let mut points = Vec::new();
    if which == "both" || which == "topo15" {
        points.extend(adversary::run_topology(
            &topo15::build(),
            "topo15",
            &cfg,
            common.jobs,
        ));
    }
    if which == "both" || which == "rnp28" {
        points.extend(adversary::run_topology(
            &rnp28::build(),
            "rnp28",
            &cfg,
            common.jobs,
        ));
    }
    let gaps = adversary::targeted_vs_random(&points);
    print!("{}", adversary::render(&points, &gaps));
    eprintln!(
        "fig_adversary: {} cells over {} intensities, {} gap rows",
        points.len(),
        cfg.intensities.len(),
        gaps.len()
    );
    let records: Vec<AdversaryRecord> = points
        .iter()
        .map(|p| AdversaryRecord {
            experiment: "fig_adversary".to_string(),
            topo: p.topo.to_string(),
            attack: p.attack.label().to_string(),
            intensity: p.intensity,
            scheme: p.scheme.clone(),
            injected: p.injected,
            delivered: p.delivered,
            reachability: p.reachability,
            stretch: p.stretch,
            corrupted_residue_drops: p.corrupted_residue_drops,
            adversary_drops: p.adversary_drops,
            recovered_flows: p.recovered_flows,
            mean_recovery_latency_s: p.mean_recovery_latency_s,
        })
        .collect();
    telemetry::emit(&records);
    let out = flag_value(&args, "--out")
        .or_else(|| std::env::var("KAR_ADVERSARY_OUT").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adversary.json")
        });
    match std::fs::write(&out, adversary::to_json(&points, &gaps)) {
        Ok(()) => eprintln!("fig_adversary: wrote {}", out.display()),
        Err(e) => eprintln!("fig_adversary: cannot write {}: {e}", out.display()),
    }
    common.finish();
    // Acceptance gate: the betweenness-targeted campaign must beat its
    // matched random control on the backbone at the highest intensity.
    let top = cfg.intensities.iter().copied().max().unwrap_or(0);
    if let Some(g) = gaps
        .iter()
        .find(|g| g.topo == "rnp28" && g.intensity == top)
    {
        if g.gap <= 0.0 {
            eprintln!(
                "REGRESSION rnp28 n={}: targeted campaign ({:.3}) did not degrade \
                 reachability below the random control ({:.3})",
                g.intensity, g.targeted, g.random
            );
            std::process::exit(1);
        }
    }
}
