//! `kar-trend`: the cross-commit bench observatory and regression gate.
//!
//! Usage: `kar-trend [--repo <dir>] [--out <path>] [--tolerance <frac>]
//! [--check <file>] [--quiet]`
//!
//! Walks every committed revision of the `BENCH_*.json` documents
//! (`git log` / `git show`, plus the working tree) and builds
//! per-metric trajectories: residue-reduction geomean, event-queue
//! speedup, per-cell reachability under attack, breaking-point k (and
//! the k≤2 violation count), bits-per-route and delivery ratio at each
//! scale point. It then:
//!
//! - writes the full trajectory document to `BENCH_trend.json`
//!   (`--out` to relocate),
//! - prints a terminal sparkline report,
//! - exits nonzero (code 1) when any metric's newest point moved more
//!   than `--tolerance` (default 5%) in its "worse" direction relative
//!   to the previous revision — the CI regression gate.
//!
//! `--check <file>` feeds a candidate document (its BENCH identity
//! inferred from the file name) as the newest point instead of the
//! working-tree copy, so CI and tests can ask "would committing this
//! regress anything?" without touching the checkout.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kar_bench::trend::{
    build_series, doc_history, regressions, render_report, trend_json, DocRevision,
    DEFAULT_TOLERANCE, TREND_DOCS,
};

struct Args {
    repo: PathBuf,
    out: PathBuf,
    tolerance: f64,
    checks: Vec<PathBuf>,
    quiet: bool,
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Args, String> {
    let mut parsed = Args {
        repo: PathBuf::from("."),
        out: PathBuf::from("BENCH_trend.json"),
        tolerance: DEFAULT_TOLERANCE,
        checks: Vec::new(),
        quiet: false,
    };
    let mut out_set = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repo" => parsed.repo = args.next().ok_or("--repo needs a value")?.into(),
            "--out" => {
                parsed.out = args.next().ok_or("--out needs a value")?.into();
                out_set = true;
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                parsed.tolerance = v
                    .parse()
                    .map_err(|_| format!("bad --tolerance value: {v}"))?;
            }
            "--check" => parsed
                .checks
                .push(args.next().ok_or("--check needs a value")?.into()),
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if !out_set {
        parsed.out = parsed.repo.join("BENCH_trend.json");
    }
    Ok(parsed)
}

/// Which BENCH document a `--check` file stands in for, from its name:
/// `regressed_dataplane.json` → `BENCH_dataplane.json`.
fn doc_for_check(path: &Path) -> Option<&'static str> {
    let name = path.file_name()?.to_str()?;
    TREND_DOCS.iter().copied().find(|doc| {
        let stem = doc.trim_start_matches("BENCH_").trim_end_matches(".json");
        name.contains(stem)
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("kar-trend: {msg}");
            eprintln!(
                "usage: kar-trend [--repo <dir>] [--out <path>] [--tolerance <frac>] \
                 [--check <file>] [--quiet]"
            );
            return ExitCode::from(2);
        }
    };
    let mut histories: Vec<(String, Vec<DocRevision>)> = TREND_DOCS
        .iter()
        .map(|doc| (doc.to_string(), doc_history(&args.repo, doc)))
        .collect();
    for check in &args.checks {
        let Some(doc) = doc_for_check(check) else {
            eprintln!(
                "kar-trend: cannot tell which BENCH document {} stands in for \
                 (name must contain dataplane/scale/breaking/adversary/service/hier)",
                check.display()
            );
            return ExitCode::from(2);
        };
        let content = match std::fs::read_to_string(check) {
            Ok(c) => c,
            Err(err) => {
                eprintln!("kar-trend: cannot read {}: {err}", check.display());
                return ExitCode::from(2);
            }
        };
        let revs = &mut histories.iter_mut().find(|(d, _)| d == doc).unwrap().1;
        // The candidate replaces the working-tree point: it is the
        // would-be newest revision.
        if revs.last().map(|r| r.commit == "worktree").unwrap_or(false) {
            revs.pop();
        }
        let ts = revs.last().map(|r| r.ts).unwrap_or(0);
        revs.push(DocRevision {
            commit: "candidate".to_string(),
            ts,
            content,
        });
    }
    if histories.iter().all(|(_, revs)| revs.is_empty()) {
        eprintln!(
            "kar-trend: no BENCH_*.json documents found under {}",
            args.repo.display()
        );
        return ExitCode::from(2);
    }
    let series = build_series(&histories);
    let regs = regressions(&series, args.tolerance);
    let doc = trend_json(&series, &regs, args.tolerance);
    if let Err(err) = std::fs::write(&args.out, &doc) {
        eprintln!("kar-trend: cannot write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    if !args.quiet {
        print!("{}", render_report(&series, &regs, args.tolerance));
        println!();
    }
    eprintln!("trend: wrote {}", args.out.display());
    if regs.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "kar-trend: {} metric(s) regressed beyond {:.1}% — failing",
            regs.len(),
            args.tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let parse = |a: &[&str]| parse_args(a.iter().map(|s| s.to_string()));
        let args = parse(&[]).unwrap();
        assert_eq!(args.repo, PathBuf::from("."));
        assert_eq!(args.out, PathBuf::from("./BENCH_trend.json"));
        assert_eq!(args.tolerance, DEFAULT_TOLERANCE);
        let args = parse(&[
            "--repo",
            "/r",
            "--out",
            "/tmp/t.json",
            "--tolerance",
            "0.1",
            "--check",
            "bad_dataplane.json",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(args.repo, PathBuf::from("/r"));
        assert_eq!(args.out, PathBuf::from("/tmp/t.json"));
        assert_eq!(args.tolerance, 0.1);
        assert_eq!(args.checks, vec![PathBuf::from("bad_dataplane.json")]);
        assert!(args.quiet);
        assert!(parse(&["--tolerance", "x"]).is_err());
        assert!(parse(&["stray"]).is_err());
    }

    #[test]
    fn check_files_map_to_their_documents() {
        let doc = |n: &str| doc_for_check(Path::new(n));
        assert_eq!(
            doc("regressed_dataplane.json"),
            Some("BENCH_dataplane.json")
        );
        assert_eq!(doc("/tmp/x/scale_candidate.json"), Some("BENCH_scale.json"));
        assert_eq!(doc("breaking.json"), Some("BENCH_breaking.json"));
        assert_eq!(doc("adversary2.json"), Some("BENCH_adversary.json"));
        assert_eq!(doc("BENCH_service_ci.json"), Some("BENCH_service.json"));
        assert_eq!(doc("BENCH_hier_ci.json"), Some("BENCH_hier.json"));
        assert_eq!(doc("mystery.json"), None);
    }
}
