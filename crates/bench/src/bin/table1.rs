//! Regenerates Table 1 (route-ID bit lengths, 15-node network).
fn main() {
    let rows = kar_bench::experiments::table1::compute();
    print!("{}", kar_bench::experiments::table1::render(&rows));
}
