//! Ablation: hitless-ness vs failure-detection latency.
use kar_bench::experiments::detection;
use kar_bench::harness::env_knob;

fn main() {
    let probes = env_knob("KAR_PROBES", 500);
    let seed = env_knob("KAR_SEED", 1);
    let delays = [0u64, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000];
    print!(
        "{}",
        detection::render(probes, &detection::run(&delays, probes, seed))
    );
}
