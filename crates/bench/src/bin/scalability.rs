//! Encoding scalability sweep: KAR vs Slick headers vs fast-failover state.
use kar_bench::experiments::scalability;

fn main() {
    print!("{}", scalability::render(&scalability::run()));
}
