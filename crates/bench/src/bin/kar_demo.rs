//! `kar_demo` — interactive command-line driver for the KAR simulator.
//!
//! ```text
//! kar_demo <command> [options]
//!
//! Commands:
//!   route      Show a route encoding (switches, ports, route ID, bits)
//!   residues   Decode a route ID at every switch of the network
//!   probe      Send probes across an optional failure and report stats
//!   dot        Emit the topology as Graphviz DOT
//!
//! Options:
//!   --topo topo15|rnp28       topology            (default topo15)
//!   --from NAME --to NAME     endpoints           (default first/last edge)
//!   --fail A-B                fail link A-B at t=0
//!   --technique none|hp|avp|nip                   (default nip)
//!   --protection none|partial|full|auto           (default auto)
//!   --probes N                                    (default 100)
//!   --seed N                                      (default 1)
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p kar-bench --bin kar_demo -- probe --fail SW7-SW13
//! cargo run --release -p kar-bench --bin kar_demo -- route --topo rnp28 \
//!     --from E_BV --to E_SP --protection partial
//! cargo run -p kar-bench --bin kar_demo -- dot --topo rnp28 | dot -Tsvg > rnp.svg
//! ```

use kar::analysis::render_residue_table;
use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::{rnp28, to_dot, topo15, NodeId, Topology};
use std::process::ExitCode;

struct Args {
    command: String,
    topo: String,
    from: Option<String>,
    to: Option<String>,
    fail: Option<String>,
    technique: DeflectionTechnique,
    protection: String,
    probes: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv
        .next()
        .ok_or("missing command (route|residues|probe|dot)")?;
    let mut args = Args {
        command,
        topo: "topo15".into(),
        from: None,
        to: None,
        fail: None,
        technique: DeflectionTechnique::Nip,
        protection: "auto".into(),
        probes: 100,
        seed: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--topo" => args.topo = value()?,
            "--from" => args.from = Some(value()?),
            "--to" => args.to = Some(value()?),
            "--fail" => args.fail = Some(value()?),
            "--probes" => args.probes = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--technique" => {
                args.technique = match value()?.as_str() {
                    "none" => DeflectionTechnique::None,
                    "hp" => DeflectionTechnique::HotPotato,
                    "avp" => DeflectionTechnique::Avp,
                    "nip" => DeflectionTechnique::Nip,
                    other => return Err(format!("unknown technique {other}")),
                }
            }
            "--protection" => args.protection = value()?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_topo(name: &str) -> Result<Topology, String> {
    match name {
        "topo15" => Ok(topo15::build()),
        "rnp28" => Ok(rnp28::build()),
        other => Err(format!("unknown topology {other} (use topo15|rnp28)")),
    }
}

fn endpoints(topo: &Topology, args: &Args) -> Result<(NodeId, NodeId), String> {
    let edges = topo.edge_nodes();
    let resolve = |name: &Option<String>, default: NodeId| -> Result<NodeId, String> {
        match name {
            Some(n) => topo.find(n).ok_or(format!("no node named {n}")),
            None => Ok(default),
        }
    };
    let from = resolve(&args.from, *edges.first().ok_or("no edges")?)?;
    let to = resolve(&args.to, *edges.last().ok_or("no edges")?)?;
    Ok((from, to))
}

fn protection(topo: &Topology, args: &Args) -> Result<Protection, String> {
    match (args.protection.as_str(), args.topo.as_str()) {
        ("none", _) => Ok(Protection::None),
        ("auto" | "full", _) => Ok(Protection::AutoFull),
        ("partial", "topo15") => Ok(Protection::Segments(topo15::protection_pairs(
            topo,
            &topo15::PARTIAL_PROTECTION,
        ))),
        ("partial", "rnp28") => Ok(Protection::Segments(
            rnp28::FIG7_PROTECTION
                .iter()
                .map(|&(a, b)| (topo.expect(a), topo.expect(b)))
                .collect(),
        )),
        (other, _) => Err(format!("unknown protection {other}")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let topo = build_topo(&args.topo)?;
    match args.command.as_str() {
        "dot" => {
            print!("{}", to_dot(&topo));
            Ok(())
        }
        "route" | "residues" => {
            let (from, to) = endpoints(&topo, &args)?;
            let prot = protection(&topo, &args)?;
            let mut net = KarNetwork::new(&topo, args.technique);
            let route = net
                .encode(&EncodeRequest::new(from, to).with_protection(prot))
                .map_err(|e| e.to_string())?
                .route;
            println!(
                "route {} → {}: {} switches, {} header bits",
                topo.node(from).name,
                topo.node(to).name,
                route.pairs.len(),
                route.bit_length()
            );
            if args.command == "route" {
                println!("route id: {}", route.route_id);
                for &(id, port) in &route.pairs {
                    let node = topo.find_switch(id).expect("switch exists");
                    let peer = topo
                        .neighbors(node)
                        .find(|&(p, _, _)| p == port)
                        .map(|(_, _, n)| topo.node(n).name.clone())
                        .unwrap_or_else(|| "?".into());
                    println!(
                        "  {} (id {id}) exits port {port} → {peer}",
                        topo.node(node).name
                    );
                }
            } else {
                print!("{}", render_residue_table(&topo, &route));
            }
            Ok(())
        }
        "probe" => {
            let (from, to) = endpoints(&topo, &args)?;
            let prot = protection(&topo, &args)?;
            let mut net = KarNetwork::builder(&topo, args.technique)
                .seed(args.seed)
                .ttl(255)
                .build();
            net.encode(&EncodeRequest::new(from, to).with_protection(prot))
                .map_err(|e| e.to_string())?;
            let mut sim = net.into_sim();
            if let Some(spec) = &args.fail {
                let (a, b) = spec
                    .split_once('-')
                    .ok_or("use --fail A-B with node names")?;
                let link = topo
                    .link_between(
                        topo.find(a).ok_or(format!("no node {a}"))?,
                        topo.find(b).ok_or(format!("no node {b}"))?,
                    )
                    .ok_or(format!("no link {spec}"))?;
                sim.schedule_link_down(SimTime::ZERO, link);
            }
            for i in 0..args.probes {
                sim.run_until(SimTime(i * 200_000));
                sim.inject(from, to, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            let s = sim.stats();
            println!(
                "{} / {} delivered | {} deflections | mean {:.1} hops (max {}) | mean latency {:.2} ms",
                s.delivered,
                s.injected,
                s.deflections,
                s.mean_hops().unwrap_or(0.0),
                s.max_hops,
                s.mean_latency_s().unwrap_or(0.0) * 1e3
            );
            for (reason, n) in &s.drops {
                println!("  dropped ({reason}): {n}");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown command {other} (route|residues|probe|dot)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kar_demo: {e}");
            eprintln!("see `kar_demo --help` in the module docs for usage");
            ExitCode::FAILURE
        }
    }
}
