//! Breaking-point sweep (`BENCH_breaking.json`): per
//! (pair, technique, protection) cell on topo15 and rnp28, the smallest
//! failure set that defeats the dataplane — symbolic search via
//! `min_failure_set`, witness replayed through the real forwarder, and
//! the table-based baselines measured under the identical failures.
//!
//! Flags (on top of the common quartet):
//!
//! * `--max-k N` — largest failure-set size searched (default 3);
//! * `--topo NAME` — `topo15`, `rnp28` or `both` (default `both`);
//! * `--probes N` — probes per replay (default 20);
//! * `--out PATH` (or `KAR_BREAKING_OUT`) — where to write the JSON
//!   document (default `BENCH_breaking.json` at the repository root).
//!
//! The document contains no wall-clock fields: it is a pure function of
//! the configuration, byte-identical across runs, and is committed at
//! the repository root so changes to the resilience frontier show up in
//! review diffs.

use kar_bench::cli::{flag_value, CommonArgs};
use kar_bench::experiments::breaking;
use kar_topology::{rnp28, topo15};
use std::path::PathBuf;

fn main() {
    let common = CommonArgs::parse(11);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_k: usize = flag_value(&args, "--max-k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let probes: u64 = flag_value(&args, "--probes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let which = flag_value(&args, "--topo").unwrap_or_else(|| "both".into());
    let mut cells = Vec::new();
    if which == "both" || which == "topo15" {
        let topo = topo15::build();
        cells.extend(breaking::run_pair(
            &topo,
            "topo15",
            "AS1",
            "AS3",
            max_k,
            common.seed,
            probes,
        ));
    }
    if which == "both" || which == "rnp28" {
        let topo = rnp28::build();
        for (src, dst) in [("E_BV", "E_SP"), ("E_BH", "E_113")] {
            cells.extend(breaking::run_pair(
                &topo,
                "rnp28",
                src,
                dst,
                max_k,
                common.seed,
                probes,
            ));
        }
    }
    print!("{}", breaking::render(&cells));
    let broken = cells.iter().filter(|c| c.breaking.is_some()).count();
    let unconfirmed: Vec<&breaking::BreakingCell> = cells
        .iter()
        .filter(|c| c.breaking.as_ref().is_some_and(|d| !d.replay.confirms))
        .collect();
    eprintln!(
        "fig_breaking: {} cells, {} with a breaking point <= k={}, {} unconfirmed replays",
        cells.len(),
        broken,
        max_k,
        unconfirmed.len()
    );
    let out = flag_value(&args, "--out")
        .or_else(|| std::env::var("KAR_BREAKING_OUT").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_breaking.json")
        });
    match std::fs::write(&out, breaking::to_json(&cells)) {
        Ok(()) => eprintln!("fig_breaking: wrote {}", out.display()),
        Err(e) => eprintln!("fig_breaking: cannot write {}: {e}", out.display()),
    }
    common.finish();
    if !unconfirmed.is_empty() {
        for c in &unconfirmed {
            let d = c.breaking.as_ref().unwrap();
            eprintln!(
                "UNCONFIRMED {}/{}→{}/{}/{}: witness {:?} predicted {} but no replay seed reproduced it",
                c.topo,
                c.src,
                c.dst,
                c.technique.label(),
                c.protection,
                d.links,
                d.outcome
            );
        }
        std::process::exit(1);
    }
}
