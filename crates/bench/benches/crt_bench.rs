//! Microbenchmarks of the RNS encoding hot paths: route-ID computation
//! (controller side, per route), incremental extension (adding one
//! protection segment), and the per-packet residue (dataplane side).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kar_rns::{crt_decode, crt_encode, crt_extend, is_prime, residue, BigUint, RnsBasis};

fn basis_of(len: usize) -> (RnsBasis, Vec<u64>) {
    let moduli: Vec<u64> = (3u64..).filter(|&n| is_prime(n)).take(len).collect();
    let ports: Vec<u64> = moduli.iter().map(|&m| m - 1).collect();
    (RnsBasis::new(moduli).unwrap(), ports)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_encode");
    for len in [4usize, 8, 16, 32, 64] {
        let (basis, ports) = basis_of(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_encode(black_box(&basis), black_box(&ports)).unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_decode");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_decode(black_box(&r), black_box(&basis)))
        });
    }
    group.finish();
}

fn bench_extend(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_extend");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        let extra = (1000u64..).find(|&n| is_prime(n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_extend(black_box(&r), black_box(&basis), extra, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_residue(c: &mut Criterion) {
    // The entire per-packet dataplane operation: one modulo of a large
    // route ID by a small switch ID.
    let mut group = c.benchmark_group("residue_per_packet");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        group.bench_with_input(
            BenchmarkId::new("bits", basis.bit_length()),
            &len,
            |b, _| b.iter(|| residue(black_box(&r), black_box(101))),
        );
    }
    group.finish();
}

fn bench_biguint_ops(c: &mut Criterion) {
    let a: BigUint = "340282366920938463463374607431768211456123456789"
        .parse()
        .unwrap();
    let b_: BigUint = "987654321987654321987654321".parse().unwrap();
    c.bench_function("biguint_mul_160x90_bits", |b| {
        b.iter(|| black_box(&a).mul_big(black_box(&b_)))
    });
    c.bench_function("biguint_divmod_160_by_90_bits", |b| {
        b.iter(|| black_box(&a).divmod_big(black_box(&b_)))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_extend,
    bench_residue,
    bench_biguint_ops
);
criterion_main!(benches);
