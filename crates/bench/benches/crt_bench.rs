//! Microbenchmarks of the RNS encoding hot paths: route-ID computation
//! (controller side, per route), incremental extension (adding one
//! protection segment), and the per-packet residue (dataplane side).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kar::{EncodedRoute, EncodingCache, Protection, RouteSpec};
use kar_rns::{crt_decode, crt_encode, crt_extend, is_prime, residue, BigUint, CrtCache, RnsBasis};
use kar_topology::topo15;

fn basis_of(len: usize) -> (RnsBasis, Vec<u64>) {
    let moduli: Vec<u64> = (3u64..).filter(|&n| is_prime(n)).take(len).collect();
    let ports: Vec<u64> = moduli.iter().map(|&m| m - 1).collect();
    (RnsBasis::new(moduli).unwrap(), ports)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_encode");
    for len in [4usize, 8, 16, 32, 64] {
        let (basis, ports) = basis_of(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_encode(black_box(&basis), black_box(&ports)).unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_decode");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_decode(black_box(&r), black_box(&basis)))
        });
    }
    group.finish();
}

fn bench_extend(c: &mut Criterion) {
    let mut group = c.benchmark_group("crt_extend");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        let extra = (1000u64..).find(|&n| is_prime(n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| crt_extend(black_box(&r), black_box(&basis), extra, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_residue(c: &mut Criterion) {
    // The entire per-packet dataplane operation: one modulo of a large
    // route ID by a small switch ID.
    let mut group = c.benchmark_group("residue_per_packet");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        let r = crt_encode(&basis, &ports).unwrap();
        group.bench_with_input(
            BenchmarkId::new("bits", basis.bit_length()),
            &len,
            |b, _| b.iter(|| residue(black_box(&r), black_box(101))),
        );
    }
    group.finish();
}

fn bench_encode_cached(c: &mut Criterion) {
    // Repeated-path workload: a sweep asks for the same route over and
    // over (every Fig. 5 cell re-encodes the same primary + protection).
    // The cache turns the CRT arithmetic into one hash lookup.
    let mut group = c.benchmark_group("crt_encode_repeated");
    for len in [4usize, 16, 64] {
        let (basis, ports) = basis_of(len);
        group.bench_with_input(BenchmarkId::new("uncached", len), &len, |b, _| {
            b.iter(|| crt_encode(black_box(&basis), black_box(&ports)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cached", len), &len, |b, _| {
            let mut cache = CrtCache::new();
            b.iter(|| cache.encode(black_box(&basis), black_box(&ports)).unwrap())
        });
    }
    group.finish();
}

fn bench_route_encode_cached(c: &mut Criterion) {
    // The full controller path on topo15 with full protection (the
    // route every Fig. 5 full-protection run installs).
    let topo = topo15::build();
    let primary = topo15::primary_route(&topo);
    let segments = kar::protection::plan_full(&topo, &primary);
    let spec = RouteSpec::protected(primary.clone(), segments);
    let mut group = c.benchmark_group("route_encode_repeated");
    group.bench_function("uncached", |b| {
        b.iter(|| EncodedRoute::encode(black_box(&topo), black_box(&spec)).unwrap())
    });
    group.bench_function("cached", |b| {
        let cache = EncodingCache::new();
        b.iter(|| cache.encode(black_box(&topo), black_box(&spec)).unwrap())
    });
    group.bench_function("cached_auto_full", |b| {
        let cache = EncodingCache::new();
        b.iter(|| {
            cache
                .encode_with_protection(
                    black_box(&topo),
                    primary.clone(),
                    black_box(&Protection::AutoFull),
                )
                .unwrap()
        })
    });
    group.finish();
}

fn bench_biguint_ops(c: &mut Criterion) {
    let a: BigUint = "340282366920938463463374607431768211456123456789"
        .parse()
        .unwrap();
    let b_: BigUint = "987654321987654321987654321".parse().unwrap();
    c.bench_function("biguint_mul_160x90_bits", |b| {
        b.iter(|| black_box(&a).mul_big(black_box(&b_)))
    });
    c.bench_function("biguint_divmod_160_by_90_bits", |b| {
        b.iter(|| black_box(&a).divmod_big(black_box(&b_)))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_extend,
    bench_residue,
    bench_encode_cached,
    bench_route_encode_cached,
    bench_biguint_ops
);
criterion_main!(benches);
