//! Per-packet forwarding-decision latency: KAR's stateless modulo
//! forwarding (with each deflection technique) versus the stateful
//! table-based fast-failover baseline — the "simple, low-cost switches"
//! claim of the paper's conclusion, quantified.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kar::{DeflectionTechnique, KarForwarder, Protection};
use kar_baselines::FastFailover;
use kar_rns::BigUint;
use kar_simnet::{FlowId, Forwarder, Packet, PacketKind, RouteTag, SimTime, SwitchCtx};
use kar_topology::topo15;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn probe(
    route_id: Option<BigUint>,
    src: kar_topology::NodeId,
    dst: kar_topology::NodeId,
) -> Packet {
    Packet {
        id: 0,
        flow: FlowId(0),
        seq: 0,
        kind: PacketKind::Probe,
        size_bytes: 1500,
        src,
        dst,
        route: route_id.map(RouteTag::new),
        ttl: 64,
        hops: 0,
        deflections: 0,
        created: SimTime::ZERO,
    }
}

fn bench_forwarding(c: &mut Criterion) {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let sw13 = topo.expect("SW13");
    // A realistic protected route ID (43 bits).
    let mut controller = kar::Controller::new();
    let route = controller
        .install_explicit(
            &topo,
            kar_topology::topo15::primary_route(&topo),
            &Protection::AutoFull,
        )
        .unwrap();
    let statuses_up = vec![true; topo.node(sw13).degree()];
    let mut statuses_fail = statuses_up.clone();
    let out_port = route.port_at(13) as usize;
    statuses_fail[out_port] = false;
    let mut rng = StdRng::seed_from_u64(1);

    let mut group = c.benchmark_group("forwarding_decision");
    for technique in DeflectionTechnique::ALL {
        let mut fwd = KarForwarder::new(technique);
        // Healthy path: pure modulo.
        group.bench_function(format!("{technique}/healthy"), |b| {
            b.iter(|| {
                let mut pkt = probe(Some(route.route_id.clone()), as1, as3);
                let ctx = SwitchCtx {
                    topo: &topo,
                    node: sw13,
                    switch_id: 13,
                    in_port: Some(0),
                    ports: &statuses_up,
                    now: SimTime::ZERO,
                    reducer: None,
                    behavior: kar_simnet::Behavior::Honest,
                };
                black_box(fwd.forward(&ctx, &mut pkt, &mut rng))
            })
        });
        // Failed output port: drop or deflect.
        group.bench_function(format!("{technique}/failed_port"), |b| {
            b.iter(|| {
                let mut pkt = probe(Some(route.route_id.clone()), as1, as3);
                let ctx = SwitchCtx {
                    topo: &topo,
                    node: sw13,
                    switch_id: 13,
                    in_port: Some(0),
                    ports: &statuses_fail,
                    now: SimTime::ZERO,
                    reducer: None,
                    behavior: kar_simnet::Behavior::Honest,
                };
                black_box(fwd.forward(&ctx, &mut pkt, &mut rng))
            })
        });
    }

    // Stateful baseline for comparison.
    let mut ff = FastFailover::precompute(&topo, &[as1, as3]);
    group.bench_function("FastFailover/healthy", |b| {
        b.iter(|| {
            let mut pkt = probe(None, as1, as3);
            let ctx = SwitchCtx {
                topo: &topo,
                node: sw13,
                switch_id: 13,
                in_port: Some(0),
                ports: &statuses_up,
                now: SimTime::ZERO,
                reducer: None,
                behavior: kar_simnet::Behavior::Honest,
            };
            black_box(ff.forward(&ctx, &mut pkt, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
