//! Dataplane fast-path benchmark: measures the three optimizations the
//! fast path bundles — precomputed-residue reduction, the calendar event
//! queue, and `Arc`-shared route tags — each against the code path it
//! replaced, and writes the numbers to `BENCH_dataplane.json` at the
//! repo root (override with `KAR_BENCH_OUT`).
//!
//! The vendored criterion stand-in has no JSON reporter, so this bench
//! times with `Instant` directly: per case it runs `TRIALS` timed trials
//! after a warmup and keeps the minimum (the usual floor estimator for
//! a noisy shared machine). `--smoke` (or `KAR_BENCH_SMOKE=1`) shrinks
//! the repetition counts so CI can check the bench still runs without
//! paying the full measurement.
//!
//! The headline number: per-hop forwarding on the rnp28 hot loop (the
//! fig7 Belo Horizonte → São Paulo path under full protection), naive
//! division vs the per-switch [`Reducer`] — the acceptance gate wants
//! ≥3× here.

use kar::{Controller, DeflectionTechnique, KarForwarder, Protection};
use kar_rns::{BigUint, Reducer};
use kar_simnet::{
    CalendarQueue, FlowId, Forwarder, Packet, PacketKind, RouteTag, SimTime, SwitchCtx,
};
use kar_topology::{rnp28, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

const TRIALS: usize = 7;

/// Nanoseconds per call: minimum over `TRIALS` timed trials of `reps`
/// calls each, after one warmup trial.
fn time_ns<F: FnMut()>(reps: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for trial in 0..=TRIALS {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = t.elapsed().as_nanos() as f64 / reps as f64;
        if trial > 0 && ns < best {
            best = ns;
        }
    }
    best
}

fn probe(topo: &Topology, route_id: &BigUint) -> Packet {
    Packet {
        id: 0,
        flow: FlowId(0),
        seq: 0,
        kind: PacketKind::Probe,
        size_bytes: 1500,
        src: topo.expect("E_BV"),
        dst: topo.expect("E_SP"),
        route: Some(RouteTag::new(route_id.clone())),
        ttl: 64,
        hops: 0,
        deflections: 0,
        created: SimTime::ZERO,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("KAR_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let scale: u64 = if smoke { 200 } else { 200_000 };

    let topo = rnp28::build();
    let mut controller = Controller::new();
    let route = controller
        .install_explicit(
            &topo,
            rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect(),
            &Protection::AutoFull,
        )
        .expect("fig7 route installs");
    let route_id = &route.route_id;
    println!(
        "rnp28 fig7 route under AutoFull: {} switches folded, route ID {} bits",
        route.pairs.len(),
        route_id.bits()
    );

    // --- 1. Raw residue: naive division vs precomputed reducer, per
    // switch of the hot loop. ---
    let mut per_switch = Vec::new();
    for &(id, _port) in &route.pairs {
        let red = Reducer::new(id);
        assert_eq!(red.rem(route_id), route_id.rem_u64(id));
        let naive = time_ns(scale, || {
            black_box(black_box(route_id).rem_u64(black_box(id)));
        });
        let fast = time_ns(scale, || {
            black_box(black_box(&red).rem(black_box(route_id)));
        });
        per_switch.push((id, naive, fast));
    }
    let residue_speedup = geomean(per_switch.iter().map(|&(_, n, f)| n / f));
    println!(
        "residue: geomean speedup {residue_speedup:.2}x over {} switches",
        per_switch.len()
    );

    // --- 2. Full per-hop forwarding decision at a hot-loop core switch,
    // reducer off vs on (what the engine actually runs per packet). ---
    let sw13 = topo.expect("SW13");
    let switch_id = topo.switch_id(sw13).expect("SW13 is a core switch");
    let ports_up = vec![true; topo.node(sw13).degree()];
    let reducer = Reducer::new(switch_id);
    let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
    let mut rng = StdRng::seed_from_u64(1);
    let shared: std::sync::Arc<BigUint> = std::sync::Arc::new(route_id.clone());
    let mut pkt = probe(&topo, route_id);
    let mut forward_pair = [0.0f64; 2];
    for (i, red) in [None, Some(&reducer)].into_iter().enumerate() {
        forward_pair[i] = time_ns(scale, || {
            // Fresh tag each decision (an Arc bump) so the residue memo
            // never turns the measurement into a cache-hit benchmark.
            pkt.route = Some(RouteTag::new(shared.clone()));
            let ctx = SwitchCtx {
                topo: &topo,
                node: sw13,
                switch_id,
                in_port: Some(0),
                ports: &ports_up,
                now: SimTime::ZERO,
                reducer: red,
                behavior: kar_simnet::Behavior::Honest,
            };
            black_box(fwd.forward(&ctx, &mut pkt, &mut rng));
        });
    }
    let [forward_slow, forward_fast] = forward_pair;
    let forward_speedup = forward_slow / forward_fast;
    println!(
        "per-hop forward: {forward_slow:.1} ns -> {forward_fast:.1} ns ({forward_speedup:.2}x)"
    );

    // --- 3. Route tag clone: the old per-packet deep BigUint copy vs the
    // arena'd Arc bump, at the fig7 route size and at a wide route (the
    // Arc is O(1) in route width; the deep copy is not). ---
    let p = route.basis.product();
    let wide: BigUint = p.mul_big(&p).mul_big(&p).mul_big(&p);
    let mut clone_sizes = Vec::new();
    for rid in [route_id, &wide] {
        let tag = RouteTag::new(rid.clone());
        let deep_ns = time_ns(scale, || {
            black_box(RouteTag::new(black_box(rid).clone()));
        });
        let arc_ns = time_ns(scale, || {
            black_box(black_box(&tag).clone());
        });
        println!(
            "route tag clone at {} bits: deep {deep_ns:.1} ns vs arc {arc_ns:.1} ns",
            rid.bits()
        );
        clone_sizes.push((rid.bits(), deep_ns, arc_ns));
    }

    // --- 4. Event queue: hold-steady churn (pop one, push a successor),
    // the engine's pattern, BinaryHeap vs CalendarQueue. ---
    let backlog = 4096usize;
    let churn = if smoke { 10_000u64 } else { 2_000_000 };
    let offsets: Vec<u64> = {
        let mut r = StdRng::seed_from_u64(7);
        (0..8192)
            .map(|_| {
                if r.gen_bool(0.95) {
                    r.gen_range(1u64..100_000) // near future: packet events
                } else {
                    r.gen_range(1_000_000u64..1_000_000_000) // timer tail
                }
            })
            .collect()
    };
    let heap_ns = {
        let run = || {
            let mut q: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for i in 0..backlog {
                q.push(Reverse((SimTime(offsets[i % offsets.len()]), seq, 0)));
                seq += 1;
            }
            let t = Instant::now();
            for i in 0..churn {
                let Reverse((at, _, _)) = q.pop().expect("backlog never drains");
                q.push(Reverse((
                    at + SimTime(offsets[i as usize % offsets.len()]),
                    seq,
                    0,
                )));
                seq += 1;
            }
            black_box(&q);
            t.elapsed().as_nanos() as f64 / churn as f64
        };
        (0..=TRIALS)
            .map(|_| run())
            .skip(1)
            .fold(f64::INFINITY, f64::min)
    };
    let cal_ns = {
        let run = || {
            let mut q: CalendarQueue<u32> = CalendarQueue::default();
            let mut seq = 0u64;
            for i in 0..backlog {
                q.push(SimTime(offsets[i % offsets.len()]), seq, 0);
                seq += 1;
            }
            let t = Instant::now();
            for i in 0..churn {
                let e = q.pop().expect("backlog never drains");
                q.push(e.at + SimTime(offsets[i as usize % offsets.len()]), seq, 0);
                seq += 1;
            }
            black_box(&q);
            t.elapsed().as_nanos() as f64 / churn as f64
        };
        (0..=TRIALS)
            .map(|_| run())
            .skip(1)
            .fold(f64::INFINITY, f64::min)
    };
    let queue_speedup = heap_ns / cal_ns;
    println!(
        "event queue churn (backlog {backlog}): heap {heap_ns:.1} ns/op vs calendar {cal_ns:.1} ns/op ({queue_speedup:.2}x)"
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"dataplane\",\n  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"residue_rnp28\": {{\n    \"route\": \"fig7 E_BV->E_SP AutoFull\",\n    \"route_bits\": {},\n    \"per_switch\": [\n",
        route_id.bits()
    ));
    for (i, &(id, naive, fast)) in per_switch.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"switch_id\": {id}, \"naive_ns\": {naive:.2}, \"reducer_ns\": {fast:.2}, \"speedup\": {:.2}}}{}\n",
            naive / fast,
            if i + 1 < per_switch.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"geomean_speedup\": {residue_speedup:.2}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"forward_rnp28_sw13\": {{\"slow_ns\": {forward_slow:.2}, \"fast_ns\": {forward_fast:.2}, \"speedup\": {forward_speedup:.2}}},\n"
    ));
    json.push_str("  \"route_tag_clone\": [\n");
    for (i, &(bits, deep_ns, arc_ns)) in clone_sizes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"route_bits\": {bits}, \"deep_ns\": {deep_ns:.2}, \"arc_ns\": {arc_ns:.2}, \"speedup\": {:.2}}}{}\n",
            deep_ns / arc_ns,
            if i + 1 < clone_sizes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"event_queue\": {{\"backlog\": {backlog}, \"churn_ops\": {churn}, \"heap_ns_per_op\": {heap_ns:.2}, \"calendar_ns_per_op\": {cal_ns:.2}, \"speedup\": {queue_speedup:.2}}}\n"
    ));
    json.push_str("}\n");

    let out = std::env::var("KAR_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_dataplane.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_dataplane.json");
    println!("wrote {out}");
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = vals.fold((0.0, 0u32), |(s, n), v| (s + v.ln(), n + 1));
    (sum / n as f64).exp()
}
