//! Simulator throughput: how many simulated packets/second the
//! discrete-event engine processes for probe streams and full TCP over
//! the 15-node network — the cost of the substrate itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_tcp::{BulkFlow, TcpConfig};
use kar_topology::topo15;

fn bench_probe_stream(c: &mut Criterion) {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    const PROBES: u64 = 1_000;
    let mut group = c.benchmark_group("simnet_probe_stream");
    group.throughput(Throughput::Elements(PROBES));
    group.bench_function("topo15_1000_probes", |b| {
        b.iter_batched(
            || {
                let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                    .seed(1)
                    .build();
                net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                    .unwrap();
                net.into_sim()
            },
            |mut sim| {
                for i in 0..PROBES {
                    // Pace below line rate so drop-tail queues never fill.
                    sim.run_until(SimTime(i * 100_000));
                    sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
                }
                sim.run_to_quiescence();
                assert_eq!(sim.stats().delivered, PROBES);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tcp_simulated_second(c: &mut Criterion) {
    let topo = topo15::build();
    let as1 = topo.expect("AS1");
    let as3 = topo.expect("AS3");
    let mut group = c.benchmark_group("simnet_tcp");
    group.sample_size(10);
    group.bench_function("one_simulated_second_at_200mbps", |b| {
        b.iter_batched(
            || {
                let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                    .seed(1)
                    .build();
                net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                    .unwrap();
                net.encode(&EncodeRequest::new(as3, as1).with_protection(Protection::AutoFull))
                    .unwrap();
                let mut sim = net.into_sim();
                let flow = BulkFlow::install(
                    &mut sim,
                    as1,
                    as3,
                    FlowId(1),
                    TcpConfig::default(),
                    SimTime::from_secs(1),
                );
                (sim, flow)
            },
            |(mut sim, flow)| {
                sim.run_until(SimTime::from_secs(1));
                assert!(flow.meter.borrow().total_bytes() > 0);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_probe_stream, bench_tcp_simulated_second);
criterion_main!(benches);
