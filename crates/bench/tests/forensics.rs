//! Flight-recorder integration test on the pinned AVP rnp28 loop.
//!
//! `BENCH_breaking.json` pins this breaking point: on the RNP backbone,
//! the `E_BH → E_113` route under AVP deflection breaks at k=1 — fail
//! `SW107-SW113` and every probe random-walks into a TTL-bounded loop
//! (seed 11, 20 injected, 20 TTL drops). That makes it the canonical
//! smoke case for the anomaly-triggered flight recorder: each TTL drop
//! must freeze a "loop" capture, and `kar-inspect forensics` must
//! render the full causal chain from the fault to the dropped packet.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork};
use kar_obs::{Obs, ObsHandle, RunDump, TopoLabeler};
use kar_simnet::{FlowId, PacketKind, SimTime};
use kar_topology::rnp28;
use std::sync::Arc;

#[test]
fn avp_rnp28_loop_freezes_forensic_captures_with_the_causal_chain() {
    let topo = rnp28::build();
    let src = topo.expect("E_BH");
    let dst = topo.expect("E_113");
    let link = topo.expect_link("SW107", "SW113");

    // Observability attached directly (no process-global sink — this
    // test binary runs in parallel with others).
    let bundle = Arc::new(Obs::new());
    let handle = ObsHandle::from_obs(bundle.clone());

    let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Avp)
        .seed(11)
        .ttl(255)
        .build();
    net.encode(&EncodeRequest::new(src, dst))
        .expect("route installs");
    let mut sim = net.into_sim();
    sim.attach_obs(&handle);
    sim.schedule_link_down(SimTime::ZERO, link);
    for i in 0..20 {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();

    // The pinned outcome: probes loop until TTL exhaustion.
    let stats = sim.stats();
    let ttl_drops = stats
        .drops
        .get(&kar_simnet::DropReason::TtlExpired)
        .copied()
        .unwrap_or(0);
    assert!(
        ttl_drops > 0,
        "pinned breaking point no longer reproduces a loop (ttl_drops=0)"
    );

    // Every TTL drop tripped the flight recorder with trigger "loop",
    // bounded by the per-trigger cap; overflow is counted, not lost.
    let captures = bundle.forensics.captures();
    assert!(!captures.is_empty(), "no forensic captures were frozen");
    assert!(
        captures.iter().all(|c| c.trigger == "loop"),
        "unexpected triggers: {:?}",
        captures.iter().map(|c| c.trigger).collect::<Vec<_>>()
    );
    assert!(
        captures.len() as u64 + bundle.forensics.suppressed() >= ttl_drops.min(2),
        "captures + suppressed must account for the drops"
    );
    for c in &captures {
        assert!(c.pkt.is_some(), "loop captures name the dropped packet");
        assert!(!c.recent.is_empty(), "capture froze no recent events");
        assert!(!c.chain.is_empty(), "capture has no causal chain");
    }

    // Round-trip through the dump (what `--metrics` writes) and render
    // the same view `kar-inspect forensics` prints.
    let labeler = TopoLabeler::new(&topo);
    let dump = RunDump::collect_obs("breaking/rnp28/E_BH-E_113/AVP", &bundle, &[], &labeler);
    let text = kar_obs::forensics::render_forensics(&dump);
    assert!(text.contains("FORENSICS —"), "missing header: {text}");
    assert!(text.contains("trigger=loop"), "missing trigger: {text}");
    assert!(text.contains("causal chain"), "missing chain: {text}");
    assert!(
        text.contains("SW107-SW113"),
        "chain must name the failed link: {text}"
    );
    assert!(
        text.contains("drop"),
        "chain must end at the packet's drop: {text}"
    );
}
