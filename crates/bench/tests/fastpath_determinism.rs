//! The CI fast-path gate: the fig4 experiment must render byte-identical
//! output with the precomputed-residue reducer on and off.
//!
//! This is the end-to-end form of the reducer's bit-identity contract
//! (`kar_rns::Reducer` vs naive division) and the calendar queue's order
//! contract: if either ever diverges, per-packet residues or event order
//! shift and the rendered throughput series changes somewhere.
//!
//! `KAR_FAST_PATH` is process-global, so both runs live in one `#[test]`
//! (this file is its own test binary; nothing else here reads the knob).

use kar_bench::experiments::fig4::{self, Fig4Config};

#[test]
fn fig4_output_is_identical_with_fast_path_on_and_off() {
    let cfg = Fig4Config {
        pre_s: 3,
        fail_s: 3,
        post_s: 3,
        seed: 1,
    };
    std::env::set_var("KAR_FAST_PATH", "1");
    let fast = fig4::render(&fig4::run(cfg));
    std::env::set_var("KAR_FAST_PATH", "0");
    let slow = fig4::render(&fig4::run(cfg));
    std::env::remove_var("KAR_FAST_PATH");
    assert!(
        fast == slow,
        "fig4 output diverges between fast and slow dataplane\n--- fast ---\n{fast}\n--- slow ---\n{slow}"
    );
    // Sanity: the scaled-down run actually produced the four curves.
    assert_eq!(
        fast.lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .count(),
        9
    );
}
