//! The adversary-model gate: introducing Byzantine behaviors must not
//! perturb honest runs.
//!
//! Invariant 11 (DESIGN.md): honest-only configurations are
//! byte-identical to the pre-adversary engine — the interposition in
//! `kar_simnet::Sim` takes the exact pre-adversary code path (same
//! branches, zero extra RNG draws) unless a switch was explicitly
//! declared Byzantine. These tests enforce the mechanism from the
//! public API: explicitly marking every switch [`Behavior::Honest`] is
//! byte-identical to saying nothing, Byzantine counters stay zero on
//! honest runs, and flipping a single switch actually changes the
//! outcome (so the gate cannot pass vacuously).

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_baselines::{TableEdge, TableScheme};
use kar_bench::experiments::adversary::{self, AdversaryConfig};
use kar_simnet::{
    Behavior, DropReason, FaultPlan, FlowId, PacketKind, Sim, SimConfig, SimTime, Stats,
};
use kar_topology::{topo15, Topology};

/// A dynamic scenario with enough going on to expose any RNG or event
/// drift: a flap train on the primary path, deflections, recovery off.
fn plan(topo: &Topology) -> FaultPlan {
    FaultPlan::new(7)
        .with_detection(SimTime::from_micros(80))
        .with_detection_jitter(SimTime::from_micros(40))
        .flap(
            topo.expect_link("SW7", "SW13"),
            SimTime::from_millis(5),
            SimTime::from_millis(4),
            0.5,
            3,
        )
}

/// Runs topo15's AS1 → AS3 flow under the flap plan, optionally
/// declaring behaviors for every core switch.
fn run_kar(topo: &Topology, behaviors: Option<Behavior>) -> Stats {
    let mut builder = KarNetwork::builder(topo, DeflectionTechnique::Nip)
        .seed(99)
        .ttl(255)
        .detection_delay(SimTime::from_micros(100));
    if let Some(b) = behaviors {
        for node in topo.core_nodes() {
            builder = builder.byzantine(node, b);
        }
    }
    let mut net = builder.build();
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    net.encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
        .expect("route installs");
    let mut sim = net.into_sim();
    plan(topo).apply(&mut sim);
    for i in 0..60 {
        sim.run_until(SimTime(i * 300_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    sim.stats().clone()
}

/// Same shape for a table-based baseline (exercises `Sim::set_behavior`
/// rather than the builder knob).
fn run_table(topo: &Topology, behaviors: Option<Behavior>) -> Stats {
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    let mut sim = Sim::new(
        topo,
        TableScheme::FastFailover.forwarder(topo, &[src, dst], 99),
        Box::new(TableEdge),
        SimConfig {
            seed: 99,
            default_ttl: 255,
            detection_delay: SimTime::from_micros(100),
            ..SimConfig::default()
        },
    );
    if let Some(b) = behaviors {
        for node in topo.core_nodes() {
            sim.set_behavior(node, b);
        }
    }
    plan(topo).apply(&mut sim);
    for i in 0..60 {
        sim.run_until(SimTime(i * 300_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    sim.stats().clone()
}

/// The invariant itself, for both the KAR dataplane and the table
/// baselines: declaring every switch honest is indistinguishable —
/// field for field, including per-link byte counts and the full drop
/// map — from never mentioning behaviors at all.
#[test]
fn explicit_honest_is_byte_identical_to_default() {
    let topo = topo15::build();
    assert_eq!(run_kar(&topo, None), run_kar(&topo, Some(Behavior::Honest)));
    assert_eq!(
        run_table(&topo, None),
        run_table(&topo, Some(Behavior::Honest))
    );
}

/// Honest runs never touch an adversary counter or drop bucket.
#[test]
fn honest_runs_keep_byzantine_counters_zero() {
    let topo = topo15::build();
    for stats in [run_kar(&topo, None), run_table(&topo, None)] {
        assert_eq!(stats.byzantine_misforwards, 0);
        assert_eq!(stats.byzantine_corruptions, 0);
        assert_eq!(stats.byzantine_drops, 0);
        assert_eq!(stats.dropped_for(DropReason::AdversaryDrop), 0);
        assert_eq!(stats.dropped_for(DropReason::CorruptedResidue), 0);
        assert!(stats.delivered > 0, "scenario carries traffic");
    }
}

/// The gate must not pass vacuously: flipping one switch to a Byzantine
/// behavior changes the run (and registers on the counters).
#[test]
fn a_single_byzantine_switch_changes_the_outcome() {
    let topo = topo15::build();
    let honest = run_kar(&topo, None);
    let byzantine = run_kar(&topo, Some(Behavior::Misforward));
    assert_ne!(honest, byzantine);
    assert!(byzantine.byzantine_misforwards > 0);
}

/// The adversary grid replays byte-identically run-to-run (the
/// committed `BENCH_adversary.json` depends on it).
#[test]
fn adversary_grid_replays_identically() {
    let topo = topo15::build();
    let cfg = AdversaryConfig {
        probes: 30,
        intensities: vec![2],
        ..AdversaryConfig::default()
    };
    let first = adversary::run_topology(&topo, "topo15", &cfg, 2);
    let second = adversary::run_topology(&topo, "topo15", &cfg, 2);
    let a: Vec<String> = first.iter().map(|p| p.digest()).collect();
    let b: Vec<String> = second.iter().map(|p| p.digest()).collect();
    assert_eq!(a, b);
    let gaps = adversary::targeted_vs_random(&first);
    assert_eq!(
        adversary::to_json(&first, &gaps),
        adversary::to_json(&second, &gaps)
    );
}
