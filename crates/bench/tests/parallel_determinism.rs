//! Conformance tests for the parallel runner: a sweep's results must
//! not depend on how many worker threads executed it, and a single run
//! must replay byte-identically from its spec + seed.

use kar::{DeflectionTechnique, EncodingCache, Protection};
use kar_bench::experiments::fig5;
use kar_bench::harness::{run_tcp, FailureWindow, TcpRun};
use kar_bench::runner;
use kar_simnet::SimTime;
use kar_topology::topo15;
use std::sync::Arc;

/// Acceptance criterion of the parallel runner: for the Fig. 5 spec
/// set, `--jobs N` is byte-identical to `--jobs 1`. The digest covers
/// every result field except host wall-clock time — including the full
/// `IntervalMeter` bin series.
#[test]
fn fig5_spec_set_is_byte_identical_across_jobs() {
    let topo = topo15::build();
    // Scaled-down grid: 1 run × 2 s still covers all 18 cells (3
    // failures × 3 protection levels × 2 techniques).
    let (specs, labels) = fig5::spec_set(&topo, 1, 2, 42);
    assert_eq!(specs.len(), 18);
    let serial = runner::run_all(&specs, 1);
    let parallel = runner::run_all(&specs, 4);
    assert_eq!(serial.len(), parallel.len());
    for ((s, p), label) in serial.iter().zip(&parallel).zip(&labels) {
        assert_eq!(s.digest(), p.digest(), "divergence at {label}");
    }
}

/// Replay determinism: the same spec + seed produces the identical
/// `IntervalMeter` (and every other result field) on every invocation.
#[test]
fn same_spec_and_seed_replays_identically() {
    let topo = topo15::build();
    let spec = TcpRun {
        technique: DeflectionTechnique::Nip,
        protection: Protection::AutoFull,
        duration: SimTime::from_secs(2),
        failure: Some(FailureWindow {
            link: topo.expect_link("SW7", "SW13"),
            down: SimTime::ZERO,
            up: SimTime::from_secs(3),
        }),
        seed: 1234,
        switch_service: Some(SimTime::from_micros(7)),
        ..TcpRun::new(&topo, topo15::primary_route(&topo))
    };
    let first = run_tcp(&spec);
    let second = run_tcp(&spec);
    assert_eq!(first.digest(), second.digest());
    assert_eq!(format!("{:?}", first.meter), format!("{:?}", second.meter));
}

/// The route-encoding cache affects speed only — a cached sweep is
/// byte-identical to an uncached one.
#[test]
fn encoding_cache_does_not_change_results() {
    let topo = topo15::build();
    let base = TcpRun {
        technique: DeflectionTechnique::Avp,
        protection: Protection::AutoFull,
        duration: SimTime::from_secs(2),
        failure: Some(FailureWindow {
            link: topo.expect_link("SW13", "SW29"),
            down: SimTime::ZERO,
            up: SimTime::from_secs(3),
        }),
        seed: 77,
        ..TcpRun::new(&topo, topo15::primary_route(&topo))
    };
    let uncached = run_tcp(&base);
    let cache = Arc::new(EncodingCache::new());
    let cached_spec = TcpRun {
        cache: Some(cache.clone()),
        ..base
    };
    let cached = run_tcp(&cached_spec);
    let replay = run_tcp(&cached_spec); // second run hits the cache
    assert_eq!(uncached.digest(), cached.digest());
    assert_eq!(uncached.digest(), replay.digest());
    let stats = cache.stats();
    assert!(stats.hits > 0, "replay must hit the cache: {stats:?}");
}

/// The adversarial grid — rolling churn included, whose Poisson trains
/// are the newest source of compiled-in randomness — is byte-identical
/// at any job count, like every other sweep. Churn plans re-expand
/// per worker, so this also pins that `FaultPlan::compile` is a pure
/// function of `(plan, topology)` under concurrency.
#[test]
fn adversary_grid_is_byte_identical_across_jobs() {
    use kar_bench::experiments::adversary::{self, AdversaryConfig};
    let topo = topo15::build();
    let cfg = AdversaryConfig {
        probes: 30,
        intensities: vec![1, 2],
        ..AdversaryConfig::default()
    };
    let serial = adversary::run_topology(&topo, "topo15", &cfg, 1);
    let parallel = adversary::run_topology(&topo, "topo15", &cfg, 4);
    let s: Vec<String> = serial.iter().map(|p| p.digest()).collect();
    let p: Vec<String> = parallel.iter().map(|p| p.digest()).collect();
    assert_eq!(s, p);
    // The JSON document the binary commits inherits the property.
    let gaps = adversary::targeted_vs_random(&serial);
    assert_eq!(
        adversary::to_json(&serial, &gaps),
        adversary::to_json(&parallel, &adversary::targeted_vs_random(&parallel))
    );
}
