//! The observability invariant (DESIGN invariant 12): metrics, spans
//! and tracing are pure observation. A run with the sink collecting —
//! metrics dump AND Chrome trace — must be byte-identical (same
//! digests) to the same run without it, the dump it writes must parse
//! back, and the dump must carry a complete causal chain
//! (fault → detect → re-encode → stamped packet).
//!
//! The sink is process-global, so everything lives in ONE test function
//! in its own integration-test binary — the library's unit tests run in
//! a different process and never see the sink enabled.

use kar::DeflectionTechnique;
use kar_bench::experiments::dynamic;
use kar_bench::harness::{run_tcp, FailureWindow, TcpRun};
use kar_bench::obs;
use kar_obs::{read_dumps, sink, DumpRecord};
use kar_simnet::SimTime;
use kar_topology::topo15;
use std::io::BufReader;

fn dynamic_digests() -> Vec<String> {
    let topo = topo15::build();
    let cfg = dynamic::DynamicConfig {
        probes: 40,
        ..dynamic::DynamicConfig::default()
    };
    dynamic::scenarios()
        .into_iter()
        .map(|scenario| {
            dynamic::run_point(&topo, scenario, DeflectionTechnique::HotPotato, cfg).digest()
        })
        .collect()
}

fn tcp_digest() -> String {
    let topo = topo15::build();
    let spec = TcpRun {
        technique: DeflectionTechnique::HotPotato,
        duration: SimTime::from_secs(2),
        failure: Some(FailureWindow {
            link: topo.expect_link("SW7", "SW13"),
            down: SimTime::from_millis(500),
            up: SimTime::from_millis(1500),
        }),
        label: "determinism/tcp".to_string(),
        ..TcpRun::new(&topo, topo15::primary_route(&topo))
    };
    run_tcp(&spec).digest()
}

#[test]
fn metrics_collection_never_changes_results() {
    assert!(
        !sink::enabled(),
        "another test enabled the process-global sink; keep this test alone in its binary"
    );

    // Baseline: sink off.
    let plain_dynamic = dynamic_digests();
    let plain_tcp = tcp_digest();

    // Instrumented: same runs with the sink collecting, both outputs on.
    let dir = std::env::temp_dir().join(format!("kar_obs_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("dump.jsonl");
    let trace = dir.join("trace.json");
    assert!(obs::init([
        "--metrics".to_string(),
        path.display().to_string(),
        "--trace".to_string(),
        trace.display().to_string(),
    ]));
    let instrumented_dynamic = dynamic_digests();
    let instrumented_tcp = tcp_digest();
    obs::finish();
    assert!(!sink::enabled(), "finish() must disable the sink");

    assert_eq!(
        plain_dynamic, instrumented_dynamic,
        "dynamic experiment digests changed when metrics+tracing were on"
    );
    assert_eq!(
        plain_tcp, instrumented_tcp,
        "tcp harness digest changed when metrics+tracing were on"
    );

    // The Chrome trace export is a well-formed trace-event document.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(
        trace_text.starts_with("{\"traceEvents\":["),
        "trace must open a traceEvents array: {}",
        &trace_text[..trace_text.len().min(60)]
    );
    assert_eq!(
        trace_text.matches('{').count(),
        trace_text.matches('}').count(),
        "trace braces unbalanced"
    );
    assert!(
        trace_text.contains("\"ph\":\"s\"") && trace_text.contains("\"ph\":\"f\""),
        "trace has no causal flow arrows"
    );

    // The dump itself must parse back with the expected structure.
    let file = std::fs::File::open(&path).expect("dump written");
    let dumps = read_dumps(BufReader::new(file)).expect("dump parses");
    let labels: Vec<&str> = dumps.iter().map(|d| d.label.as_str()).collect();
    assert!(
        labels.contains(&"determinism/tcp"),
        "tcp run label missing from {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("fig_dynamic/")),
        "dynamic run labels missing from {labels:?}"
    );
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    assert_eq!(labels, sorted, "flush must sort dumps by label");
    for d in &dumps {
        assert!(!d.records.is_empty(), "run {} dumped nothing", d.label);
        assert!(
            d.records
                .iter()
                .any(|r| matches!(r, DumpRecord::Counter { entity, metric, .. }
                        if entity.starts_with("node:") && metric == "delivered")),
            "run {} has no per-switch delivered counter",
            d.label
        );
        assert!(
            d.records
                .iter()
                .any(|r| matches!(r, DumpRecord::Profile { .. })),
            "run {} has no profiler rows",
            d.label
        );
    }

    // Invariant 12's causal payload: at least one run carries the full
    // span chain fault → detect → re-encode → stamped packet.
    let full_chain = dumps.iter().any(|d| {
        let events: Vec<(&str, Option<u64>, Option<u64>)> = d
            .records
            .iter()
            .filter_map(|r| match r {
                DumpRecord::Event {
                    kind, span, parent, ..
                } => Some((kind.as_str(), *span, *parent)),
                _ => None,
            })
            .collect();
        let fault_spans: Vec<u64> = events
            .iter()
            .filter(|(k, s, _)| *k == "fault" && s.is_some())
            .map(|(_, s, _)| s.unwrap())
            .collect();
        events.iter().any(|(k, s, p)| {
            *k == "detect"
                && p.map(|p| fault_spans.contains(&p)).unwrap_or(false)
                && events.iter().any(|(k2, s2, p2)| {
                    *k2 == "reencode"
                        && *p2 == *s
                        && events
                            .iter()
                            .any(|(k3, _, p3)| *k3 == "stamp" && *p3 == *s2)
                })
        })
    });
    assert!(
        full_chain,
        "no run carries a complete fault → detect → reencode → stamp span chain"
    );

    // A second finish with the sink off is a clean no-op.
    obs::finish();
    std::fs::remove_dir_all(&dir).ok();
}
