//! Checkpoint-resume behavior of the scale campaign: an interrupted
//! sweep resumes at the last completed cell, the resumed document is
//! byte-identical to an uninterrupted run, and stale checkpoints (other
//! configuration) are ignored rather than spliced in.

use kar_bench::campaign::{run_campaign, CampaignConfig, Family, ProtLevel};
use std::fs;
use std::path::PathBuf;

fn smoke_config(checkpoint: Option<PathBuf>) -> CampaignConfig {
    CampaignConfig {
        seed: 77,
        sizes: vec![8, 12],
        families: vec![Family::Ring, Family::Grid],
        prots: vec![ProtLevel::None, ProtLevel::Full],
        flows_per_switch: 2,
        packets_per_flow: 3,
        checkpoint,
        jobs: 2,
        wall: false,
        ..CampaignConfig::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kar_campaign_{tag}_{}.ckpt", std::process::id()))
}

#[test]
fn interrupted_sweep_resumes_without_recomputing_finished_cells() {
    let ckpt = temp_path("resume");
    let _ = fs::remove_file(&ckpt);

    let full = run_campaign(&smoke_config(Some(ckpt.clone())));
    assert_eq!(full.computed, 8, "first run computes every cell");
    let checkpoint_text = fs::read_to_string(&ckpt).unwrap();
    assert_eq!(
        checkpoint_text.lines().count(),
        9,
        "fingerprint header plus one line per cell"
    );

    // Simulate an interruption: keep the header and the first three
    // completed cells, as if the process died mid-sweep.
    let kept: Vec<&str> = checkpoint_text.lines().take(4).collect();
    fs::write(&ckpt, format!("{}\n", kept.join("\n"))).unwrap();

    let resumed = run_campaign(&smoke_config(Some(ckpt.clone())));
    assert_eq!(resumed.computed, 5, "only the lost cells are recomputed");
    assert_eq!(
        resumed.to_json(),
        full.to_json(),
        "resumed document is byte-identical to the uninterrupted one"
    );

    // A second resume finds everything done.
    let warm = run_campaign(&smoke_config(Some(ckpt.clone())));
    assert_eq!(warm.computed, 0);
    assert_eq!(warm.to_json(), full.to_json());

    let _ = fs::remove_file(&ckpt);
}

#[test]
fn foreign_checkpoints_are_discarded_not_spliced() {
    let ckpt = temp_path("foreign");
    let _ = fs::remove_file(&ckpt);

    let first = run_campaign(&smoke_config(Some(ckpt.clone())));
    assert_eq!(first.computed, 8);

    // Same checkpoint path, different seed: the fingerprint no longer
    // matches, so every cell recomputes and the file is rewritten.
    let mut other = smoke_config(Some(ckpt.clone()));
    other.seed = 78;
    let second = run_campaign(&other);
    assert_eq!(second.computed, 8, "stale cells must not be reused");
    assert_ne!(second.to_json(), first.to_json());
    let text = fs::read_to_string(&ckpt).unwrap();
    assert!(text.starts_with(&format!(
        "{{\"campaign_checkpoint\":\"{}\"}}",
        other.fingerprint()
    )));

    let _ = fs::remove_file(&ckpt);
}

#[test]
fn checkpointed_and_plain_runs_agree() {
    let ckpt = temp_path("plain");
    let _ = fs::remove_file(&ckpt);
    let with = run_campaign(&smoke_config(Some(ckpt.clone())));
    let without = run_campaign(&smoke_config(None));
    assert_eq!(with.to_json(), without.to_json());
    let _ = fs::remove_file(&ckpt);
}
