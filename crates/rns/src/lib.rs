//! # kar-rns — Residue Number System substrate for KAR
//!
//! The KAR routing system ("Key-for-Any-Route", DSN-W 2016) encodes an
//! entire forwarding path into a single integer *route ID* using the
//! Residue Number System: each core switch owns a coprime *switch ID*
//! `sᵢ`, and a packet carrying route ID `R` leaves switch `sᵢ` through
//! port `R mod sᵢ`. This crate is the number-theoretic foundation:
//!
//! * [`BigUint`] — minimal arbitrary-precision unsigned integers (route
//!   IDs exceed native widths once protection paths are folded in);
//! * [`gcd`], [`extended_gcd`], [`mod_inverse`] — Euclidean toolkit;
//! * [`RnsBasis`], [`crt_encode`], [`crt_decode`], [`crt_extend`],
//!   [`residue`] — the Chinese-Remainder encoder of paper §2.2;
//! * [`CrtCache`] — memoized encoding for repeated-route workloads;
//! * [`Reducer`] — precomputed per-switch reduction constants for the
//!   forwarding modulus (division-free `R mod sᵢ`);
//! * [`route_id_bit_length`] — header-size math of paper §2.3 (Eq. 9);
//! * [`IdAllocator`], [`pairwise_coprime`] — switch-ID assignment.
//!
//! # Examples
//!
//! Reproducing the paper's worked example end to end:
//!
//! ```
//! use kar_rns::{crt_encode, crt_extend, residue, RnsBasis};
//!
//! // Primary path: switches {4, 7, 11} exit via ports {0, 2, 0}.
//! let basis = RnsBasis::new(vec![4, 7, 11])?;
//! let route_id = crt_encode(&basis, &[0, 2, 0])?;
//! assert_eq!(route_id.to_u64(), Some(44));
//!
//! // Fold in the protection switch 5 (port 0) → driven deflection.
//! let (protected, _basis) = crt_extend(&route_id, &basis, 5, 0)?;
//! assert_eq!(protected.to_u64(), Some(660));
//!
//! // Any switch forwards with one modulo:
//! assert_eq!(residue(&protected, 7), 2);
//! assert_eq!(residue(&protected, 5), 0);
//! # Ok::<(), kar_rns::RnsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
mod cache;
mod coprime;
mod crt;
mod gcd;
mod reducer;

pub use biguint::{BigUint, ParseBigUintError};
pub use cache::CrtCache;
pub use coprime::{
    first_common_factor, is_prime, pairwise_coprime, IdAllocator, IdError, IdStrategy,
};
pub use crt::{
    crt_decode, crt_encode, crt_extend, residue, route_id_bit_length, RnsBasis, RnsError,
};
pub use gcd::{coprime, extended_gcd, gcd, lcm, mod_inverse};
pub use reducer::Reducer;
