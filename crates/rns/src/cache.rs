//! Memoized CRT encoding for repeated-route workloads.
//!
//! Experiment sweeps encode the same handful of `(switch-set, port-set)`
//! combinations thousands of times (every repetition of a run re-installs
//! the same routes). The arithmetic in [`crt_encode`] — one modular
//! inverse and one big-integer multiply-add per modulus — dwarfs a hash
//! lookup, so a small memo table turns the steady-state cost into a
//! clone of the cached route ID.
//!
//! The key is the full `(moduli, residues)` pair: the route ID is a pure
//! function of exactly those inputs, so a hit is always byte-identical to
//! a recomputation and caching can never change results, only speed.

use crate::biguint::BigUint;
use crate::crt::{crt_encode, RnsBasis, RnsError};
use std::collections::HashMap;

/// A memo table in front of [`crt_encode`].
///
/// # Examples
///
/// ```
/// use kar_rns::{CrtCache, RnsBasis};
///
/// let basis = RnsBasis::new(vec![4, 7, 11])?;
/// let mut cache = CrtCache::new();
/// let first = cache.encode(&basis, &[0, 2, 0])?;
/// let second = cache.encode(&basis, &[0, 2, 0])?;
/// assert_eq!(first, second);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), kar_rns::RnsError>(())
/// ```
#[derive(Debug, Default)]
pub struct CrtCache {
    map: HashMap<(Vec<u64>, Vec<u64>), BigUint>,
    hits: u64,
    misses: u64,
}

impl CrtCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CrtCache::default()
    }

    /// [`crt_encode`] with memoization.
    ///
    /// # Errors
    ///
    /// Exactly those of [`crt_encode`]; errors are not cached (they are
    /// cheap — validation fails before any arithmetic).
    pub fn encode(&mut self, basis: &RnsBasis, residues: &[u64]) -> Result<BigUint, RnsError> {
        let key = (basis.moduli().to_vec(), residues.to_vec());
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            return Ok(cached.clone());
        }
        let route_id = crt_encode(basis, residues)?;
        self.misses += 1;
        self.map.insert(key, route_id.clone());
        Ok(route_id)
    }

    /// Number of lookups answered from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that fell through to [`crt_encode`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct `(moduli, residues)` pairs stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached entries and resets the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_is_identical_to_recomputation() {
        let basis = RnsBasis::new(vec![10, 7, 13, 29]).unwrap();
        let mut cache = CrtCache::new();
        let direct = crt_encode(&basis, &[1, 2, 0, 3]).unwrap();
        assert_eq!(cache.encode(&basis, &[1, 2, 0, 3]).unwrap(), direct);
        assert_eq!(cache.encode(&basis, &[1, 2, 0, 3]).unwrap(), direct);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_residues_are_distinct_entries() {
        let basis = RnsBasis::new(vec![4, 7, 11]).unwrap();
        let mut cache = CrtCache::new();
        let a = cache.encode(&basis, &[0, 2, 0]).unwrap();
        let b = cache.encode(&basis, &[1, 2, 0]).unwrap();
        assert_ne!(a, b);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn same_residues_under_different_basis_do_not_collide() {
        let b1 = RnsBasis::new(vec![4, 7, 11]).unwrap();
        let b2 = RnsBasis::new(vec![5, 7, 11]).unwrap();
        let mut cache = CrtCache::new();
        let r1 = cache.encode(&b1, &[0, 2, 0]).unwrap();
        let r2 = cache.encode(&b2, &[0, 2, 0]).unwrap();
        assert_eq!(cache.misses(), 2, "distinct bases must miss separately");
        assert_eq!(r1.rem_u64(4), 0);
        assert_eq!(r2.rem_u64(5), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let mut cache = CrtCache::new();
        assert!(cache.encode(&basis, &[9, 0]).is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn clear_resets_everything() {
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let mut cache = CrtCache::new();
        cache.encode(&basis, &[1, 2]).unwrap();
        cache.encode(&basis, &[1, 2]).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
