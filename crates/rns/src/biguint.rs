//! A minimal arbitrary-precision unsigned integer.
//!
//! Route IDs in KAR are bounded by `M = Π sᵢ` (the product of the switch
//! IDs folded into the route). With full protection on a national-scale
//! backbone, `M` easily exceeds 128 bits, so the encoder needs true
//! arbitrary precision. We implement the minimal set of operations the
//! Chinese-Remainder encoder needs (add, sub, mul, divmod, comparison,
//! decimal/hex formatting) rather than pulling in an external bignum
//! crate — the dataplane encoding must stay self-contained and auditable.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limb
//! (the canonical form); zero is the empty limb vector.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer with `u64` limbs.
///
/// # Examples
///
/// ```
/// use kar_rns::BigUint;
///
/// let a = BigUint::from(26_390u64);
/// let b = &a * &BigUint::from(6_479u64);
/// assert_eq!(b.to_string(), "170980810");
/// assert_eq!(b.bits(), 28); // Table 1, partial protection
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Builds a value from little-endian `u64` limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// A view of the little-endian limbs (canonical, no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits; `0` for the value `0`.
    ///
    /// This is `⌈log₂(self + 1)⌉`, i.e. the position of the highest set bit
    /// plus one. The paper's Eq. (9) bit length of a route-ID field for a
    /// modulus `M` is `(M - 1).bits()` — see [`crate::route_id_bit_length`].
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(&w) => (w >> (i % 64)) & 1 == 1,
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// `self + other`.
    pub fn add_big(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned subtraction would underflow).
    pub fn sub_big(&self, other: &BigUint) -> BigUint {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: {self} - {other}"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// `self * other` (schoolbook; quadratic, fine for route-ID sizes).
    pub fn mul_big(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self * m` with a small multiplier.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `(self / d, self % d)` with a small divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divmod_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 64 | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// `self % d` with a small divisor.
    ///
    /// This is the KAR *forwarding* operation: `output_port = R mod switch_id`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        self.divmod_u64(d).1
    }

    /// `(self / other, self % other)` by binary long division.
    ///
    /// Quadratic in the bit length; route IDs are at most a few thousand
    /// bits, so this is plenty.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn divmod_big(&self, other: &BigUint) -> (BigUint, BigUint) {
        assert!(!other.is_zero(), "division by zero");
        if let Some(d) = other.to_u64() {
            let (q, r) = self.divmod_u64(d);
            return (q, BigUint::from(r));
        }
        match self.cmp(other) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        let shift = self.bits() - other.bits();
        let mut rem = self.clone();
        let mut quot = BigUint::zero();
        // Walk the divisor down from the aligned position.
        let mut div = other.shl_bits(shift);
        for s in (0..=shift).rev() {
            if rem >= div {
                rem = rem.sub_big(&div);
                quot = quot.set_bit(s);
            }
            div = div.shr_bits(1);
        }
        (quot, rem)
    }

    /// `self % other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn rem_big(&self, other: &BigUint) -> BigUint {
        self.divmod_big(other).1
    }

    /// `self << n` bits.
    pub fn shl_bits(&self, n: u32) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &a in &self.limbs {
                out.push(a << bit_shift | carry);
                carry = a >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> n` bits.
    pub fn shr_bits(&self, n: u32) -> BigUint {
        let limb_shift = (n / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push(src[i] >> bit_shift | hi.checked_shl(64 - bit_shift).unwrap_or(0));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Returns a copy with bit `i` set.
    pub fn set_bit(&self, i: u32) -> BigUint {
        let limb = (i / 64) as usize;
        let mut limbs = self.limbs.clone();
        if limbs.len() <= limb {
            limbs.resize(limb + 1, 0);
        }
        limbs[limb] |= 1u64 << (i % 64);
        BigUint::from_limbs(limbs)
    }

    /// Big-endian byte serialization (empty for zero) — the on-wire form of
    /// a route ID in a packet header.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Parses a big-endian byte slice (inverse of [`Self::to_bytes_be`]).
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl $trait for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$imp(rhs)
            }
        }
        impl $trait for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$imp(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$imp(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$imp(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_big);
forward_binop!(Sub, sub, sub_big);
forward_binop!(Mul, mul, mul_big);
forward_binop!(Rem, rem, rem_big);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_big(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self.sub_big(rhs);
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_big(rhs);
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, n: u32) -> BigUint {
        self.shl_bits(n)
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, n: u32) -> BigUint {
        self.shr_bits(n)
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::zero(), |acc, x| acc.add_big(&x))
    }
}

impl Product for BigUint {
    fn product<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::one(), |acc, x| acc.mul_big(&x))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeated division by the largest power of ten fitting a u64.
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut parts: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_u64(CHUNK);
            parts.push(r);
            cur = q;
        }
        let mut s = parts.last().unwrap().to_string();
        for part in parts.iter().rev().skip(1) {
            s.push_str(&format!("{part:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0b", "0");
        }
        let mut s = format!("{:b}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:064b}"));
        }
        f.pad_integral(true, "0b", &s)
    }
}

/// Error returned when parsing a [`BigUint`] from a decimal string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit `{}` in BigUint literal", self.offending)
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError { offending: ' ' });
        }
        let mut out = BigUint::zero();
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(10).ok_or(ParseBigUintError { offending: ch })?;
            out = out.mul_u64(10).add_big(&BigUint::from(d as u64));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(z.bits(), 0);
        assert_eq!(o.bits(), 1);
        assert_eq!((&z + &o), o);
        assert_eq!((&o * &z), z);
    }

    #[test]
    fn from_u128_round_trips() {
        let v: u128 = 0x1234_5678_9abc_def0_0fed_cba9_8765_4321;
        let b = BigUint::from(v);
        assert_eq!(b.to_u128(), Some(v));
        assert_eq!(b.to_u64(), None);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::from(3u64) - BigUint::from(5u64);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_u64;
        let b = 0xfeed_face_cafe_u64;
        let p = BigUint::from(a).mul_big(&BigUint::from(b));
        assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_large_cross_limb() {
        let a = BigUint::from(u64::MAX).mul_big(&BigUint::from(u64::MAX));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expect = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(a.to_u128(), Some(expect));
    }

    #[test]
    fn divmod_u64_basic() {
        let a = BigUint::from(44u64);
        assert_eq!(a.rem_u64(4), 0);
        assert_eq!(a.rem_u64(7), 2);
        assert_eq!(a.rem_u64(11), 0);
    }

    #[test]
    fn divmod_u64_multi_limb() {
        let v: u128 = 123_456_789_012_345_678_901_234_567_890;
        let a = BigUint::from(v);
        let (q, r) = a.divmod_u64(97);
        assert_eq!(q.to_u128(), Some(v / 97));
        assert_eq!(r, (v % 97) as u64);
    }

    #[test]
    fn divmod_big_reconstructs() {
        let a = BigUint::from_str("340282366920938463463374607431768211456123456789").unwrap();
        let b = BigUint::from_str("987654321987654321").unwrap();
        let (q, r) = a.divmod_big(&b);
        assert!(r < b);
        assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn divmod_big_smaller_dividend() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(1u128 << 100);
        let (q, r) = a.divmod_big(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn rem_big_equal_values_is_zero() {
        let a = BigUint::from(1u128 << 100);
        assert!(a.rem_big(&a).is_zero());
    }

    #[test]
    fn shifts_round_trip() {
        let a = BigUint::from_str("12345678901234567890123456789").unwrap();
        for n in [0u32, 1, 7, 63, 64, 65, 130] {
            assert_eq!(a.shl_bits(n).shr_bits(n), a, "shift by {n}");
        }
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::from(26_390u64 - 1).bits(), 15); // Table 1 row 1
        assert_eq!(BigUint::from(1u64).bits(), 1);
        assert_eq!(BigUint::from(255u64).bits(), 8);
        assert_eq!(BigUint::from(256u64).bits(), 9);
        assert_eq!(BigUint::from(1u128 << 64).bits(), 65);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0", "1", "44", "660", "26390", "170980810", "4409623710090"] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        let big = "123456789012345678901234567890123456789012345678901234567890";
        let v: BigUint = big.parse().unwrap();
        assert_eq!(v.to_string(), big);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("12x4".parse::<BigUint>().is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn parse_allows_separators() {
        assert_eq!(
            "26_390".parse::<BigUint>().unwrap(),
            BigUint::from(26390u64)
        );
    }

    #[test]
    fn hex_and_binary_formatting() {
        let v = BigUint::from(44u64);
        assert_eq!(format!("{v:x}"), "2c");
        assert_eq!(format!("{v:b}"), "101100");
        assert_eq!(format!("{:#x}", v), "0x2c");
        let z = BigUint::zero();
        assert_eq!(format!("{z:x}"), "0");
    }

    #[test]
    fn bytes_round_trip() {
        for s in ["0", "1", "65535", "65536", "18446744073709551616"] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(1u128 << 64);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn sum_and_product_impls() {
        let vals = [2u64, 3, 5, 7];
        let s: BigUint = vals.iter().map(|&v| BigUint::from(v)).sum();
        let p: BigUint = vals.iter().map(|&v| BigUint::from(v)).product();
        assert_eq!(s.to_u64(), Some(17));
        assert_eq!(p.to_u64(), Some(210));
    }

    #[test]
    fn set_bit_and_bit() {
        let v = BigUint::zero().set_bit(70);
        assert!(v.bit(70));
        assert!(!v.bit(69));
        assert_eq!(v.bits(), 71);
    }

    #[test]
    fn mul_u64_carries() {
        let a = BigUint::from(u64::MAX);
        let p = a.mul_u64(u64::MAX);
        assert_eq!(p.to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
    }
}
