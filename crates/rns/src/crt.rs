//! Chinese-Remainder encoding of forwarding paths (paper §2.2).
//!
//! A route is the pair `(S, P)` of switch IDs and output ports. The route
//! ID is the unique `R ∈ [0, M)`, `M = Π sᵢ`, with `R mod sᵢ = pᵢ` for
//! every `i` (Eqs. 1–4). Because the CRT reconstruction is a commutative
//! sum, switches disjoint from the primary path can be folded in at any
//! time — the basis of *driven deflection forwarding paths*.

use crate::biguint::BigUint;
use crate::coprime::{first_common_factor, pairwise_coprime};
use crate::gcd::mod_inverse;
use std::fmt;

/// A validated pairwise-coprime modulo set (the switch IDs of one route).
///
/// # Examples
///
/// ```
/// use kar_rns::RnsBasis;
///
/// let basis = RnsBasis::new(vec![4, 7, 11])?;
/// assert_eq!(basis.product().to_string(), "308");
/// # Ok::<(), kar_rns::RnsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RnsBasis {
    moduli: Vec<u64>,
}

impl RnsBasis {
    /// Validates and wraps a modulo set.
    ///
    /// # Errors
    ///
    /// [`RnsError::NotCoprime`] if any pair shares a factor,
    /// [`RnsError::ModulusTooSmall`] if any modulus is below 2, or
    /// [`RnsError::Empty`] for an empty set.
    pub fn new(moduli: Vec<u64>) -> Result<Self, RnsError> {
        if moduli.is_empty() {
            return Err(RnsError::Empty);
        }
        if let Some(&m) = moduli.iter().find(|&&m| m < 2) {
            return Err(RnsError::ModulusTooSmall { modulus: m });
        }
        if !pairwise_coprime(&moduli) {
            let (i, j, g) = first_common_factor(&moduli).expect("checked not pairwise coprime");
            return Err(RnsError::NotCoprime {
                a: moduli[i],
                b: moduli[j],
                factor: g,
            });
        }
        Ok(RnsBasis { moduli })
    }

    /// The moduli (switch IDs), in insertion order.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of moduli.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Returns `true` if the basis holds no moduli (never constructible —
    /// kept for API completeness alongside [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// `M = Π sᵢ` (Eq. 1) — the dynamic range of the route ID.
    pub fn product(&self) -> BigUint {
        self.moduli.iter().map(|&m| BigUint::from(m)).product()
    }

    /// Bit length a packet-header field must have to carry any route ID of
    /// this basis: `⌈log₂(M − 1)⌉` (Eq. 9).
    pub fn bit_length(&self) -> u32 {
        route_id_bit_length(&self.moduli)
    }

    /// Extends the basis with an extra modulus, revalidating coprimality.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsBasis::new`] applied to the extended set.
    pub fn extended(&self, extra: u64) -> Result<RnsBasis, RnsError> {
        let mut moduli = self.moduli.clone();
        moduli.push(extra);
        RnsBasis::new(moduli)
    }
}

impl fmt::Display for RnsBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.moduli.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

/// Bit length required by a route ID over `moduli` (Eq. 9):
/// `⌈log₂(M − 1)⌉`, and 0 for an empty set.
///
/// # Examples
///
/// ```
/// // Table 1 of the paper (15-node network):
/// assert_eq!(kar_rns::route_id_bit_length(&[10, 7, 13, 29]), 15);
/// assert_eq!(kar_rns::route_id_bit_length(&[10, 7, 13, 29, 11, 19, 31]), 28);
/// assert_eq!(
///     kar_rns::route_id_bit_length(&[10, 7, 13, 29, 11, 19, 31, 17, 37, 41]),
///     43,
/// );
/// ```
pub fn route_id_bit_length(moduli: &[u64]) -> u32 {
    if moduli.is_empty() {
        return 0;
    }
    let m: BigUint = moduli.iter().map(|&m| BigUint::from(m)).product();
    if m.is_one() {
        return 0;
    }
    m.sub_big(&BigUint::one()).bits()
}

/// Encodes residues `P` over `basis` into the route ID `R` (Eq. 4):
/// `R = ⟨Σ pᵢ·Mᵢ·Lᵢ⟩_M`.
///
/// # Errors
///
/// [`RnsError::LengthMismatch`] when `residues.len() != basis.len()`, or
/// [`RnsError::ResidueOutOfRange`] when some `pᵢ ≥ sᵢ` (a port index must
/// be representable as a residue of its switch ID).
///
/// # Examples
///
/// ```
/// use kar_rns::{crt_encode, RnsBasis};
///
/// // The paper's §2.2 example: switches {4, 7, 11}, ports {0, 2, 0} → R = 44.
/// let basis = RnsBasis::new(vec![4, 7, 11])?;
/// let r = crt_encode(&basis, &[0, 2, 0])?;
/// assert_eq!(r.to_u64(), Some(44));
/// # Ok::<(), kar_rns::RnsError>(())
/// ```
pub fn crt_encode(basis: &RnsBasis, residues: &[u64]) -> Result<BigUint, RnsError> {
    if residues.len() != basis.len() {
        return Err(RnsError::LengthMismatch {
            moduli: basis.len(),
            residues: residues.len(),
        });
    }
    let m = basis.product();
    let mut sum = BigUint::zero();
    for (&s_i, &p_i) in basis.moduli().iter().zip(residues) {
        if p_i >= s_i {
            return Err(RnsError::ResidueOutOfRange {
                residue: p_i,
                modulus: s_i,
            });
        }
        if p_i == 0 {
            continue; // zero addend (the paper's example drops these too)
        }
        let m_i = m.divmod_u64(s_i).0; // Mᵢ = M / sᵢ (Eq. 6)
        let m_i_mod = m_i.rem_u64(s_i);
        let l_i = mod_inverse(m_i_mod, s_i)
            .expect("Mᵢ is coprime to sᵢ because the basis is pairwise coprime");
        // pᵢ·Lᵢ < sᵢ² fits u128 comfortably for u64 moduli; reduce mod sᵢ
        // first to keep the addend at `M` scale.
        let coeff = ((p_i as u128 * l_i as u128) % s_i as u128) as u64;
        sum += &m_i.mul_u64(coeff);
    }
    Ok(sum.rem_big(&m))
}

/// Decodes the residue (output port) of `route_id` at one switch (Eq. 3):
/// `pᵢ = R mod sᵢ`. This is the entire per-packet dataplane operation.
///
/// # Panics
///
/// Panics if `switch_id == 0`.
pub fn residue(route_id: &BigUint, switch_id: u64) -> u64 {
    route_id.rem_u64(switch_id)
}

/// Decodes all residues of `route_id` over `basis` (the RNS representation,
/// Eq. 2).
pub fn crt_decode(route_id: &BigUint, basis: &RnsBasis) -> Vec<u64> {
    basis
        .moduli()
        .iter()
        .map(|&s| route_id.rem_u64(s))
        .collect()
}

/// Extends an already-encoded route ID with one more `(switch, port)` pair
/// without re-encoding the existing residues.
///
/// Returns the unique `R' ∈ [0, M·s)` with `R' ≡ R (mod M)` and
/// `R' ≡ port (mod switch)`. This realizes the paper's observation that
/// protection segments can be folded into an existing route ID because the
/// CRT sum is commutative.
///
/// # Errors
///
/// [`RnsError::NotCoprime`] if `switch` shares a factor with the current
/// basis, [`RnsError::ResidueOutOfRange`] if `port ≥ switch`, or
/// [`RnsError::ModulusTooSmall`] if `switch < 2`.
///
/// # Examples
///
/// ```
/// use kar_rns::{crt_encode, crt_extend, RnsBasis};
///
/// // Extend the paper's R = 44 over {4,7,11} with (5, 0) → R = 660.
/// let basis = RnsBasis::new(vec![4, 7, 11])?;
/// let r = crt_encode(&basis, &[0, 2, 0])?;
/// let (r2, basis2) = crt_extend(&r, &basis, 5, 0)?;
/// assert_eq!(r2.to_u64(), Some(660));
/// assert_eq!(basis2.moduli(), &[4, 7, 11, 5]);
/// # Ok::<(), kar_rns::RnsError>(())
/// ```
pub fn crt_extend(
    route_id: &BigUint,
    basis: &RnsBasis,
    switch: u64,
    port: u64,
) -> Result<(BigUint, RnsBasis), RnsError> {
    if switch < 2 {
        return Err(RnsError::ModulusTooSmall { modulus: switch });
    }
    if port >= switch {
        return Err(RnsError::ResidueOutOfRange {
            residue: port,
            modulus: switch,
        });
    }
    let extended = basis.extended(switch)?;
    let m = basis.product();
    let m_mod_s = m.rem_u64(switch);
    let inv = mod_inverse(m_mod_s, switch).expect("extended basis is pairwise coprime");
    let r_mod_s = route_id.rem_u64(switch);
    // delta = (port - R) * M^{-1} mod s, in the least non-negative residue.
    let diff = (port as i128 - r_mod_s as i128).rem_euclid(switch as i128) as u64;
    let delta = ((diff as u128 * inv as u128) % switch as u128) as u64;
    let r2 = route_id.add_big(&m.mul_u64(delta));
    debug_assert_eq!(r2.rem_u64(switch), port);
    Ok((r2, extended))
}

/// Errors of the RNS encode/decode layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnsError {
    /// The modulo set was empty.
    Empty,
    /// A modulus below 2 cannot carry a residue.
    ModulusTooSmall {
        /// The offending modulus.
        modulus: u64,
    },
    /// Two moduli share a common factor.
    NotCoprime {
        /// First offending modulus.
        a: u64,
        /// Second offending modulus.
        b: u64,
        /// Their shared factor.
        factor: u64,
    },
    /// `residues.len()` disagreed with the basis length.
    LengthMismatch {
        /// Number of moduli in the basis.
        moduli: usize,
        /// Number of residues supplied.
        residues: usize,
    },
    /// A residue (output port) was not below its modulus (switch ID).
    ResidueOutOfRange {
        /// The offending residue.
        residue: u64,
        /// Its modulus.
        modulus: u64,
    },
}

impl fmt::Display for RnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnsError::Empty => write!(f, "empty modulo set"),
            RnsError::ModulusTooSmall { modulus } => {
                write!(f, "modulus {modulus} is below 2")
            }
            RnsError::NotCoprime { a, b, factor } => {
                write!(f, "moduli {a} and {b} share factor {factor}")
            }
            RnsError::LengthMismatch { moduli, residues } => {
                write!(f, "{residues} residues supplied for {moduli} moduli")
            }
            RnsError::ResidueOutOfRange { residue, modulus } => {
                write!(f, "residue {residue} not below modulus {modulus}")
            }
        }
    }
}

impl std::error::Error for RnsError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(moduli: &[u64], residues: &[u64]) -> BigUint {
        crt_encode(&RnsBasis::new(moduli.to_vec()).unwrap(), residues).unwrap()
    }

    #[test]
    fn paper_primary_route_example() {
        // §2.2: switches {4,7,11}, ports {0,2,0} → R = 44.
        let r = encode(&[4, 7, 11], &[0, 2, 0]);
        assert_eq!(r.to_u64(), Some(44));
        assert_eq!(residue(&r, 4), 0);
        assert_eq!(residue(&r, 7), 2);
        assert_eq!(residue(&r, 11), 0);
    }

    #[test]
    fn paper_protected_route_example() {
        // §2.2: switches {4,7,11,5}, ports {0,2,0,0} → R = 660.
        let r = encode(&[4, 7, 11, 5], &[0, 2, 0, 0]);
        assert_eq!(r.to_u64(), Some(660));
        assert_eq!(residue(&r, 5), 0);
    }

    #[test]
    fn decode_recovers_all_residues() {
        let basis = RnsBasis::new(vec![4, 7, 11, 5]).unwrap();
        let r = crt_encode(&basis, &[3, 2, 10, 4]).unwrap();
        assert_eq!(crt_decode(&r, &basis), vec![3, 2, 10, 4]);
    }

    #[test]
    fn encode_is_order_independent() {
        // §2.2: "the switch order is irrelevant to derive the route ID".
        let a = encode(&[4, 7, 11, 5], &[0, 2, 0, 0]);
        let b = encode(&[5, 11, 7, 4], &[0, 0, 2, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn route_id_below_product() {
        let basis = RnsBasis::new(vec![10, 7, 13, 29]).unwrap();
        let m = basis.product();
        for ports in [[0u64, 0, 0, 0], [9, 6, 12, 28], [1, 2, 3, 4]] {
            let r = crt_encode(&basis, &ports).unwrap();
            assert!(r < m);
        }
    }

    #[test]
    fn extend_matches_full_reencode() {
        let basis = RnsBasis::new(vec![4, 7, 11]).unwrap();
        let r = crt_encode(&basis, &[0, 2, 0]).unwrap();
        let (r2, b2) = crt_extend(&r, &basis, 5, 0).unwrap();
        assert_eq!(r2, encode(&[4, 7, 11, 5], &[0, 2, 0, 0]));
        assert_eq!(b2.len(), 4);
        // Extending never changes existing residues (disjoint-extension).
        assert_eq!(crt_decode(&r2, &basis), vec![0, 2, 0]);
    }

    #[test]
    fn extend_chain_builds_full_protection() {
        // Fold three protection switches one at a time.
        let basis = RnsBasis::new(vec![10, 7, 13, 29]).unwrap();
        let r = crt_encode(&basis, &[1, 2, 0, 3]).unwrap();
        let mut cur = (r, basis);
        for (s, p) in [(11u64, 1u64), (19, 0), (31, 2)] {
            cur = crt_extend(&cur.0, &cur.1, s, p).unwrap();
        }
        assert_eq!(
            cur.0,
            encode(&[10, 7, 13, 29, 11, 19, 31], &[1, 2, 0, 3, 1, 0, 2])
        );
    }

    #[test]
    fn rejects_out_of_range_port() {
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let err = crt_encode(&basis, &[4, 0]).unwrap_err();
        assert_eq!(
            err,
            RnsError::ResidueOutOfRange {
                residue: 4,
                modulus: 4
            }
        );
    }

    #[test]
    fn rejects_length_mismatch() {
        let basis = RnsBasis::new(vec![4, 7]).unwrap();
        let err = crt_encode(&basis, &[1]).unwrap_err();
        assert_eq!(
            err,
            RnsError::LengthMismatch {
                moduli: 2,
                residues: 1
            }
        );
    }

    #[test]
    fn rejects_non_coprime_basis() {
        let err = RnsBasis::new(vec![4, 10]).unwrap_err();
        assert_eq!(
            err,
            RnsError::NotCoprime {
                a: 4,
                b: 10,
                factor: 2
            }
        );
    }

    #[test]
    fn rejects_tiny_or_empty_basis() {
        assert_eq!(RnsBasis::new(vec![]).unwrap_err(), RnsError::Empty);
        assert_eq!(
            RnsBasis::new(vec![7, 1]).unwrap_err(),
            RnsError::ModulusTooSmall { modulus: 1 }
        );
    }

    #[test]
    fn extend_rejects_conflicting_switch() {
        let basis = RnsBasis::new(vec![4, 7, 11]).unwrap();
        let r = crt_encode(&basis, &[0, 2, 0]).unwrap();
        assert!(matches!(
            crt_extend(&r, &basis, 14, 0),
            Err(RnsError::NotCoprime { .. })
        ));
        assert!(matches!(
            crt_extend(&r, &basis, 5, 5),
            Err(RnsError::ResidueOutOfRange { .. })
        ));
    }

    #[test]
    fn table1_bit_lengths() {
        // Exactly the paper's Table 1 for our reconstructed topo15 IDs.
        assert_eq!(route_id_bit_length(&[10, 7, 13, 29]), 15);
        assert_eq!(route_id_bit_length(&[10, 7, 13, 29, 11, 19, 31]), 28);
        assert_eq!(
            route_id_bit_length(&[10, 7, 13, 29, 11, 19, 31, 17, 37, 41]),
            43
        );
    }

    #[test]
    fn bit_length_edge_cases() {
        assert_eq!(route_id_bit_length(&[]), 0);
        assert_eq!(route_id_bit_length(&[2]), 1); // M-1 = 1
        assert_eq!(route_id_bit_length(&[2, 3]), 3); // M-1 = 5 → 3 bits
    }

    #[test]
    fn large_basis_exceeds_128_bits() {
        // 40 distinct primes → M far beyond u128; encode/decode must hold.
        let primes: Vec<u64> = (2..400u64)
            .filter(|&n| crate::is_prime(n))
            .take(40)
            .collect();
        let basis = RnsBasis::new(primes.clone()).unwrap();
        assert!(basis.bit_length() > 128);
        let ports: Vec<u64> = primes.iter().map(|&p| p - 1).collect();
        let r = crt_encode(&basis, &ports).unwrap();
        assert_eq!(crt_decode(&r, &basis), ports);
    }

    #[test]
    fn basis_display() {
        let basis = RnsBasis::new(vec![4, 7, 11]).unwrap();
        assert_eq!(basis.to_string(), "{4, 7, 11}");
    }
}
