//! Greatest common divisor, extended Euclid, and modular inverses.
//!
//! KAR's encoder needs `Lᵢ = Mᵢ⁻¹ mod sᵢ` (Eq. 7 of the paper). The switch
//! IDs `sᵢ` are small (they fit `u64`), so the inverse is computed in
//! native arithmetic after reducing the (large) `Mᵢ` modulo `sᵢ`.

/// Greatest common divisor by the binary (Stein) algorithm.
///
/// `gcd(0, 0) == 0` by convention.
///
/// # Examples
///
/// ```
/// assert_eq!(kar_rns::gcd(44, 308), 44);
/// assert_eq!(kar_rns::gcd(4, 7), 1);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
///
/// Coefficients are returned as `i128` so that callers with `u64` inputs
/// never overflow.
///
/// # Examples
///
/// ```
/// let (g, x, y) = kar_rns::extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        return (a, 1, 0);
    }
    let (g, x1, y1) = extended_gcd(b, a % b);
    (g, y1, x1 - (a / b) * y1)
}

/// Modular multiplicative inverse: the `x` with `a·x ≡ 1 (mod m)`.
///
/// Returns `None` when `gcd(a, m) != 1` (no inverse exists) or when
/// `m < 2`.
///
/// This is Eq. (8) of the paper: `⟨Lᵢ·Mᵢ⟩_{sᵢ} = 1`.
///
/// # Examples
///
/// ```
/// // The paper's worked example: L₂ = ⟨44⁻¹⟩₇ = 4.
/// assert_eq!(kar_rns::mod_inverse(44, 7), Some(4));
/// // and L₁ = ⟨77⁻¹⟩₄ = 1:
/// assert_eq!(kar_rns::mod_inverse(77, 4), Some(1));
/// // No inverse when not coprime:
/// assert_eq!(kar_rns::mod_inverse(6, 4), None);
/// ```
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m < 2 {
        return None;
    }
    let a = (a % m) as i128;
    let m = m as i128;
    let (g, x, _) = extended_gcd(a, m);
    if g != 1 {
        return None;
    }
    Some((x.rem_euclid(m)) as u64)
}

/// Least common multiple; saturates at `u64::MAX` on overflow.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Returns `true` when `a` and `b` share no common factor (`gcd == 1`).
pub fn coprime(a: u64, b: u64) -> bool {
    gcd(a, b) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(9, 0), 9);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 31), 1);
        assert_eq!(gcd(1 << 40, 1 << 20), 1 << 20);
    }

    #[test]
    fn gcd_is_commutative() {
        for a in [2u64, 15, 28, 1024, 99991] {
            for b in [3u64, 14, 27, 4096, 65537] {
                assert_eq!(gcd(a, b), gcd(b, a));
            }
        }
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240i128, 46), (7, 4), (11, 5), (1, 1), (100, 0)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(a * x + b * y, g, "bezout for ({a},{b})");
        }
    }

    #[test]
    fn paper_worked_example_inverses() {
        // Section 2.2 primary route {4, 7, 11}:
        assert_eq!(mod_inverse(77, 4), Some(1));
        assert_eq!(mod_inverse(44, 7), Some(4));
        assert_eq!(mod_inverse(28, 11), Some(2));
        // Driven-deflection example {4, 7, 11, 5}:
        assert_eq!(mod_inverse(385, 4), Some(1));
        assert_eq!(mod_inverse(220, 7), Some(5));
        assert_eq!(mod_inverse(140, 11), Some(7));
        assert_eq!(mod_inverse(308, 5), Some(2));
    }

    #[test]
    fn inverse_verifies() {
        for m in [3u64, 4, 5, 7, 11, 13, 101, 997] {
            for a in 1..m {
                if gcd(a, m) == 1 {
                    let inv = mod_inverse(a, m).unwrap();
                    assert_eq!((a as u128 * inv as u128) % m as u128, 1);
                    assert!(inv < m);
                }
            }
        }
    }

    #[test]
    fn inverse_of_non_coprime_is_none() {
        assert_eq!(mod_inverse(4, 8), None);
        assert_eq!(mod_inverse(10, 15), None);
        assert_eq!(mod_inverse(0, 7), None);
    }

    #[test]
    fn inverse_degenerate_moduli() {
        assert_eq!(mod_inverse(3, 0), None);
        assert_eq!(mod_inverse(3, 1), None);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 11), 77);
        assert_eq!(lcm(u64::MAX, 2), u64::MAX); // saturates
    }

    #[test]
    fn coprime_predicate() {
        assert!(coprime(4, 7));
        assert!(!coprime(4, 10));
        assert!(coprime(1, 1));
    }
}
