//! Pairwise-coprime ID sets and allocation strategies.
//!
//! Every core switch in a KAR network carries a *switch ID*, and the whole
//! set must be pairwise coprime (the paper, §2: "the set of Switch IDs in
//! the network must be coprimes integers"). IDs need not be prime — the
//! paper's own example uses 4. A switch with `d` ports additionally needs
//! an ID strictly greater than the largest port index it must encode, i.e.
//! `id ≥ d` when ports are numbered `0..d`.

use crate::gcd::gcd;

/// Checks that all values in `ids` are pairwise coprime and `≥ 2`.
///
/// # Examples
///
/// ```
/// assert!(kar_rns::pairwise_coprime(&[4, 7, 11, 5]));
/// assert!(!kar_rns::pairwise_coprime(&[4, 10])); // share factor 2
/// ```
pub fn pairwise_coprime(ids: &[u64]) -> bool {
    if ids.iter().any(|&x| x < 2) {
        return false;
    }
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if gcd(ids[i], ids[j]) != 1 {
                return false;
            }
        }
    }
    true
}

/// Returns the first offending pair `(i, j, gcd)` if `ids` is not pairwise
/// coprime, for diagnostics.
pub fn first_common_factor(ids: &[u64]) -> Option<(usize, usize, u64)> {
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let g = gcd(ids[i], ids[j]);
            if g != 1 {
                return Some((i, j, g));
            }
        }
    }
    None
}

/// Strategy used by [`IdAllocator`] to hand out pairwise-coprime IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IdStrategy {
    /// Consecutive primes `2, 3, 5, 7, …` skipping those below the port
    /// count. Primes are automatically pairwise coprime, and small primes
    /// minimize `Π sᵢ`, i.e. the route-ID bit length (Eq. 9).
    #[default]
    SmallestPrimes,
    /// Smallest usable integers that stay pairwise coprime with everything
    /// allocated so far (allows prime powers such as 4, 9, 25 — like the
    /// paper's example ID 4). Can beat `SmallestPrimes` on bit length for
    /// small networks.
    SmallestCoprime,
    /// Primes in allocation order but starting from a floor, e.g. to leave
    /// room for port counts unknown at assignment time.
    PrimesFrom(u64),
    /// Consecutive primes capped at an exclusive ceiling — models hardware
    /// that stores switch IDs in a fixed field width (`PrimesBelow(1 << w)`
    /// for `w`-bit IDs). Unlike the open-ended strategies, this one
    /// genuinely exhausts: by the prime number theorem roughly
    /// `ceiling / ln(ceiling)` switches fit, which is what the scale
    /// campaign's key-growth study measures per strategy.
    PrimesBelow(u64),
}

/// Incremental allocator of pairwise-coprime switch IDs.
///
/// The controller (or a local setup procedure, §2 of the paper) assigns one
/// ID per core switch. Each request states the switch's port count so that
/// every port index `0..ports` is representable as a residue mod the ID.
///
/// # Examples
///
/// ```
/// use kar_rns::{IdAllocator, IdStrategy, pairwise_coprime};
///
/// let mut alloc = IdAllocator::new(IdStrategy::SmallestPrimes);
/// let ids: Vec<u64> = (0..8).map(|_| alloc.allocate(4).unwrap()).collect();
/// assert!(pairwise_coprime(&ids));
/// assert!(ids.iter().all(|&id| id > 4));
/// ```
#[derive(Debug, Clone)]
pub struct IdAllocator {
    strategy: IdStrategy,
    allocated: Vec<u64>,
}

impl IdAllocator {
    /// Creates an empty allocator with the given strategy.
    pub fn new(strategy: IdStrategy) -> Self {
        IdAllocator {
            strategy,
            allocated: Vec::new(),
        }
    }

    /// Creates an allocator pre-seeded with IDs already in use (e.g. when
    /// reconstructing the paper's hand-labelled topologies).
    ///
    /// # Errors
    ///
    /// Returns [`IdError::NotCoprime`] if the seed set is not pairwise
    /// coprime, mirroring the network-wide invariant.
    pub fn with_reserved(strategy: IdStrategy, reserved: &[u64]) -> Result<Self, IdError> {
        if !pairwise_coprime(reserved) {
            let (i, j, g) =
                first_common_factor(reserved).expect("non-coprime set must have an offending pair");
            return Err(IdError::NotCoprime {
                a: reserved[i],
                b: reserved[j],
                factor: g,
            });
        }
        Ok(IdAllocator {
            strategy,
            allocated: reserved.to_vec(),
        })
    }

    /// IDs handed out (or reserved) so far.
    pub fn allocated(&self) -> &[u64] {
        &self.allocated
    }

    /// Key-growth accounting: the route-ID bit length a route crossing
    /// *every* allocated switch would need, i.e. `(Π idᵢ − 1).bits()`
    /// (Eq. 9 applied to the whole allocation). This is the worst case
    /// over all routes in the network and the quantity the scale
    /// campaign tracks per [`IdStrategy`] as topologies grow.
    pub fn allocated_bits(&self) -> u32 {
        crate::crt::route_id_bit_length(&self.allocated)
    }

    /// Allocates the next ID for a switch with `ports` ports.
    ///
    /// The returned ID is strictly greater than `ports`, so that every port
    /// index `0..=ports` (including a possible sentinel) is a valid residue.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::Exhausted`] if no ID below an internal search
    /// bound stays coprime with all previously allocated IDs (practically
    /// unreachable for sane networks).
    pub fn allocate(&mut self, ports: usize) -> Result<u64, IdError> {
        let floor = match self.strategy {
            IdStrategy::PrimesFrom(f) => f.max(ports as u64 + 1),
            _ => ports as u64 + 1,
        };
        let mut candidate = floor.max(2);
        let bound = match self.strategy {
            IdStrategy::PrimesBelow(ceiling) => ceiling.min(1u64 << 32),
            _ => 1u64 << 32,
        };
        while candidate < bound {
            let ok = match self.strategy {
                IdStrategy::SmallestCoprime => true,
                IdStrategy::SmallestPrimes
                | IdStrategy::PrimesFrom(_)
                | IdStrategy::PrimesBelow(_) => is_prime(candidate),
            };
            if ok && self.allocated.iter().all(|&a| gcd(a, candidate) == 1) {
                self.allocated.push(candidate);
                return Ok(candidate);
            }
            candidate += 1;
        }
        Err(IdError::Exhausted { ports })
    }
}

/// Errors from switch-ID allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdError {
    /// Two reserved IDs share a common factor.
    NotCoprime {
        /// First offending ID.
        a: u64,
        /// Second offending ID.
        b: u64,
        /// Their shared factor.
        factor: u64,
    },
    /// The allocator could not find a usable ID.
    Exhausted {
        /// Port count of the switch that could not be served.
        ports: usize,
    },
}

impl std::fmt::Display for IdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdError::NotCoprime { a, b, factor } => {
                write!(f, "switch ids {a} and {b} share factor {factor}")
            }
            IdError::Exhausted { ports } => {
                write!(f, "no coprime id available for a switch with {ports} ports")
            }
        }
    }
}

impl std::error::Error for IdError {}

/// Deterministic primality test, exact for all `u64` (Miller–Rabin with a
/// fixed witness set).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // This witness set is exact for every n < 3.3 * 10^24 (Sorenson &
    // Webster), hence for all u64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_ids_are_coprime() {
        // Figure 1 uses {4, 5, 7, 11} and notes 4 is fine because the
        // requirement is pairwise coprimality, not primality.
        assert!(pairwise_coprime(&[4, 5, 7, 11]));
    }

    #[test]
    fn topo15_and_rnp_id_sets_are_coprime() {
        assert!(pairwise_coprime(&[
            10, 7, 13, 29, 11, 19, 31, 17, 37, 41, 23, 43
        ]));
        assert!(pairwise_coprime(&[
            7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
            101, 103, 107, 109, 113, 127
        ]));
    }

    #[test]
    fn rejects_shared_factors() {
        assert!(!pairwise_coprime(&[6, 9]));
        assert!(!pairwise_coprime(&[10, 5, 7]));
        assert_eq!(first_common_factor(&[7, 10, 5]), Some((1, 2, 5)));
        assert_eq!(first_common_factor(&[7, 11, 13]), None);
    }

    #[test]
    fn rejects_ids_below_two() {
        assert!(!pairwise_coprime(&[1, 7]));
        assert!(!pairwise_coprime(&[0]));
        assert!(pairwise_coprime(&[]));
    }

    #[test]
    fn allocator_smallest_primes_respects_port_floor() {
        let mut alloc = IdAllocator::new(IdStrategy::SmallestPrimes);
        let id = alloc.allocate(6).unwrap();
        assert_eq!(id, 7); // smallest prime > 6
        let id2 = alloc.allocate(2).unwrap();
        assert_eq!(id2, 3);
    }

    #[test]
    fn allocator_smallest_coprime_uses_prime_powers() {
        let mut alloc = IdAllocator::new(IdStrategy::SmallestCoprime);
        let ids: Vec<u64> = (0..6).map(|_| alloc.allocate(1).unwrap()).collect();
        // 4 is skipped (shares factor 2 with 2), 9 (shares 3), etc.
        assert_eq!(ids, vec![2, 3, 5, 7, 11, 13]);
        assert!(pairwise_coprime(&ids));
    }

    #[test]
    fn allocator_smallest_coprime_uses_prime_powers_when_base_free() {
        // Seeded with odd primes only, the smallest usable ID is 4 = 2²,
        // exactly like the paper's example switch ID 4 next to {5, 7, 11}.
        let mut alloc =
            IdAllocator::with_reserved(IdStrategy::SmallestCoprime, &[5, 7, 11]).unwrap();
        assert_eq!(alloc.allocate(3).unwrap(), 4);
        assert_eq!(alloc.allocate(3).unwrap(), 9);
        assert!(pairwise_coprime(alloc.allocated()));
    }

    #[test]
    fn allocator_with_reserved_extends_coprimality() {
        let mut alloc =
            IdAllocator::with_reserved(IdStrategy::SmallestPrimes, &[4, 5, 7, 11]).unwrap();
        for _ in 0..10 {
            let id = alloc.allocate(3).unwrap();
            assert!(alloc.allocated().iter().filter(|&&a| a == id).count() == 1);
        }
        assert!(pairwise_coprime(alloc.allocated()));
    }

    #[test]
    fn allocator_rejects_bad_seed() {
        let err = IdAllocator::with_reserved(IdStrategy::SmallestPrimes, &[6, 9]).unwrap_err();
        assert_eq!(
            err,
            IdError::NotCoprime {
                a: 6,
                b: 9,
                factor: 3
            }
        );
        assert!(err.to_string().contains("share factor 3"));
    }

    #[test]
    fn allocator_primes_from_floor() {
        let mut alloc = IdAllocator::new(IdStrategy::PrimesFrom(100));
        assert_eq!(alloc.allocate(2).unwrap(), 101);
        assert_eq!(alloc.allocate(2).unwrap(), 103);
    }

    #[test]
    fn primes_below_exhausts_at_the_ceiling() {
        // 8-bit switch IDs: primes > 2 and < 256. There are 53 such
        // primes (3..=251), so the 54th allocation must fail.
        let mut alloc = IdAllocator::new(IdStrategy::PrimesBelow(256));
        let mut got = Vec::new();
        loop {
            match alloc.allocate(2) {
                Ok(id) => {
                    assert!(id < 256);
                    got.push(id);
                }
                Err(e) => {
                    assert_eq!(e, IdError::Exhausted { ports: 2 });
                    break;
                }
            }
        }
        assert_eq!(got.len(), 53);
        assert!(pairwise_coprime(&got));
    }

    #[test]
    fn allocated_bits_tracks_key_growth() {
        let mut alloc = IdAllocator::new(IdStrategy::SmallestPrimes);
        assert_eq!(alloc.allocated_bits(), 0);
        let mut last = 0;
        for _ in 0..12 {
            alloc.allocate(2).unwrap();
            let bits = alloc.allocated_bits();
            assert!(bits > last, "every new ID must grow the worst-case key");
            last = bits;
        }
        // Matches Eq. 9 on the Table-1 basis.
        let table1 =
            IdAllocator::with_reserved(IdStrategy::SmallestPrimes, &[10, 7, 13, 29]).unwrap();
        assert_eq!(table1.allocated_bits(), 15);
    }

    #[test]
    fn primality_exactness_small_range() {
        let primes: Vec<u64> = (0..200u64).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
                173, 179, 181, 191, 193, 197, 199
            ]
        );
    }

    #[test]
    fn primality_large_values() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1, Mersenne prime
        assert!(!is_prime(2_147_483_649));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(18_446_744_073_709_551_615)); // u64::MAX = 3·5·17·257·641·65537·6700417
    }
}
