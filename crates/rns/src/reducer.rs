//! Precomputed reduction state for the forwarding modulus.
//!
//! KAR's dataplane operation is `R mod s` for a fixed switch ID `s` and a
//! per-packet route ID `R`. [`BigUint::rem_u64`] re-derives the full
//! division state on every call (a quotient allocation plus one 128-bit
//! division per limb), which makes the *simulator* — not the routing
//! scheme — the per-hop bottleneck. A [`Reducer`] is built once per
//! switch and reduces any route ID without dividing at all:
//!
//! * powers of two (the paper's worked example uses switch ID 4) reduce
//!   with a mask;
//! * every other modulus uses the reciprocal method of Lemire, Kaser &
//!   Kurz ("Faster remainder by direct computation", 2019): with
//!   `c = ⌊2¹²⁸/d⌋ + 1`, the residue of any `u64` value `n` is
//!   `⌊((c·n mod 2¹²⁸) · d) / 2¹²⁸⌋`, exact whenever `n·d < 2¹²⁸` —
//!   always true for 64-bit operands;
//! * multi-limb route IDs fold limb by limb (Horner), re-using the same
//!   constant: for `d ≤ 2³²` each 32-bit half folds through the
//!   reciprocal (the intermediate `acc·2³² + half` stays below `2⁶⁴`),
//!   and for larger `d` the fold uses the cached `2⁶⁴ mod d`.
//!
//! The result is bit-for-bit identical to [`BigUint::rem_u64`] — the
//! simulator's determinism tests run with the fast path on and off and
//! compare outputs byte for byte.

use crate::biguint::BigUint;

/// Division-free modular reduction by a fixed `u64` modulus.
///
/// # Examples
///
/// ```
/// use kar_rns::{BigUint, Reducer};
///
/// let r = Reducer::new(29);
/// assert_eq!(r.rem_u64(660), 660 % 29);
/// let big: BigUint = "123456789012345678901234567890".parse().unwrap();
/// assert_eq!(r.rem(&big), big.rem_u64(29));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reducer {
    d: u64,
    mode: Mode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `d` is a power of two (including 1): residue is a mask.
    Pow2 { mask: u64 },
    /// `d < 2¹⁶`: Horner over 32-bit halves through the *64-bit*
    /// reciprocal `c64 = ⌊2⁶⁴/d⌋ + 1` — one native multiply plus one
    /// widening multiply per fold. Exact because each fold operand is
    /// `acc·2³² + half < d·2³²` and the error term satisfies
    /// `n·(d − 2⁶⁴ mod d) ≤ d²·2³² < 2⁶⁴`. This is the deployed case:
    /// switch IDs are small coprimes (topo15/rnp28 max out below 2⁸).
    Tiny { c64: u64 },
    /// `2¹⁶ ≤ d ≤ 2³² − 1`: same Horner fold through the 128-bit
    /// reciprocal (the 64-bit one is no longer exact).
    Small { c: u128 },
    /// `d > 2³² − 1`: Horner over full limbs with `b64 = 2⁶⁴ mod d`.
    Large { c: u128, b64: u64 },
}

impl Reducer {
    /// Precomputes reduction constants for the modulus `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` (mirrors [`BigUint::rem_u64`]).
    pub fn new(d: u64) -> Self {
        assert!(d != 0, "division by zero");
        let mode = if d.is_power_of_two() {
            Mode::Pow2 { mask: d - 1 }
        } else if d < 1 << 16 {
            // c64 = ⌊2⁶⁴/d⌋ + 1; d is not a power of two, so it does not
            // divide 2⁶⁴ and ⌊(2⁶⁴−1)/d⌋ = ⌊2⁶⁴/d⌋.
            Mode::Tiny {
                c64: u64::MAX / d + 1,
            }
        } else {
            // c = ⌊2¹²⁸/d⌋ + 1, same argument one level up.
            let c = u128::MAX / d as u128 + 1;
            if d <= u32::MAX as u64 {
                Mode::Small { c }
            } else {
                let b64 = ((u64::MAX % d) + 1) % d;
                Mode::Large { c, b64 }
            }
        };
        Reducer { d, mode }
    }

    /// The modulus this reducer was built for.
    pub fn modulus(&self) -> u64 {
        self.d
    }

    /// `n mod d` without dividing.
    #[inline]
    pub fn rem_u64(&self, n: u64) -> u64 {
        match self.mode {
            Mode::Pow2 { mask } => n & mask,
            // A full u64 exceeds the 64-bit reciprocal's exactness bound;
            // fold its halves (both operands stay below d·2³²).
            Mode::Tiny { c64 } => {
                let acc = fastmod64(c64, n >> 32, self.d);
                fastmod64(c64, acc << 32 | n & 0xffff_ffff, self.d)
            }
            Mode::Small { c } | Mode::Large { c, .. } => fastmod(c, n, self.d),
        }
    }

    /// `n mod d` for a multi-limb route ID, bit-identical to
    /// [`BigUint::rem_u64`] but with no quotient allocation and no
    /// 128-bit division on the hot path.
    pub fn rem(&self, n: &BigUint) -> u64 {
        let limbs = n.limbs();
        match self.mode {
            // A power-of-two modulus only sees the low limb.
            Mode::Pow2 { mask } => limbs.first().copied().unwrap_or(0) & mask,
            Mode::Tiny { c64 } => {
                // Same fold as Small, but each step is two native
                // multiplies instead of a 128-bit schoolbook product.
                let mut acc = 0u64;
                for &limb in limbs.iter().rev() {
                    acc = fastmod64(c64, acc << 32 | limb >> 32, self.d);
                    acc = fastmod64(c64, acc << 32 | limb & 0xffff_ffff, self.d);
                }
                acc
            }
            Mode::Small { c } => {
                // acc < d ≤ 2³²−1, so acc·2³² + half fits a u64 and the
                // reciprocal fold is exact.
                let mut acc = 0u64;
                for &limb in limbs.iter().rev() {
                    acc = fastmod(c, acc << 32 | limb >> 32, self.d);
                    acc = fastmod(c, acc << 32 | limb & 0xffff_ffff, self.d);
                }
                acc
            }
            Mode::Large { b64, .. } => {
                // (acc·2⁶⁴ + limb) mod d = (acc·(2⁶⁴ mod d) + limb) mod d;
                // the intermediate is < d² + 2⁶⁴ < 2¹²⁸. One 128-bit
                // modulo per limb, but switch IDs above 2³² are not a
                // realistic deployment — this arm exists for totality.
                let mut acc = 0u64;
                for &limb in limbs.iter().rev() {
                    let t = acc as u128 * b64 as u128 + limb as u128;
                    acc = (t % self.d as u128) as u64;
                }
                acc
            }
        }
    }
}

/// `n mod d` via the precomputed reciprocal `c = ⌊2¹²⁸/d⌋ + 1`.
///
/// Exactness condition (Lemire et al., Thm. 1): `n·(d − 2¹²⁸ mod d) < 2¹²⁸`,
/// implied by `n·d < 2¹²⁸` — always true for 64-bit `n` and `d`.
/// `n mod d` via the 64-bit reciprocal `c64 = ⌊2⁶⁴/d⌋ + 1`.
///
/// Exactness condition: `n·(d − 2⁶⁴ mod d) < 2⁶⁴`, implied by
/// `n·d < 2⁶⁴` — the caller guarantees `n < d·2³²` and `d < 2¹⁶`.
#[inline]
fn fastmod64(c64: u64, n: u64, d: u64) -> u64 {
    let frac = c64.wrapping_mul(n);
    ((frac as u128 * d as u128) >> 64) as u64
}

#[inline]
fn fastmod(c: u128, n: u64, d: u64) -> u64 {
    let frac = c.wrapping_mul(n as u128);
    // ⌊frac·d / 2¹²⁸⌋ without a 256-bit type: split frac into 64-bit
    // halves; hi·d ≤ (2⁶⁴−1)² and the added carry is < 2⁶⁴, so the sum
    // cannot overflow u128.
    let lo = (frac as u64) as u128;
    let hi = frac >> 64;
    let d = d as u128;
    ((hi * d + ((lo * d) >> 64)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_modulo_on_u64() {
        let divisors = [
            1u64,
            2,
            3,
            4,
            5,
            7,
            11,
            13,
            29,
            31,
            97,
            255,
            256,
            26_390,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u32::MAX as u64 + 2,
            (1 << 40) - 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let values = [
            0u64,
            1,
            2,
            44,
            660,
            26_390,
            u32::MAX as u64,
            1 << 32,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &d in &divisors {
            let r = Reducer::new(d);
            assert_eq!(r.modulus(), d);
            for &n in &values {
                assert_eq!(r.rem_u64(n), n % d, "{n} mod {d}");
            }
        }
    }

    #[test]
    fn matches_biguint_rem_on_multi_limb_values() {
        let vals: Vec<BigUint> = [
            "0",
            "1",
            "660",
            "170980810",
            "18446744073709551615",                    // 2^64 - 1
            "18446744073709551616",                    // 2^64
            "340282366920938463463374607431768211455", // 2^128 - 1
            "340282366920938463463374607431768211457",
            "123456789012345678901234567890123456789012345678901234567890",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        for d in [
            1u64,
            2,
            4,
            7,
            11,
            29,
            31,
            26_390,
            4_294_967_291,
            1 << 33,
            u64::MAX,
        ] {
            let r = Reducer::new(d);
            for v in &vals {
                assert_eq!(r.rem(v), v.rem_u64(d), "{v} mod {d}");
            }
        }
    }

    #[test]
    fn paper_worked_example() {
        // Route ID 660 over basis {4, 7, 11, 5} (paper §2.2).
        let route = BigUint::from(660u64);
        for (d, port) in [(4u64, 0u64), (7, 2), (11, 0), (5, 0)] {
            assert_eq!(Reducer::new(d).rem(&route), port);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_modulus_panics() {
        let _ = Reducer::new(0);
    }
}
