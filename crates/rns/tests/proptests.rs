//! Property-based tests of the RNS substrate (DESIGN.md invariants 1, 2, 3, 7).

use kar_rns::{
    crt_decode, crt_encode, crt_extend, gcd, is_prime, mod_inverse, pairwise_coprime,
    route_id_bit_length, BigUint, IdAllocator, IdStrategy, Reducer, RnsBasis,
};
use proptest::prelude::*;

/// Strategy: route IDs hugging limb boundaries — `2^(64k) + delta` for
/// small signed deltas — where the Horner fold's carry handling is most
/// likely to betray a reduction bug, plus fully random limb vectors.
fn limb_boundary_route_id() -> impl Strategy<Value = BigUint> {
    let boundary = (1u32..5, 0u64..4, any::<bool>()).prop_map(|(k, delta, below)| {
        // 2^(64k) is a 1 followed by k zero limbs.
        let mut limbs = vec![0u64; k as usize];
        limbs.push(1);
        let base = BigUint::from_limbs(limbs);
        if below {
            // 2^(64k) - 1 - delta: all-ones limbs minus a small offset.
            base.sub_big(&BigUint::from(delta + 1))
        } else {
            base.add_big(&BigUint::from(delta))
        }
    });
    let random = proptest::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs);
    prop_oneof![boundary, random]
}

/// Strategy: a pairwise-coprime modulo set built from distinct primes and a
/// possible power of two (like the paper's switch ID 4 or 10-style even ID).
fn coprime_set() -> impl Strategy<Value = Vec<u64>> {
    let primes: Vec<u64> = (3..2000u64).filter(|&n| is_prime(n)).collect();
    (
        proptest::sample::subsequence(primes, 1..12),
        1u32..4,
        any::<bool>(),
    )
        .prop_map(|(mut set, pow2, include_even)| {
            if include_even {
                set.push(1 << pow2);
            }
            set
        })
}

/// Strategy: a coprime set plus in-range residues for each modulus.
fn basis_with_residues() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    coprime_set().prop_flat_map(|set| {
        let residues: Vec<BoxedStrategy<u64>> = set.iter().map(|&m| (0..m).boxed()).collect();
        (Just(set), residues)
    })
}

proptest! {
    /// Invariant 1: decode(encode(S, P)) == P and 0 <= R < M.
    #[test]
    fn crt_round_trip((moduli, residues) in basis_with_residues()) {
        let basis = RnsBasis::new(moduli).unwrap();
        let r = crt_encode(&basis, &residues).unwrap();
        prop_assert!(r < basis.product());
        prop_assert_eq!(crt_decode(&r, &basis), residues);
    }

    /// Invariant 1 (uniqueness): two distinct residue vectors encode to
    /// distinct route IDs.
    #[test]
    fn crt_injective((moduli, residues) in basis_with_residues(), flip_idx in any::<proptest::sample::Index>()) {
        let basis = RnsBasis::new(moduli.clone()).unwrap();
        let i = flip_idx.index(moduli.len());
        let mut other = residues.clone();
        other[i] = (other[i] + 1) % moduli[i];
        prop_assume!(other != residues); // modulus 1 impossible, but be safe
        let r1 = crt_encode(&basis, &residues).unwrap();
        let r2 = crt_encode(&basis, &other).unwrap();
        prop_assert_ne!(r1, r2);
    }

    /// Invariant 2: extending a route ID with a disjoint switch never
    /// changes the residues of the original basis.
    #[test]
    fn extension_preserves_primary_residues(
        (moduli, residues) in basis_with_residues(),
        extra_port_seed in any::<u64>(),
    ) {
        let basis = RnsBasis::new(moduli.clone()).unwrap();
        let r = crt_encode(&basis, &residues).unwrap();
        // Find a prime coprime with everything in the basis.
        let extra = (2001..4000u64)
            .find(|&n| is_prime(n) && moduli.iter().all(|&m| gcd(m, n) == 1))
            .unwrap();
        let port = extra_port_seed % extra;
        let (r2, b2) = crt_extend(&r, &basis, extra, port).unwrap();
        prop_assert_eq!(crt_decode(&r2, &basis), residues);
        prop_assert_eq!(r2.rem_u64(extra), port);
        prop_assert!(r2 < b2.product());
    }

    /// Order independence of encoding (paper §2.2: the CRT sum is
    /// commutative, so the switch sequence is irrelevant).
    #[test]
    fn encode_order_independent((moduli, residues) in basis_with_residues(), seed in any::<u64>()) {
        let basis = RnsBasis::new(moduli.clone()).unwrap();
        let r1 = crt_encode(&basis, &residues).unwrap();
        // Deterministic permutation from the seed.
        let mut perm: Vec<usize> = (0..moduli.len()).collect();
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let moduli2: Vec<u64> = perm.iter().map(|&i| moduli[i]).collect();
        let residues2: Vec<u64> = perm.iter().map(|&i| residues[i]).collect();
        let r2 = crt_encode(&RnsBasis::new(moduli2).unwrap(), &residues2).unwrap();
        prop_assert_eq!(r1, r2);
    }

    /// CRT commutativity end-to-end (paper §2.2): take a primary path's
    /// switches and a disjoint set of protection switches; folding the
    /// protection switches into the primary route ID one at a time via
    /// `crt_extend` still decodes the correct port at *every* primary
    /// switch, and agrees with encoding the whole set in one shot.
    #[test]
    fn protection_fold_preserves_primary_ports(
        (moduli, residues) in basis_with_residues(),
        split_idx in any::<proptest::sample::Index>(),
    ) {
        prop_assume!(moduli.len() >= 2);
        // 1..len switches form the primary path; the rest protect it.
        let k = 1 + split_idx.index(moduli.len() - 1);
        let (primary_m, protect_m) = moduli.split_at(k);
        let (primary_p, protect_p) = residues.split_at(k);
        let mut basis = RnsBasis::new(primary_m.to_vec()).unwrap();
        let mut r = crt_encode(&basis, primary_p).unwrap();
        for (&switch, &port) in protect_m.iter().zip(protect_p) {
            let (r2, b2) = crt_extend(&r, &basis, switch, port).unwrap();
            r = r2;
            basis = b2;
        }
        // Every primary switch still computes its original output port…
        for (&switch, &port) in primary_m.iter().zip(primary_p) {
            prop_assert_eq!(r.rem_u64(switch), port);
        }
        // …every protection switch got its driven port…
        for (&switch, &port) in protect_m.iter().zip(protect_p) {
            prop_assert_eq!(r.rem_u64(switch), port);
        }
        // …and the fold equals the one-shot joint encoding.
        let joint = crt_encode(&RnsBasis::new(moduli.clone()).unwrap(), &residues).unwrap();
        prop_assert_eq!(r, joint);
    }

    /// Invariant 3: the allocator only produces pairwise-coprime sets with
    /// IDs above the port count.
    #[test]
    fn allocator_invariants(port_counts in proptest::collection::vec(1usize..12, 1..20)) {
        let mut alloc = IdAllocator::new(IdStrategy::SmallestPrimes);
        let mut ids = Vec::new();
        for &ports in &port_counts {
            let id = alloc.allocate(ports).unwrap();
            prop_assert!(id > ports as u64);
            ids.push(id);
        }
        prop_assert!(pairwise_coprime(&ids));
    }

    /// Invariant 3 for the prime-power strategy as well.
    #[test]
    fn allocator_coprime_strategy(port_counts in proptest::collection::vec(1usize..12, 1..20)) {
        let mut alloc = IdAllocator::new(IdStrategy::SmallestCoprime);
        for &ports in &port_counts {
            let id = alloc.allocate(ports).unwrap();
            prop_assert!(id > ports as u64);
        }
        prop_assert!(pairwise_coprime(alloc.allocated()));
    }

    /// Invariant 7: Eq. 9 bit length agrees with the BigUint bit count of
    /// M - 1.
    #[test]
    fn bit_length_matches_biguint(moduli in coprime_set()) {
        let m: BigUint = moduli.iter().map(|&x| BigUint::from(x)).product();
        let expect = m.sub_big(&BigUint::one()).bits();
        prop_assert_eq!(route_id_bit_length(&moduli), expect);
    }

    /// BigUint divmod is Euclidean: a = q*b + r with r < b.
    #[test]
    fn biguint_divmod_euclidean(a_limbs in proptest::collection::vec(any::<u64>(), 0..5),
                                b_limbs in proptest::collection::vec(any::<u64>(), 1..4)) {
        let a = BigUint::from_limbs(a_limbs);
        let b = BigUint::from_limbs(b_limbs);
        prop_assume!(!b.is_zero());
        let (q, r) = a.divmod_big(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_big(&b).add_big(&r), a);
    }

    /// BigUint decimal formatting round-trips through parsing.
    #[test]
    fn biguint_display_parse_round_trip(limbs in proptest::collection::vec(any::<u64>(), 0..5)) {
        let a = BigUint::from_limbs(limbs);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
    }

    /// BigUint big-endian bytes round-trip.
    #[test]
    fn biguint_bytes_round_trip(limbs in proptest::collection::vec(any::<u64>(), 0..6)) {
        let a = BigUint::from_limbs(limbs);
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    /// Modular inverse verifies against its definition whenever it exists.
    #[test]
    fn mod_inverse_verifies(a in 1u64..100_000, m in 2u64..100_000) {
        match mod_inverse(a, m) {
            Some(inv) => {
                prop_assert_eq!((a as u128 * inv as u128) % m as u128, 1);
                prop_assert!(inv < m);
            }
            None => prop_assert_ne!(gcd(a, m), 1),
        }
    }

    /// The precomputed [`Reducer`] agrees with naive BigUint division for
    /// every modulus class (power of two, small, > 2³²) on limb-boundary
    /// route IDs — the fast dataplane path must be bit-identical to the
    /// slow one or byte-identical replay breaks.
    #[test]
    fn reducer_matches_naive_modulo(
        route in limb_boundary_route_id(),
        d in prop_oneof![
            1u64..=1 << 17,                      // realistic switch IDs
            (0u32..64).prop_map(|s| 1u64 << s),  // every power of two
            (u32::MAX as u64 - 8)..(u32::MAX as u64 + 8), // Small/Large seam
            any::<u64>(),                        // totality
        ],
    ) {
        prop_assume!(d != 0);
        let r = Reducer::new(d);
        prop_assert_eq!(r.rem(&route), route.rem_u64(d), "{} mod {}", route, d);
        let low = route.limbs().first().copied().unwrap_or(0);
        prop_assert_eq!(r.rem_u64(low), low % d);
    }

    /// gcd is commutative, associative with itself, and divides both args.
    #[test]
    fn gcd_laws(a in any::<u64>(), b in any::<u64>()) {
        let g = gcd(a, b);
        prop_assert_eq!(g, gcd(b, a));
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }
}
