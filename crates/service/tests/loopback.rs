//! Loopback integration: the daemon's encode responses must carry
//! byte-for-byte the header an in-process controller produces — the
//! sim/service byte-identity contract of the wire redesign.

use kar::recovery::RecoveryConfig;
use kar::{EncodeRequest, Protection, RouteHeader, WireMode};
use kar_service::{expected_header, Daemon, ServiceClient, ServiceConfig};
use kar_simnet::SimTime;
use kar_topology::{rnp28, topo15, Topology};

fn service_recovery() -> RecoveryConfig {
    RecoveryConfig {
        notification_delay: SimTime::ZERO,
        protection: Protection::None,
    }
}

/// Every ordered edge pair of `topo`, encoded over the socket in both
/// wire modes, must equal the in-process header bytes.
fn assert_all_pairs_byte_identical(topo: Topology) {
    let pairs: Vec<_> = {
        let edges = topo.edge_nodes();
        edges
            .iter()
            .flat_map(|&s| edges.iter().map(move |&d| (s, d)))
            .filter(|(s, d)| s != d)
            .collect()
    };
    let reference = topo.clone();
    let daemon = Daemon::spawn(ServiceConfig::new(topo)).expect("spawn");
    let mut client = ServiceClient::connect(daemon.addr()).expect("connect");
    for &(src, dst) in &pairs {
        let req = EncodeRequest::new(src, dst);
        let expected = expected_header(&reference, &req, service_recovery(), &[]).expect("encode");
        for mode in [WireMode::Fixed, WireMode::Varint] {
            let raw = client
                .encode_raw(src.0 as u32, dst.0 as u32, &Protection::None, mode)
                .expect("service encode");
            assert_eq!(
                raw,
                expected.to_wire(mode),
                "{src} -> {dst} ({mode}): service bytes must equal in-process bytes"
            );
            // And they parse back to the same header value.
            let (parsed, consumed) = RouteHeader::from_wire(&raw).expect("parse");
            assert_eq!(consumed, raw.len());
            assert_eq!(parsed.unpack(), expected.unpack());
        }
    }
    drop(client);
    daemon.shutdown();
}

#[test]
fn every_topo15_route_is_byte_identical_over_the_socket() {
    assert_all_pairs_byte_identical(topo15::build());
}

#[test]
fn every_rnp28_route_is_byte_identical_over_the_socket() {
    assert_all_pairs_byte_identical(rnp28::build());
}

#[test]
fn protected_encode_matches_in_process_bytes() {
    let topo = topo15::build();
    let reference = topo.clone();
    let daemon = Daemon::spawn(ServiceConfig::new(topo)).expect("spawn");
    let mut client = ServiceClient::connect(daemon.addr()).expect("connect");
    let (as1, as3) = (reference.expect("AS1"), reference.expect("AS3"));
    let req = EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull);
    let expected = expected_header(&reference, &req, service_recovery(), &[]).unwrap();
    let raw = client
        .encode_raw(
            as1.0 as u32,
            as3.0 as u32,
            &Protection::AutoFull,
            WireMode::Fixed,
        )
        .unwrap();
    assert_eq!(raw, expected.to_wire(WireMode::Fixed));
    // The paper's fully protected AS1 -> AS3 route needs a 43-bit field.
    let (header, _) = RouteHeader::from_wire(&raw).unwrap();
    assert_eq!(header.bits(), 43);
    drop(client);
    daemon.shutdown();
}

#[test]
fn invalidate_switches_encodes_to_the_detour_and_back() {
    let topo = topo15::build();
    let reference = topo.clone();
    let failed = reference.expect_link("SW7", "SW13");
    let daemon = Daemon::spawn(ServiceConfig::new(topo)).expect("spawn");
    let mut client = ServiceClient::connect(daemon.addr()).expect("connect");
    let (as1, as3) = (reference.expect("AS1"), reference.expect("AS3"));
    let req = EncodeRequest::new(as1, as3);

    let original = client
        .encode(
            as1.0 as u32,
            as3.0 as u32,
            &Protection::None,
            WireMode::Fixed,
        )
        .unwrap();

    // Fail SW7-SW13: the next encode (same connection or a new one)
    // must serve the detour — the invalidate ack is the barrier.
    client.invalidate(failed.0 as u32, false).unwrap();
    let mut second = ServiceClient::connect(daemon.addr()).expect("connect");
    let detour = second
        .encode(
            as1.0 as u32,
            as3.0 as u32,
            &Protection::None,
            WireMode::Fixed,
        )
        .unwrap();
    assert_ne!(detour.unpack(), original.unpack());
    let expected =
        expected_header(&reference, &req, service_recovery(), &[(failed, false)]).unwrap();
    assert_eq!(detour.as_bytes(), expected.as_bytes());

    // Repair: the original route comes back.
    second.invalidate(failed.0 as u32, true).unwrap();
    let restored = client
        .encode(
            as1.0 as u32,
            as3.0 as u32,
            &Protection::None,
            WireMode::Fixed,
        )
        .unwrap();
    assert_eq!(restored.unpack(), original.unpack());

    let stats = client.stats().unwrap();
    assert_eq!(stats.invalidations, 2);
    assert_eq!(stats.encode_ok, 3);
    assert!(stats.requests >= 6);
    drop((client, second));
    daemon.shutdown();
}

#[test]
fn silent_connections_are_reaped_and_cannot_starve_the_pool() {
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::Duration;

    // One worker makes starvation deterministic: a pinned worker means
    // nobody else is ever served.
    let mut config = ServiceConfig::new(topo15::build());
    config.workers = 1;
    config.idle_timeout = Duration::from_millis(100);
    let daemon = Daemon::spawn(config).expect("spawn");

    // A slowloris peer: connects first, claims the only worker, and
    // never writes a byte. Held open across the whole test — only the
    // idle deadline can free the worker.
    let silent = TcpStream::connect(daemon.addr()).expect("connect silent");

    // A second peer sending a partial frame then stalling exercises the
    // mid-frame case once the worker gets to it.
    let mut stalled = TcpStream::connect(daemon.addr()).expect("connect stalled");
    stalled.write_all(&[0, 0]).expect("partial length prefix");

    // A real client queued behind both. With no idle deadline this
    // stats call would block forever; with one it is served as soon as
    // the reaper frees the worker.
    let mut client = ServiceClient::connect(daemon.addr()).expect("connect");
    let stats = client.stats().expect("stats served past the silent peers");
    assert_eq!(
        stats.idle_timeouts, 2,
        "both the silent and the mid-frame connection were reaped"
    );
    assert_eq!(stats.requests, 1, "only the real client's frame counted");

    drop((silent, stalled, client));
    daemon.shutdown();
}

#[test]
fn malformed_and_unroutable_requests_get_error_statuses() {
    use kar_service::proto::status;
    let topo = topo15::build();
    let nodes = topo.node_count() as u32;
    let daemon = Daemon::spawn(ServiceConfig::new(topo)).expect("spawn");
    let mut client = ServiceClient::connect(daemon.addr()).expect("connect");
    // Out-of-range node index.
    let err = client
        .encode_raw(nodes + 1, 0, &Protection::None, WireMode::Fixed)
        .unwrap_err();
    match err {
        kar_service::ClientError::Service { code, .. } => assert_eq!(code, status::BAD_REQUEST),
        other => panic!("expected service error, got {other}"),
    }
    // The connection survives the error and still serves requests.
    let stats = client.stats().unwrap();
    assert_eq!(stats.encode_err, 1);
    drop(client);
    daemon.shutdown();
}
