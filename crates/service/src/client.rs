//! A blocking client for the daemon's wire protocol (used by the
//! loopback tests and the `kar_service_load` driver).

use crate::proto::{self, Request, Response, ServiceStats};
use kar::{Protection, RouteHeader, WireMode};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The response payload did not parse.
    Proto(proto::ProtoError),
    /// The daemon answered with an error status.
    Service {
        /// One of [`proto::status`]'s non-zero codes.
        code: u8,
        /// The daemon's message.
        message: String,
    },
    /// The daemon answered with the wrong response kind for the
    /// request (e.g. `Ok` to an encode).
    UnexpectedResponse,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Service { code, message } => {
                write!(f, "service error {code}: {message}")
            }
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::ProtoError> for ClientError {
    fn from(e: proto::ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One framed connection to a daemon.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServiceClient {
    /// Connects (with `TCP_NODELAY` — the protocol is request/response).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = proto::encode_request(req)?;
        proto::write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        let payload = proto::read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Io(io::ErrorKind::UnexpectedEof.into()))?;
        let resp = proto::decode_response(&payload)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Service { code, message });
        }
        Ok(resp)
    }

    /// Encodes a route, returning the raw header bytes exactly as the
    /// daemon framed them in `mode`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol or service failures.
    pub fn encode_raw(
        &mut self,
        src: u32,
        dst: u32,
        protection: &Protection,
        mode: WireMode,
    ) -> Result<Vec<u8>, ClientError> {
        match self.round_trip(&Request::Encode {
            src,
            dst,
            protection: protection.clone(),
            mode,
        })? {
            Response::Header(bytes) => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Encodes a route and parses the returned header.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::encode_raw`]; a header that fails
    /// [`RouteHeader::from_wire`] or leaves trailing bytes is a
    /// [`ClientError::Proto`]-grade corruption reported as
    /// [`ClientError::UnexpectedResponse`].
    pub fn encode(
        &mut self,
        src: u32,
        dst: u32,
        protection: &Protection,
        mode: WireMode,
    ) -> Result<RouteHeader, ClientError> {
        let bytes = self.encode_raw(src, dst, protection, mode)?;
        match RouteHeader::from_wire(&bytes) {
            Ok((header, consumed)) if consumed == bytes.len() => Ok(header),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Reports a link transition; returns once the controller applied
    /// it (later encodes on any connection see the new state).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol or service failures.
    pub fn invalidate(&mut self, link: u32, up: bool) -> Result<(), ClientError> {
        match self.round_trip(&Request::Invalidate { link, up })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol or service failures.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
