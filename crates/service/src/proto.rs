//! The service wire protocol: length-prefixed frames carrying versioned
//! request/response payloads.
//!
//! Every frame is `[len: u32 BE][payload: len bytes]`. Payloads start
//! with a version byte ([`PROTOCOL_VERSION`]); requests follow with an
//! opcode byte, responses with a status byte. The full layouts live in
//! `docs/wire_protocol.md`; the route-ID bytes inside an encode
//! response are produced by [`kar::wire`] — byte-for-byte the same
//! serialization the simulator's packet path uses.
//!
//! Decoding is strict and total: every decoder consumes the whole
//! payload and rejects trailing bytes, so a request/response pair has
//! exactly one byte representation per ([`WireMode`]) choice.

use kar::{Protection, WireMode};
use std::fmt;
use std::io::{self, Read, Write};

/// Version byte leading every payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a frame payload. Generous: the largest legitimate
/// payload is an encode response carrying a route header, and
/// [`kar::wire::MAX_FIELD_BITS`] bounds those to ~8 KiB.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Request opcodes.
pub mod opcode {
    /// Encode a route and return its wire header.
    pub const ENCODE: u8 = 0x01;
    /// Report a link transition to the controller.
    pub const INVALIDATE: u8 = 0x02;
    /// Fetch daemon counters.
    pub const STATS: u8 = 0x03;
}

/// Response status codes (`0` is success; everything else is an error
/// whose body is a UTF-8 message).
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// The request payload did not parse (unknown opcode, bad
    /// protection tag, trailing bytes, …).
    pub const BAD_REQUEST: u8 = 1;
    /// The endpoints are disconnected ([`kar::KarError::NoPath`]).
    pub const NO_PATH: u8 = 2;
    /// Route encoding failed for another reason (header overflow,
    /// RNS error, …).
    pub const ENCODE_FAILED: u8 = 3;
    /// The daemon hit an internal error (e.g. its fault channel died).
    pub const INTERNAL: u8 = 4;
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `encode(src, dst, protection)` → the route's wire header,
    /// serialized in `mode`.
    Encode {
        /// Ingress edge, as a raw `NodeId` index.
        src: u32,
        /// Destination edge, as a raw `NodeId` index.
        dst: u32,
        /// Protection to fold into the route ID.
        protection: Protection,
        /// Framing of the returned header.
        mode: WireMode,
    },
    /// Report a link transition (`up = false` is a failure).
    Invalidate {
        /// Raw `LinkId` index.
        link: u32,
        /// `true` for repair, `false` for failure.
        up: bool,
    },
    /// Fetch the daemon's counters.
    Stats,
}

/// Daemon counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Frames served (all opcodes, including failed ones).
    pub requests: u64,
    /// Successful encodes.
    pub encode_ok: u64,
    /// Failed encodes (an error status was returned).
    pub encode_err: u64,
    /// Link transitions applied.
    pub invalidations: u64,
    /// Connections closed for staying silent past the idle deadline.
    pub idle_timeouts: u64,
    /// Hits in the shared [`kar::EncodingCache`].
    pub cache_hits: u64,
    /// Misses in the shared [`kar::EncodingCache`].
    pub cache_misses: u64,
    /// Nanoseconds since the daemon started.
    pub uptime_ns: u64,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Encode succeeded; the body is the `kar::wire` serialization of
    /// the route header.
    Header(Vec<u8>),
    /// Invalidate succeeded (the transition is applied — a subsequent
    /// encode on any connection sees it).
    Ok,
    /// Stats snapshot.
    Stats(ServiceStats),
    /// Any failure; `code` is one of [`status`]'s non-zero values.
    Error {
        /// The [`status`] code.
        code: u8,
        /// Human-readable cause.
        message: String,
    },
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload shorter than its layout.
    Truncated,
    /// Bytes past the end of the layout.
    TrailingBytes,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Unknown opcode.
    BadOpcode(u8),
    /// Unknown status byte combination.
    BadStatus(u8),
    /// Unknown protection tag.
    BadProtection(u8),
    /// Unknown [`WireMode`] discriminant.
    BadMode(u8),
    /// An error message was not UTF-8.
    BadMessage,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after payload"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadStatus(s) => write!(f, "unknown status {s:#04x}"),
            ProtoError::BadProtection(t) => write!(f, "unknown protection tag {t:#04x}"),
            ProtoError::BadMode(m) => write!(f, "unknown wire mode {m:#04x}"),
            ProtoError::BadMessage => write!(f, "error message is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Writes one frame: `[len: u32 BE][payload]`.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_LEN`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, returning `None` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates I/O errors; an EOF mid-frame is
/// [`io::ErrorKind::UnexpectedEof`], an oversized length prefix is
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // Distinguish "peer closed between frames" from "died mid-frame".
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Strict little parsing cursor over a payload.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.0.split_first().ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let (head, rest) = self
            .0
            .split_first_chunk::<4>()
            .ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(u32::from_be_bytes(*head))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let (head, rest) = self
            .0
            .split_first_chunk::<8>()
            .ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(u64::from_be_bytes(*head))
    }

    fn rest(self) -> &'a [u8] {
        self.0
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// Protection tags used inside encode requests.
mod protection_tag {
    pub const NONE: u8 = 0;
    pub const AUTO_FULL: u8 = 1;
    pub const AUTO_BUDGET: u8 = 2;
}

fn put_protection(out: &mut Vec<u8>, p: &Protection) -> Result<(), ProtoError> {
    match p {
        Protection::None => out.push(protection_tag::NONE),
        Protection::AutoFull => out.push(protection_tag::AUTO_FULL),
        Protection::AutoBudget { max_bits } => {
            out.push(protection_tag::AUTO_BUDGET);
            out.extend_from_slice(&max_bits.to_be_bytes());
        }
        // Explicit segments carry NodeIds only meaningful in-process;
        // the socket API does not transport them.
        Protection::Segments(_) => return Err(ProtoError::BadProtection(0xff)),
    }
    Ok(())
}

fn get_protection(c: &mut Cursor<'_>) -> Result<Protection, ProtoError> {
    Ok(match c.u8()? {
        protection_tag::NONE => Protection::None,
        protection_tag::AUTO_FULL => Protection::AutoFull,
        protection_tag::AUTO_BUDGET => Protection::AutoBudget { max_bits: c.u32()? },
        other => return Err(ProtoError::BadProtection(other)),
    })
}

/// Serializes a request payload.
///
/// # Errors
///
/// [`ProtoError::BadProtection`] for [`Protection::Segments`], which is
/// not representable on the wire.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtoError> {
    let mut out = vec![PROTOCOL_VERSION];
    match req {
        Request::Encode {
            src,
            dst,
            protection,
            mode,
        } => {
            out.push(opcode::ENCODE);
            out.extend_from_slice(&src.to_be_bytes());
            out.extend_from_slice(&dst.to_be_bytes());
            put_protection(&mut out, protection)?;
            out.push(mode.as_byte());
        }
        Request::Invalidate { link, up } => {
            out.push(opcode::INVALIDATE);
            out.extend_from_slice(&link.to_be_bytes());
            out.push(u8::from(*up));
        }
        Request::Stats => out.push(opcode::STATS),
    }
    Ok(out)
}

/// Parses a request payload (strict: trailing bytes are an error).
///
/// # Errors
///
/// [`ProtoError`] on any malformation.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor(payload);
    match c.u8()? {
        PROTOCOL_VERSION => {}
        v => return Err(ProtoError::BadVersion(v)),
    }
    let req = match c.u8()? {
        opcode::ENCODE => {
            let src = c.u32()?;
            let dst = c.u32()?;
            let protection = get_protection(&mut c)?;
            let mode_byte = c.u8()?;
            let mode = WireMode::from_byte(mode_byte).ok_or(ProtoError::BadMode(mode_byte))?;
            Request::Encode {
                src,
                dst,
                protection,
                mode,
            }
        }
        opcode::INVALIDATE => Request::Invalidate {
            link: c.u32()?,
            up: c.u8()? != 0,
        },
        opcode::STATS => Request::Stats,
        other => return Err(ProtoError::BadOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Response discriminants following the status byte. Success bodies are
/// distinguished by a kind byte so `Ok`/`Header`/`Stats` round-trip
/// unambiguously.
mod response_kind {
    pub const OK: u8 = 0;
    pub const HEADER: u8 = 1;
    pub const STATS: u8 = 2;
}

/// Serializes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = vec![PROTOCOL_VERSION];
    match resp {
        Response::Ok => {
            out.push(status::OK);
            out.push(response_kind::OK);
        }
        Response::Header(bytes) => {
            out.push(status::OK);
            out.push(response_kind::HEADER);
            out.extend_from_slice(bytes);
        }
        Response::Stats(s) => {
            out.push(status::OK);
            out.push(response_kind::STATS);
            for v in [
                s.requests,
                s.encode_ok,
                s.encode_err,
                s.invalidations,
                s.idle_timeouts,
                s.cache_hits,
                s.cache_misses,
                s.uptime_ns,
            ] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        Response::Error { code, message } => {
            out.push(*code);
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

/// Parses a response payload.
///
/// # Errors
///
/// [`ProtoError`] on any malformation.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor(payload);
    match c.u8()? {
        PROTOCOL_VERSION => {}
        v => return Err(ProtoError::BadVersion(v)),
    }
    match c.u8()? {
        status::OK => match c.u8()? {
            response_kind::OK => {
                c.finish()?;
                Ok(Response::Ok)
            }
            response_kind::HEADER => Ok(Response::Header(c.rest().to_vec())),
            response_kind::STATS => {
                let s = ServiceStats {
                    requests: c.u64()?,
                    encode_ok: c.u64()?,
                    encode_err: c.u64()?,
                    invalidations: c.u64()?,
                    idle_timeouts: c.u64()?,
                    cache_hits: c.u64()?,
                    cache_misses: c.u64()?,
                    uptime_ns: c.u64()?,
                };
                c.finish()?;
                Ok(Response::Stats(s))
            }
            other => Err(ProtoError::BadStatus(other)),
        },
        code => {
            let message = std::str::from_utf8(c.rest())
                .map_err(|_| ProtoError::BadMessage)?
                .to_owned();
            Ok(Response::Error { code, message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Encode {
                src: 0,
                dst: 14,
                protection: Protection::None,
                mode: WireMode::Fixed,
            },
            Request::Encode {
                src: 3,
                dst: 9,
                protection: Protection::AutoBudget { max_bits: 64 },
                mode: WireMode::Varint,
            },
            Request::Invalidate { link: 7, up: false },
            Request::Invalidate { link: 7, up: true },
            Request::Stats,
        ] {
            let bytes = encode_request(&req).unwrap();
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let stats = ServiceStats {
            requests: 10,
            encode_ok: 6,
            encode_err: 1,
            invalidations: 2,
            idle_timeouts: 1,
            cache_hits: 5,
            cache_misses: 1,
            uptime_ns: 123_456,
        };
        for resp in [
            Response::Ok,
            Response::Header(vec![0, 0, 15, 0x0a, 0xbc]),
            Response::Stats(stats),
            Response::Error {
                code: status::NO_PATH,
                message: "no path from n0 to n9".into(),
            },
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn decoders_are_strict() {
        // Trailing byte after a well-formed request.
        let mut bytes = encode_request(&Request::Stats).unwrap();
        bytes.push(0);
        assert_eq!(decode_request(&bytes), Err(ProtoError::TrailingBytes));
        // Unknown version / opcode / mode / protection.
        assert_eq!(decode_request(&[9, 3]), Err(ProtoError::BadVersion(9)));
        assert_eq!(decode_request(&[1, 9]), Err(ProtoError::BadOpcode(9)));
        assert_eq!(
            decode_request(&[1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 9]),
            Err(ProtoError::BadMode(9))
        );
        assert_eq!(
            decode_request(&[1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 9, 0]),
            Err(ProtoError::BadProtection(9))
        );
        // Truncated stats response.
        assert_eq!(decode_response(&[1, 0, 2, 0]), Err(ProtoError::Truncated));
        // Segments cannot cross the wire.
        let req = Request::Encode {
            src: 0,
            dst: 1,
            protection: Protection::Segments(Vec::new()),
            mode: WireMode::Fixed,
        };
        assert!(matches!(
            encode_request(&req),
            Err(ProtoError::BadProtection(_))
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // EOF mid-frame is an error, not a silent None.
        let mut partial = &[0u8, 0, 0, 9, 1, 2][..];
        assert_eq!(
            read_frame(&mut partial).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Oversized length prefix is rejected before allocating.
        let mut huge = &[0xffu8, 0xff, 0xff, 0xff][..];
        assert_eq!(
            read_frame(&mut huge).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert!(write_frame(&mut Vec::new(), &vec![0; MAX_FRAME_LEN + 1]).is_err());
    }
}
