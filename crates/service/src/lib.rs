//! # kar-service — KAR stood up as a control-plane service
//!
//! The paper's controller, behind a socket: a threaded TCP daemon that
//! answers `encode(src, dst, protection)`, `invalidate(link)` and
//! `stats()` over a length-prefixed binary protocol ([`proto`]),
//! backed by the shared [`kar::EncodingCache`] and a
//! [`kar::RecoveringController`] fed through an explicit
//! fault-notification channel (the controller/datapath split made
//! operational — ROADMAP item 3).
//!
//! The payload of an encode response is a [`kar::wire`]-serialized
//! [`kar::RouteHeader`]: byte-for-byte the same serialization the
//! simulator's packet path stamps onto packets. The loopback test in
//! `tests/loopback.rs` proves it, and `kar_service_load` (in
//! `kar-bench`) drives the daemon at saturation and commits the
//! latency/QPS numbers as `BENCH_service.json`.
//!
//! # Examples
//!
//! ```
//! use kar_service::{Daemon, ServiceClient, ServiceConfig};
//! use kar::{Protection, WireMode};
//! use kar_topology::topo15;
//!
//! let daemon = Daemon::spawn(ServiceConfig::new(topo15::build()))?;
//! let mut client = ServiceClient::connect(daemon.addr())?;
//! let topo = topo15::build();
//! let header = client.encode(
//!     topo.expect("AS1").0 as u32,
//!     topo.expect("AS3").0 as u32,
//!     &Protection::AutoFull,
//!     WireMode::Fixed,
//! ).expect("encode");
//! assert!(header.bits() >= 15);
//! drop(client);
//! daemon.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
pub mod proto;

pub use client::{ClientError, ServiceClient};
pub use daemon::{expected_header, Daemon, ServiceConfig};
pub use proto::{Request, Response, ServiceStats, MAX_FRAME_LEN, PROTOCOL_VERSION};
