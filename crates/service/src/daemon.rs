//! The threaded control-plane daemon.
//!
//! One listener thread accepts connections and hands them to a fixed
//! worker pool over a channel; each worker serves one connection at a
//! time with framed blocking I/O (the workspace is offline — no async
//! runtime; `std::net` threads are the whole story). Workers share one
//! [`RecoveringController`] behind a mutex, so encodes are serialized
//! exactly like the in-process simulator's single-threaded edge logic —
//! a service encode and a simulator encode of the same request are the
//! same code path and produce the same bytes.
//!
//! Fault notifications take the explicit control channel: a worker
//! serving `invalidate` does not mutate the controller itself but sends
//! the transition to a dedicated control thread and waits for its ack
//! (the controller/datapath split, kept observable). Because the ack
//! returns only after [`RecoveringController::on_link_event`] ran, an
//! encode issued after an invalidate response — on any connection —
//! is guaranteed to see the transition.

use crate::proto::{self, status, Request, Response, ServiceStats};
use kar::recovery::{RecoveringController, RecoveryConfig};
use kar::{EncodeRequest, EncodingCache, KarError, RouteHeader};
use kar_obs::{Entity, Event, EventKind, ObsHandle};
use kar_simnet::{EdgeLogic, SimTime};
use kar_topology::{LinkId, NodeId, Topology};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of one daemon instance.
pub struct ServiceConfig {
    /// The network the controller plans routes over.
    pub topo: Topology,
    /// Worker threads serving connections.
    pub workers: usize,
    /// How long a connection may sit silent between reads before the
    /// worker closes it and moves on. Without a deadline a client that
    /// connects and never writes (or stalls mid-frame) pins its worker
    /// forever — `workers` such clients starve the whole pool. A zero
    /// duration disables the deadline (trusted-peer setups only).
    pub idle_timeout: Duration,
    /// Recovery-loop knobs. The default sets
    /// [`RecoveryConfig::notification_delay`] to zero: a service
    /// invalidate is acknowledged only once applied, so the control
    /// channel's latency is already real (socket) time.
    pub recovery: RecoveryConfig,
    /// Shared route-encoding memo (expose one cache across daemon and
    /// in-process users to share encodes).
    pub cache: Arc<EncodingCache>,
    /// Observability bundle; request counters/latency histograms and
    /// invalidate events land here.
    pub obs: ObsHandle,
}

impl ServiceConfig {
    /// Defaults: 4 workers, a 30-second idle deadline, zero
    /// notification delay, a fresh cache, no observability.
    pub fn new(topo: Topology) -> ServiceConfig {
        ServiceConfig {
            topo,
            workers: 4,
            idle_timeout: Duration::from_secs(30),
            recovery: RecoveryConfig {
                notification_delay: SimTime::ZERO,
                protection: kar::Protection::None,
            },
            cache: Arc::new(EncodingCache::new()),
            obs: ObsHandle::disabled(),
        }
    }
}

/// Counters shared by every worker.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    encode_ok: AtomicU64,
    encode_err: AtomicU64,
    invalidations: AtomicU64,
    idle_timeouts: AtomicU64,
}

/// A link transition in flight on the control channel.
struct FaultMsg {
    link: LinkId,
    up: bool,
    ack: mpsc::SyncSender<()>,
}

/// State shared by the workers and the control thread.
struct State {
    topo: Topology,
    controller: Mutex<RecoveringController>,
    cache: Arc<EncodingCache>,
    counters: Counters,
    start: Instant,
    obs: ObsHandle,
    idle_timeout: Option<Duration>,
}

impl State {
    /// Wall-clock time since daemon start as the controller's clock.
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    fn stats(&self) -> ServiceStats {
        let cache = self.cache.stats();
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            encode_ok: self.counters.encode_ok.load(Ordering::Relaxed),
            encode_err: self.counters.encode_err.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            idle_timeouts: self.counters.idle_timeouts.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            uptime_ns: self.start.elapsed().as_nanos() as u64,
        }
    }
}

/// A running daemon. Dropping it without [`Daemon::shutdown`] detaches
/// the threads (they exit with the process).
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds `127.0.0.1:0` and starts the listener, worker pool and
    /// control thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServiceConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut controller = RecoveringController::new(config.recovery)
            .with_encoding_cache(Arc::clone(&config.cache));
        if config.obs.is_enabled() {
            controller = controller.with_obs(config.obs.clone());
        }
        let state = Arc::new(State {
            topo: config.topo,
            controller: Mutex::new(controller),
            cache: config.cache,
            counters: Counters::default(),
            start: Instant::now(),
            obs: config.obs,
            idle_timeout: (!config.idle_timeout.is_zero()).then_some(config.idle_timeout),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (fault_tx, fault_rx) = mpsc::channel::<FaultMsg>();
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut threads = Vec::new();
        threads.push(thread::spawn({
            let state = Arc::clone(&state);
            move || control_loop(state, fault_rx)
        }));
        for _ in 0..config.workers.max(1) {
            let state = Arc::clone(&state);
            let conn_rx = Arc::clone(&conn_rx);
            let fault_tx = fault_tx.clone();
            threads.push(thread::spawn(move || worker_loop(state, conn_rx, fault_tx)));
        }
        // The workers hold the only fault senders now; when they exit,
        // the control thread's receiver disconnects and it exits too.
        drop(fault_tx);
        threads.push(thread::spawn({
            let stop = Arc::clone(&stop);
            move || listen_loop(listener, conn_tx, stop)
        }));
        Ok(Daemon {
            addr,
            stop,
            threads,
        })
    }

    /// The bound address (always loopback with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, then joins every thread. Waits for open
    /// connections to close — clients must disconnect first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn listen_loop(listener: TcpListener, conn_tx: mpsc::Sender<TcpStream>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
    // Dropping conn_tx disconnects the workers' queue.
}

fn control_loop(state: Arc<State>, fault_rx: mpsc::Receiver<FaultMsg>) {
    while let Ok(msg) = fault_rx.recv() {
        let now = state.now();
        {
            let mut rc = state
                .controller
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rc.on_link_event(&state.topo, msg.link, msg.up, now);
        }
        if let Some(obs) = state.obs.get() {
            let (kind, span) = if msg.up {
                (EventKind::Repair, obs.spans.fresh())
            } else {
                (EventKind::Fault, obs.spans.fault(msg.link.0 as u32))
            };
            obs.events.push(Event {
                aux: msg.link.0 as u64,
                tag: "service",
                span: Some(span),
                ..Event::new(now.as_nanos(), kind)
            });
        }
        // Ack only after the controller saw the transition: the
        // invalidate response is a happens-before barrier for every
        // later encode.
        let _ = msg.ack.send(());
    }
}

fn worker_loop(
    state: Arc<State>,
    conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    fault_tx: mpsc::Sender<FaultMsg>,
) {
    loop {
        let stream = {
            let rx = conn_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv()
        };
        match stream {
            Ok(stream) => {
                let _ = serve_connection(&state, &fault_tx, stream);
            }
            Err(_) => return, // listener gone: shutdown
        }
    }
}

/// Serves framed requests on one connection until the peer closes it
/// or stays silent past the idle deadline.
fn serve_connection(
    state: &State,
    fault_tx: &mpsc::Sender<FaultMsg>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // The slowloris guard: every blocking read carries the deadline, so
    // a peer that connects and never writes — or stalls mid-frame —
    // cannot pin this worker past it.
    stream.set_read_timeout(state.idle_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                state.counters.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = state.obs.get() {
                    obs.metrics
                        .counter(Entity::Global, "service.idle_timeouts")
                        .inc();
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let started = Instant::now();
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match proto::decode_request(&payload) {
            Ok(req) => handle(state, fault_tx, req),
            Err(e) => Response::Error {
                code: status::BAD_REQUEST,
                message: e.to_string(),
            },
        };
        proto::write_frame(&mut writer, &proto::encode_response(&response))?;
        writer.flush()?;
        if let Some(obs) = state.obs.get() {
            obs.metrics
                .counter(Entity::Global, "service.requests")
                .inc();
            obs.metrics
                .histogram(Entity::Global, "service.latency_ns")
                .observe(started.elapsed().as_nanos() as u64);
            if matches!(response, Response::Error { .. }) {
                obs.metrics.counter(Entity::Global, "service.errors").inc();
            }
        }
    }
}

fn handle(state: &State, fault_tx: &mpsc::Sender<FaultMsg>, req: Request) -> Response {
    match req {
        Request::Encode {
            src,
            dst,
            protection,
            mode,
        } => {
            let nodes = state.topo.node_count();
            if src as usize >= nodes || dst as usize >= nodes {
                state.counters.encode_err.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: status::BAD_REQUEST,
                    message: format!("node index out of range (topology has {nodes} nodes)"),
                };
            }
            let request = EncodeRequest::new(NodeId(src as usize), NodeId(dst as usize))
                .with_protection(protection);
            let now = state.now();
            let outcome = {
                let mut rc = state
                    .controller
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                rc.encode(&state.topo, &request, now)
            };
            match outcome {
                Ok(outcome) => {
                    state.counters.encode_ok.fetch_add(1, Ordering::Relaxed);
                    Response::Header(outcome.header.to_wire(mode))
                }
                Err(e) => {
                    state.counters.encode_err.fetch_add(1, Ordering::Relaxed);
                    let code = match e {
                        KarError::NoPath { .. } => status::NO_PATH,
                        _ => status::ENCODE_FAILED,
                    };
                    Response::Error {
                        code,
                        message: e.to_string(),
                    }
                }
            }
        }
        Request::Invalidate { link, up } => {
            if link as usize >= state.topo.link_count() {
                return Response::Error {
                    code: status::BAD_REQUEST,
                    message: format!(
                        "link index out of range (topology has {} links)",
                        state.topo.link_count()
                    ),
                };
            }
            let (ack_tx, ack_rx) = mpsc::sync_channel(1);
            let sent = fault_tx.send(FaultMsg {
                link: LinkId(link as usize),
                up,
                ack: ack_tx,
            });
            if sent.is_err() || ack_rx.recv().is_err() {
                return Response::Error {
                    code: status::INTERNAL,
                    message: "fault channel closed".into(),
                };
            }
            state.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            Response::Ok
        }
        Request::Stats => Response::Stats(state.stats()),
    }
}

/// Re-encodes `req` in-process exactly as the daemon would, returning
/// the route header. Test and load-tool helper for byte-identity
/// checks: `expected_header(..).to_wire(mode)` must equal the encode
/// response body for a daemon in the same controller state.
///
/// # Errors
///
/// See [`kar::Controller::install_route`].
pub fn expected_header(
    topo: &Topology,
    req: &EncodeRequest,
    recovery: RecoveryConfig,
    faults: &[(LinkId, bool)],
) -> Result<RouteHeader, KarError> {
    let mut rc = RecoveringController::new(recovery);
    let mut now = SimTime::ZERO;
    for &(link, up) in faults {
        rc.on_link_event(topo, link, up, now);
        now = SimTime(now.0 + 1);
    }
    Ok(rc.encode(topo, req, SimTime(now.0 + 1))?.header)
}
