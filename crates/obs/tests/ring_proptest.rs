//! Property tests of the `EventRing` overflow semantics: the ring may
//! forget old events, but its accounting must never lie, and the
//! retained window must be exactly the newest events in push order.

use kar_obs::{Event, EventKind, EventRing};
use proptest::prelude::*;

proptest! {
    /// `pushed() - evicted() == events().len()` at every prefix, for
    /// any capacity and push count (including heavy wraparound).
    #[test]
    fn occupancy_accounting_balances(cap in 1usize..48, pushes in 0usize..200) {
        let ring = EventRing::with_capacity(cap);
        for i in 0..pushes {
            let mut ev = Event::new(i as u64, EventKind::Hop);
            ev.pkt = Some(i as u64);
            ring.push(ev);
            prop_assert_eq!(
                ring.pushed() - ring.evicted(),
                ring.events().len() as u64
            );
        }
        prop_assert_eq!(ring.pushed(), pushes as u64);
        prop_assert_eq!(ring.capacity(), cap);
        prop_assert_eq!(ring.evicted(), pushes.saturating_sub(cap) as u64);
    }

    /// After any number of pushes the ring holds exactly the newest
    /// `min(cap, pushes)` events, oldest first, order preserved.
    #[test]
    fn wraparound_keeps_the_newest_window_in_order(cap in 1usize..48, pushes in 0usize..200) {
        let ring = EventRing::with_capacity(cap);
        for i in 0..pushes {
            let mut ev = Event::new(i as u64, EventKind::Inject);
            ev.pkt = Some(i as u64);
            ring.push(ev);
        }
        let events = ring.events();
        prop_assert_eq!(events.len(), pushes.min(cap));
        let first = pushes.saturating_sub(cap);
        for (offset, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.pkt, Some((first + offset) as u64));
            prop_assert_eq!(ev.at_ns, (first + offset) as u64);
        }
    }
}
