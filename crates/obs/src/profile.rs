//! Sim profiler: per-event-type self-time accounting for the
//! discrete-event loop.
//!
//! The simulator's `dispatch` wraps each event in a wall-clock timer and
//! reports the elapsed time here, keyed by the event's static label
//! (`"arrive"`, `"tx-done"`, …). The profiler answers "where does
//! wall-clock go at `--jobs N`" — it measures the *host*, not the
//! simulation, so its numbers are inherently non-deterministic and are
//! kept out of every determinism digest.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Accumulates `(label → count, total, max)` self-time.
#[derive(Debug, Default)]
pub struct Profiler {
    slots: Mutex<HashMap<&'static str, Acc>>,
}

/// One row of the self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Event-type label.
    pub label: &'static str,
    /// Events dispatched.
    pub count: u64,
    /// Total self-time in nanoseconds.
    pub total_ns: u64,
    /// Slowest single dispatch in nanoseconds.
    pub max_ns: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one dispatch of `label` taking `elapsed`.
    pub fn record(&self, label: &'static str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let mut slots = self.slots.lock().expect("profiler lock");
        let acc = slots.entry(label).or_default();
        acc.count += 1;
        acc.total_ns += ns;
        acc.max_ns = acc.max_ns.max(ns);
    }

    /// Rows sorted by total self-time, heaviest first (ties by label, so
    /// the order is stable).
    pub fn rows(&self) -> Vec<ProfileRow> {
        let slots = self.slots.lock().expect("profiler lock");
        let mut rows: Vec<_> = slots
            .iter()
            .map(|(&label, acc)| ProfileRow {
                label,
                count: acc.count,
                total_ns: acc.total_ns,
                max_ns: acc.max_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(b.label)));
        rows
    }

    /// Total dispatches across every label. Unlike the timing columns
    /// this is a *simulated* quantity (one dispatch per event) and is
    /// deterministic per seed — campaigns divide it by wall-clock to get
    /// an events/sec throughput figure.
    pub fn total_events(&self) -> u64 {
        let slots = self.slots.lock().expect("profiler lock");
        slots.values().map(|acc| acc.count).sum()
    }

    /// Renders the self-time table (empty string when nothing recorded).
    pub fn report(&self) -> String {
        let rows = self.rows();
        if rows.is_empty() {
            return String::new();
        }
        let grand: u64 = rows.iter().map(|r| r.total_ns).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>10} {:>10} {:>6}\n",
            "event", "count", "total", "mean", "max", "share"
        ));
        for r in &rows {
            let mean = r.total_ns / r.count.max(1);
            let share = if grand > 0 {
                100.0 * r.total_ns as f64 / grand as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<14} {:>10} {:>12} {:>10} {:>10} {:>5.1}%\n",
                r.label,
                r.count,
                fmt_ns(r.total_ns),
                fmt_ns(mean),
                fmt_ns(r.max_ns),
                share
            ));
        }
        out
    }
}

/// Human-readable nanoseconds (`17ns`, `4.2µs`, `1.3ms`, `2.1s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_and_sort_by_total() {
        let p = Profiler::new();
        p.record("arrive", Duration::from_nanos(100));
        p.record("arrive", Duration::from_nanos(300));
        p.record("timer", Duration::from_nanos(250));
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "arrive");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 400);
        assert_eq!(rows[0].max_ns, 300);
        assert_eq!(rows[1].label, "timer");
        assert_eq!(p.total_events(), 3);
        let report = p.report();
        assert!(report.contains("arrive"));
        assert!(report.contains("share"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(4_200), "4.2µs");
        assert_eq!(fmt_ns(1_300_000), "1.3ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.10s");
    }

    #[test]
    fn empty_report_is_empty() {
        assert_eq!(Profiler::new().report(), "");
    }
}
