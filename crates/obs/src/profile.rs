//! Sim profiler: per-event-type self-time accounting for the
//! discrete-event loop.
//!
//! The simulator's `dispatch` wraps each event in a wall-clock timer and
//! reports the elapsed time here, keyed by the event's static label
//! (`"arrive"`, `"tx-done"`, …). The profiler answers "where does
//! wall-clock go at `--jobs N`" — it measures the *host*, not the
//! simulation, so its numbers are inherently non-deterministic and are
//! kept out of every determinism digest.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Accumulates `(label → count, total, max)` self-time.
#[derive(Debug, Default)]
pub struct Profiler {
    slots: Mutex<HashMap<&'static str, Acc>>,
}

/// One row of the self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Event-type label.
    pub label: &'static str,
    /// Events dispatched.
    pub count: u64,
    /// Total self-time in nanoseconds.
    pub total_ns: u64,
    /// Slowest single dispatch in nanoseconds.
    pub max_ns: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one dispatch of `label` taking `elapsed`.
    pub fn record(&self, label: &'static str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let mut slots = self.slots.lock().expect("profiler lock");
        let acc = slots.entry(label).or_default();
        acc.count += 1;
        acc.total_ns += ns;
        acc.max_ns = acc.max_ns.max(ns);
    }

    /// Rows sorted by total self-time, heaviest first (ties by label, so
    /// the order is stable).
    pub fn rows(&self) -> Vec<ProfileRow> {
        let slots = self.slots.lock().expect("profiler lock");
        let mut rows: Vec<_> = slots
            .iter()
            .map(|(&label, acc)| ProfileRow {
                label,
                count: acc.count,
                total_ns: acc.total_ns,
                max_ns: acc.max_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(b.label)));
        rows
    }

    /// Total dispatches across every label. Unlike the timing columns
    /// this is a *simulated* quantity (one dispatch per event) and is
    /// deterministic per seed — campaigns divide it by wall-clock to get
    /// an events/sec throughput figure.
    pub fn total_events(&self) -> u64 {
        let slots = self.slots.lock().expect("profiler lock");
        slots.values().map(|acc| acc.count).sum()
    }

    /// Renders the self-time table (empty string when nothing recorded).
    pub fn report(&self) -> String {
        let rows = self.rows();
        if rows.is_empty() {
            return String::new();
        }
        let grand: u64 = rows.iter().map(|r| r.total_ns).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>10} {:>10} {:>6}\n",
            "event", "count", "total", "mean", "max", "share"
        ));
        for r in &rows {
            let mean = r.total_ns / r.count.max(1);
            let share = if grand > 0 {
                100.0 * r.total_ns as f64 / grand as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<14} {:>10} {:>12} {:>10} {:>10} {:>5.1}%\n",
                r.label,
                r.count,
                fmt_ns(r.total_ns),
                fmt_ns(mean),
                fmt_ns(r.max_ns),
                share
            ));
        }
        out
    }
}

/// Human-readable nanoseconds (`17ns`, `4.2µs`, `1.3ms`, `2.10s`,
/// `3.5m`, `2.1h`).
///
/// Two formatting pitfalls are handled explicitly: a value whose
/// *rounded* text would reach the next unit is bumped into that unit
/// (`999_960ns` → `1.0ms`, never `1000.0µs`), and durations past a
/// minute switch to minute/hour units so the widest possible output
/// (`u64::MAX` → `5124095.6h`) still fits the profiler table's
/// 10-character columns.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    // (divisor, upper bound in the band's unit, decimals, suffix).
    const BANDS: [(f64, f64, usize, &str); 5] = [
        (1e3, 1000.0, 1, "µs"),
        (1e6, 1000.0, 1, "ms"),
        (1e9, 60.0, 2, "s"),
        (60e9, 60.0, 1, "m"),
        (3.6e12, f64::INFINITY, 1, "h"),
    ];
    for (div, bound, prec, suffix) in BANDS {
        let text = format!("{:.prec$}", ns as f64 / div, prec = prec);
        // Compare the *rounded* value so "999.96" (→ "1000.0") spills.
        if text.parse::<f64>().unwrap_or(0.0) < bound {
            return format!("{text}{suffix}");
        }
    }
    unreachable!("the hour band has no upper bound")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_and_sort_by_total() {
        let p = Profiler::new();
        p.record("arrive", Duration::from_nanos(100));
        p.record("arrive", Duration::from_nanos(300));
        p.record("timer", Duration::from_nanos(250));
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "arrive");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 400);
        assert_eq!(rows[0].max_ns, 300);
        assert_eq!(rows[1].label, "timer");
        assert_eq!(p.total_events(), 3);
        let report = p.report();
        assert!(report.contains("arrive"));
        assert!(report.contains("share"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(4_200), "4.2µs");
        assert_eq!(fmt_ns(1_300_000), "1.3ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.10s");
    }

    #[test]
    fn fmt_ns_edge_cases_never_overflow_their_unit() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        // Rounding at a unit boundary bumps to the next unit instead of
        // printing four integer digits ("1000.0µs").
        assert_eq!(fmt_ns(999_960), "1.0ms");
        assert_eq!(fmt_ns(999_960_000), "1.00s");
        assert_eq!(fmt_ns(59_996_000_000), "1.0m");
        // Past a minute the s band would grow unboundedly; m/h cap it.
        assert_eq!(fmt_ns(90_000_000_000), "1.5m");
        assert_eq!(fmt_ns(7_200_000_000_000), "2.0h");
        let widest = fmt_ns(u64::MAX);
        assert_eq!(widest, "5124095.6h");
        assert!(widest.chars().count() <= 10, "must fit a 10-wide column");
    }

    #[test]
    fn report_columns_stay_aligned_across_extremes() {
        let p = Profiler::new();
        p.record("zero", Duration::from_nanos(0));
        p.record("huge", Duration::from_secs(4_000));
        p.record("tiny", Duration::from_nanos(3));
        let report = p.report();
        let widths: Vec<usize> = report.lines().map(|l| l.chars().count()).collect();
        assert!(widths.len() >= 4, "header + 3 rows");
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged columns:\n{report}"
        );
    }

    #[test]
    fn empty_report_is_empty() {
        assert_eq!(Profiler::new().report(), "");
    }
}
