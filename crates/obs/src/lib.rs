//! # kar-obs — unified observability for the KAR reproduction
//!
//! The paper's evaluation reasons about *why* throughput collapses or
//! survives a failure — deflection loops, stretch inflation, recovery
//! lag. Those phenomena are only visible with time-resolved, per-entity
//! measurements, so this crate provides one observability layer shared
//! by the simulator, the KAR control plane and the bench harness:
//!
//! * a [`MetricsRegistry`] of named counters, gauges, log-linear
//!   [`Histogram`]s and decimated time [`Series`], keyed by
//!   `(entity, metric)` — recording is lock-free and the whole layer
//!   costs nothing when disabled (see [`ObsHandle`]),
//! * structured event tracing: a bounded [`EventRing`] of [`Event`]s
//!   (hop, deflection, drop, fault, detection, re-encode) whose packet
//!   ids act as span ids linking a packet's hops to its flow,
//! * a sim [`Profiler`] timing the discrete-event loop per event type,
//! * a JSON-lines dump format ([`RunDump`]) compatible with the
//!   `KAR_TELEMETRY` convention, plus the [`sink`] that experiment
//!   binaries flush to `--metrics <path>`; `kar-inspect` (in
//!   `kar-bench`) renders the dumps.
//!
//! Metrics are **pure observation**: nothing here feeds back into
//! simulation state or touches its RNG, so runs are byte-identical with
//! metrics on or off (enforced by determinism tests in `kar-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod dump;
mod events;
pub mod forensics;
mod metrics;
mod profile;
pub mod sink;
pub mod span;

pub use dump::{escape, json_f64, parse_line, read_dumps, DumpRecord, RunDump, TopoLabeler};
pub use events::{Event, EventKind, EventRing, EVENT_RING_CAP};
pub use forensics::{ForensicCapture, ForensicLog};
pub use metrics::{
    bucket_index, bucket_range, Counter, Entity, Gauge, HistSnapshot, Histogram, HistogramSummary,
    MetricsRegistry, MetricsSnapshot, Series, SeriesSnapshot,
};
pub use profile::{fmt_ns, ProfileRow, Profiler};
pub use span::{pkt_span, SpanTracker};

use std::sync::Arc;

/// One run's observability bundle: a metrics registry, an event ring,
/// the causal [`SpanTracker`] and the flight-recorder [`ForensicLog`].
/// Created per simulation; shared by everything that records.
#[derive(Debug, Default)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: MetricsRegistry,
    /// The event ring.
    pub events: EventRing,
    /// Causal span allocator (fault → detect → re-encode → packet).
    pub spans: SpanTracker,
    /// Anomaly-triggered flight recorder.
    pub forensics: ForensicLog,
}

impl Obs {
    /// A fresh bundle with the default event capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh bundle keeping at most `event_cap` events.
    pub fn with_event_capacity(event_cap: usize) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            events: EventRing::with_capacity(event_cap),
            spans: SpanTracker::new(),
            forensics: ForensicLog::new(),
        }
    }
}

/// A cheap-to-clone, possibly-disabled handle to an [`Obs`] bundle.
///
/// The disabled handle is the default everywhere: recording sites guard
/// on [`ObsHandle::get`] (one `Option` check, no allocation, no atomics),
/// which is what makes "near-zero overhead when off" true.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle(Option<Arc<Obs>>);

impl ObsHandle {
    /// The disabled handle: records nothing.
    pub fn disabled() -> Self {
        ObsHandle(None)
    }

    /// An enabled handle around a fresh bundle.
    pub fn enabled() -> Self {
        ObsHandle(Some(Arc::new(Obs::new())))
    }

    /// Wraps an existing shared bundle.
    pub fn from_obs(obs: Arc<Obs>) -> Self {
        ObsHandle(Some(obs))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The bundle, when enabled.
    pub fn get(&self) -> Option<&Obs> {
        self.0.as_deref()
    }

    /// The shared bundle, when enabled.
    pub fn arc(&self) -> Option<Arc<Obs>> {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_cheap_and_inert() {
        let h = ObsHandle::disabled();
        assert!(!h.is_enabled());
        assert!(h.get().is_none());
        assert!(h.arc().is_none());
        assert!(!ObsHandle::default().is_enabled());
    }

    #[test]
    fn enabled_handle_shares_one_bundle() {
        let h = ObsHandle::enabled();
        let h2 = h.clone();
        h.get().unwrap().metrics.counter(Entity::Global, "x").inc();
        assert_eq!(
            h2.get().unwrap().metrics.counter(Entity::Global, "x").get(),
            1
        );
    }
}
