//! Dump format: flat JSON lines, one record per line, compatible with
//! the `KAR_TELEMETRY` sink convention (`kar_bench::telemetry`).
//!
//! Every line carries a `"run"` label so dumps from many runs can share
//! one file; `kar-inspect` groups them back. Entities are resolved to
//! human names (`node:SW7`, `link:SW7-SW13`) at dump time via a
//! [`TopoLabeler`], so the reader never needs the topology. There is no
//! serde in this workspace (offline vendored deps only), so both the
//! writer and the minimal flat-object parser live here.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead};

use kar_topology::{LinkId, NodeId, Topology};

use crate::events::Event;
use crate::metrics::{Entity, HistSnapshot, MetricsSnapshot};
use crate::profile::ProfileRow;

/// Resolves raw entity indexes to topology names at dump time.
#[derive(Debug, Clone, Default)]
pub struct TopoLabeler {
    nodes: Vec<String>,
    links: Vec<String>,
}

impl TopoLabeler {
    /// A labeler for `topo`: nodes by name, links as `A-B`.
    pub fn new(topo: &Topology) -> Self {
        let nodes: Vec<String> = (0..topo.node_count())
            .map(|i| topo.node(NodeId(i)).name.clone())
            .collect();
        let links = (0..topo.link_count())
            .map(|i| {
                let l = topo.link(LinkId(i));
                format!("{}-{}", nodes[l.a.0], nodes[l.b.0])
            })
            .collect();
        TopoLabeler { nodes, links }
    }

    /// A labeler with no topology: falls back to numeric names.
    pub fn anonymous() -> Self {
        TopoLabeler::default()
    }

    /// Name of node `i` (`node7` when unknown).
    pub fn node(&self, i: u32) -> String {
        self.nodes
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("node{i}"))
    }

    /// Name of link `i` (`link4` when unknown).
    pub fn link(&self, i: u32) -> String {
        self.links
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("link{i}"))
    }

    /// Stable label of `e` (`global`, `node:SW7`, `link:SW7-SW13`,
    /// `flow:3`, `pair:AS1>AS9`).
    pub fn entity(&self, e: Entity) -> String {
        match e {
            Entity::Global => "global".to_string(),
            Entity::Node(i) => format!("node:{}", self.node(i)),
            Entity::Link(i) => format!("link:{}", self.link(i)),
            Entity::Flow(i) => format!("flow:{i}"),
            Entity::Pair(s, d) => format!("pair:{}>{}", self.node(s), self.node(d)),
        }
    }
}

/// One parsed (or to-be-written) dump line, minus its run label.
#[derive(Debug, Clone, PartialEq)]
pub enum DumpRecord {
    /// A counter read-out.
    Counter {
        /// Labeled entity (`node:SW7`, …).
        entity: String,
        /// Metric name.
        metric: String,
        /// Final value.
        value: u64,
    },
    /// A gauge read-out.
    Gauge {
        /// Labeled entity.
        entity: String,
        /// Metric name.
        metric: String,
        /// Final value.
        value: i64,
        /// High-water mark.
        max: i64,
    },
    /// A histogram read-out.
    Hist {
        /// Labeled entity.
        entity: String,
        /// Metric name.
        metric: String,
        /// Recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Smallest recorded value.
        min: u64,
        /// Largest recorded value.
        max: u64,
        /// Non-empty `(bucket lower bound, count)` pairs.
        buckets: Vec<(u64, u64)>,
    },
    /// A time-series read-out.
    Series {
        /// Labeled entity.
        entity: String,
        /// Metric name.
        metric: String,
        /// `(t_ns, value)` samples.
        samples: Vec<(u64, f64)>,
    },
    /// One traced event.
    Event {
        /// Simulation time in nanoseconds.
        at_ns: u64,
        /// Event kind name (see `EventKind::as_str`).
        kind: String,
        /// Packet span id, if any.
        pkt: Option<u64>,
        /// Flow id, if any.
        flow: Option<u64>,
        /// Node name ("" when not applicable).
        node: String,
        /// Link name ("" when not applicable).
        link: String,
        /// Kind-specific scalar.
        aux: u64,
        /// Kind-specific label.
        tag: String,
        /// Causal span id, if any.
        span: Option<u64>,
        /// Parent span id, if any.
        parent: Option<u64>,
    },
    /// Event-ring occupancy for the run: total pushed, evicted by the
    /// bound, and the configured capacity.
    Ring {
        /// Events ever pushed.
        pushed: u64,
        /// Events evicted by the ring bound.
        evicted: u64,
        /// Ring capacity.
        cap: u64,
    },
    /// Flight-recorder capture header; its events follow as
    /// [`DumpRecord::ForensicEvent`] lines sharing the capture index.
    Forensic {
        /// Capture index within the run.
        capture: u64,
        /// Trigger name (`loop`, `blackhole`, …).
        trigger: String,
        /// Trigger time (ns).
        at_ns: u64,
        /// Offending packet, if any.
        pkt: Option<u64>,
        /// Ring evictions at capture time.
        evicted: u64,
        /// Captures suppressed by the recorder bounds (whole run).
        suppressed: u64,
    },
    /// One event frozen inside a forensic capture.
    ForensicEvent {
        /// Capture index this event belongs to.
        capture: u64,
        /// `"chain"` (causal chain) or `"recent"` (ring window).
        section: String,
        /// Simulation time in nanoseconds.
        at_ns: u64,
        /// Event kind name.
        kind: String,
        /// Packet id, if any.
        pkt: Option<u64>,
        /// Flow id, if any.
        flow: Option<u64>,
        /// Node name ("" when not applicable).
        node: String,
        /// Link name ("" when not applicable).
        link: String,
        /// Kind-specific scalar.
        aux: u64,
        /// Kind-specific label.
        tag: String,
        /// Causal span id, if any.
        span: Option<u64>,
        /// Parent span id, if any.
        parent: Option<u64>,
    },
    /// One profiler row.
    Profile {
        /// Event-type label.
        label: String,
        /// Events dispatched.
        count: u64,
        /// Total self-time in nanoseconds.
        total_ns: u64,
        /// Slowest dispatch in nanoseconds.
        max_ns: u64,
    },
}

/// Everything one run dumped, under one label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDump {
    /// The run label (e.g. `fig_dynamic/single/hp`).
    pub label: String,
    /// Records in dump order.
    pub records: Vec<DumpRecord>,
}

impl RunDump {
    /// Builds a dump from live observations: metrics snapshot first,
    /// then events in time order, then profiler rows.
    pub fn collect(
        label: &str,
        snap: &MetricsSnapshot,
        events: &[Event],
        profile: &[ProfileRow],
        labeler: &TopoLabeler,
    ) -> Self {
        let mut records = Vec::new();
        for (e, metric, value) in &snap.counters {
            records.push(DumpRecord::Counter {
                entity: labeler.entity(*e),
                metric: metric.clone(),
                value: *value,
            });
        }
        for (e, metric, value, max) in &snap.gauges {
            records.push(DumpRecord::Gauge {
                entity: labeler.entity(*e),
                metric: metric.clone(),
                value: *value,
                max: *max,
            });
        }
        for h in &snap.histograms {
            let HistSnapshot {
                entity,
                metric,
                count,
                sum,
                min,
                max,
                buckets,
            } = h;
            records.push(DumpRecord::Hist {
                entity: labeler.entity(*entity),
                metric: metric.clone(),
                count: *count,
                sum: *sum,
                min: *min,
                max: *max,
                buckets: buckets.clone(),
            });
        }
        for (e, metric, samples) in &snap.series {
            records.push(DumpRecord::Series {
                entity: labeler.entity(*e),
                metric: metric.clone(),
                samples: samples.clone(),
            });
        }
        for ev in events {
            records.push(DumpRecord::Event {
                at_ns: ev.at_ns,
                kind: ev.kind.as_str().to_string(),
                pkt: ev.pkt,
                flow: ev.flow.map(u64::from),
                node: ev.node.map(|n| labeler.node(n)).unwrap_or_default(),
                link: ev.link.map(|l| labeler.link(l)).unwrap_or_default(),
                aux: ev.aux,
                tag: ev.tag.to_string(),
                span: ev.span,
                parent: ev.parent,
            });
        }
        for r in profile {
            records.push(DumpRecord::Profile {
                label: r.label.to_string(),
                count: r.count,
                total_ns: r.total_ns,
                max_ns: r.max_ns,
            });
        }
        RunDump {
            label: label.to_string(),
            records,
        }
    }

    /// Builds a dump from a whole [`Obs`](crate::Obs) bundle: metrics,
    /// events, ring occupancy and flight-recorder captures.
    pub fn collect_obs(
        label: &str,
        obs: &crate::Obs,
        profile: &[ProfileRow],
        labeler: &TopoLabeler,
    ) -> Self {
        let mut dump = Self::collect(
            label,
            &obs.metrics.snapshot(),
            &obs.events.events(),
            profile,
            labeler,
        );
        dump.records.push(DumpRecord::Ring {
            pushed: obs.events.pushed(),
            evicted: obs.events.evicted(),
            cap: obs.events.capacity() as u64,
        });
        let suppressed = obs.forensics.suppressed();
        for (i, c) in obs.forensics.captures().iter().enumerate() {
            let capture = i as u64;
            dump.records.push(DumpRecord::Forensic {
                capture,
                trigger: c.trigger.to_string(),
                at_ns: c.at_ns,
                pkt: c.pkt,
                evicted: c.evicted,
                suppressed,
            });
            for (section, evs) in [("chain", &c.chain), ("recent", &c.recent)] {
                for ev in evs {
                    dump.records.push(DumpRecord::ForensicEvent {
                        capture,
                        section: section.to_string(),
                        at_ns: ev.at_ns,
                        kind: ev.kind.as_str().to_string(),
                        pkt: ev.pkt,
                        flow: ev.flow.map(u64::from),
                        node: ev.node.map(|n| labeler.node(n)).unwrap_or_default(),
                        link: ev.link.map(|l| labeler.link(l)).unwrap_or_default(),
                        aux: ev.aux,
                        tag: ev.tag.to_string(),
                        span: ev.span,
                        parent: ev.parent,
                    });
                }
            }
        }
        dump
    }

    /// Serializes to JSON lines (one per record, each carrying the run
    /// label), ending with a trailing newline when non-empty.
    pub fn to_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&record_line(&self.label, r));
            out.push('\n');
        }
        out
    }
}

fn record_line(run: &str, r: &DumpRecord) -> String {
    let mut s = String::from("{");
    let _ = write!(s, "\"run\":\"{}\"", escape(run));
    match r {
        DumpRecord::Counter {
            entity,
            metric,
            value,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"counter\",\"entity\":\"{}\",\"metric\":\"{}\",\"value\":{}",
                escape(entity),
                escape(metric),
                value
            );
        }
        DumpRecord::Gauge {
            entity,
            metric,
            value,
            max,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"gauge\",\"entity\":\"{}\",\"metric\":\"{}\",\"value\":{},\"max\":{}",
                escape(entity),
                escape(metric),
                value,
                max
            );
        }
        DumpRecord::Hist {
            entity,
            metric,
            count,
            sum,
            min,
            max,
            buckets,
        } => {
            let packed: Vec<String> = buckets.iter().map(|(lo, c)| format!("{lo}:{c}")).collect();
            let _ = write!(
                s,
                ",\"type\":\"hist\",\"entity\":\"{}\",\"metric\":\"{}\",\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"buckets\":\"{}\"",
                escape(entity),
                escape(metric),
                count,
                sum,
                min,
                max,
                packed.join(";")
            );
        }
        DumpRecord::Series {
            entity,
            metric,
            samples,
        } => {
            let packed: Vec<String> = samples
                .iter()
                .map(|(t, v)| format!("{t}:{}", json_f64(*v)))
                .collect();
            let _ = write!(
                s,
                ",\"type\":\"series\",\"entity\":\"{}\",\"metric\":\"{}\",\"samples\":\"{}\"",
                escape(entity),
                escape(metric),
                packed.join(";")
            );
        }
        DumpRecord::Event {
            at_ns,
            kind,
            pkt,
            flow,
            node,
            link,
            aux,
            tag,
            span,
            parent,
        } => {
            let _ = write!(s, ",\"type\":\"event\"");
            write_event_fields(
                &mut s, *at_ns, kind, *pkt, *flow, node, link, *aux, tag, *span, *parent,
            );
        }
        DumpRecord::Ring {
            pushed,
            evicted,
            cap,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"ring\",\"pushed\":{pushed},\"evicted\":{evicted},\"cap\":{cap}"
            );
        }
        DumpRecord::Forensic {
            capture,
            trigger,
            at_ns,
            pkt,
            evicted,
            suppressed,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"forensic\",\"capture\":{},\"trigger\":\"{}\",\"at_ns\":{},\
                 \"pkt\":{},\"evicted\":{},\"suppressed\":{}",
                capture,
                escape(trigger),
                at_ns,
                opt_num(*pkt),
                evicted,
                suppressed
            );
        }
        DumpRecord::ForensicEvent {
            capture,
            section,
            at_ns,
            kind,
            pkt,
            flow,
            node,
            link,
            aux,
            tag,
            span,
            parent,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"fevent\",\"capture\":{},\"section\":\"{}\"",
                capture,
                escape(section)
            );
            write_event_fields(
                &mut s, *at_ns, kind, *pkt, *flow, node, link, *aux, tag, *span, *parent,
            );
        }
        DumpRecord::Profile {
            label,
            count,
            total_ns,
            max_ns,
        } => {
            let _ = write!(
                s,
                ",\"type\":\"profile\",\"label\":\"{}\",\"count\":{},\"total_ns\":{},\"max_ns\":{}",
                escape(label),
                count,
                total_ns,
                max_ns
            );
        }
    }
    s.push('}');
    s
}

#[allow(clippy::too_many_arguments)] // one flat record, one flat writer
fn write_event_fields(
    s: &mut String,
    at_ns: u64,
    kind: &str,
    pkt: Option<u64>,
    flow: Option<u64>,
    node: &str,
    link: &str,
    aux: u64,
    tag: &str,
    span: Option<u64>,
    parent: Option<u64>,
) {
    let _ = write!(
        s,
        ",\"at_ns\":{},\"kind\":\"{}\",\"pkt\":{},\"flow\":{},\
         \"node\":\"{}\",\"link\":\"{}\",\"aux\":{},\"tag\":\"{}\",\"span\":{},\"parent\":{}",
        at_ns,
        escape(kind),
        opt_num(pkt),
        opt_num(flow),
        escape(node),
        escape(link),
        aux,
        escape(tag),
        opt_num(span),
        opt_num(parent)
    );
}

fn opt_num(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a valid JSON number (non-finite values become 0).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    /// A string (already unescaped).
    Str(String),
    /// A number, kept as raw text so `u64` round-trips exactly.
    Num(String),
    /// `null`.
    Null,
}

impl JsonVal {
    fn as_str(&self) -> &str {
        match self {
            JsonVal::Str(s) => s,
            JsonVal::Num(s) => s,
            JsonVal::Null => "",
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(s) => s.parse().ok().or_else(|| {
                s.parse::<f64>().ok().map(|f| f as u64) // scientific notation fallback
            }),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match self {
            JsonVal::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k": "v", "n": 3, "x": null}`) into a
/// key → value map. Nested objects/arrays are not supported — the dump
/// format never emits them. Returns `None` on malformed input.
fn parse_flat(line: &str) -> Option<HashMap<String, JsonVal>> {
    let mut map = HashMap::new();
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(map);
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => JsonVal::Str(parse_string(&mut chars)?),
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JsonVal::Null
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if num.is_empty() {
                    return None;
                }
                JsonVal::Num(num)
            }
        };
        map.insert(key, val);
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_pairs_u64(packed: &str) -> Vec<(u64, u64)> {
    packed
        .split(';')
        .filter(|s| !s.is_empty())
        .filter_map(|s| {
            let (a, b) = s.split_once(':')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        })
        .collect()
}

fn parse_pairs_f64(packed: &str) -> Vec<(u64, f64)> {
    packed
        .split(';')
        .filter(|s| !s.is_empty())
        .filter_map(|s| {
            let (a, b) = s.split_once(':')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        })
        .collect()
}

/// Parses one dump line into `(run label, record)`. Lines that are not
/// dump records (e.g. interleaved `KAR_TELEMETRY` records) yield `None`.
pub fn parse_line(line: &str) -> Option<(String, DumpRecord)> {
    let map = parse_flat(line)?;
    let run = map.get("run")?.as_str().to_string();
    let get = |k: &str| {
        map.get(k)
            .map(|v| v.as_str().to_string())
            .unwrap_or_default()
    };
    let get_u64 = |k: &str| map.get(k).and_then(JsonVal::as_u64).unwrap_or(0);
    let get_i64 = |k: &str| map.get(k).and_then(JsonVal::as_i64).unwrap_or(0);
    let rec = match map.get("type")?.as_str() {
        "counter" => DumpRecord::Counter {
            entity: get("entity"),
            metric: get("metric"),
            value: get_u64("value"),
        },
        "gauge" => DumpRecord::Gauge {
            entity: get("entity"),
            metric: get("metric"),
            value: get_i64("value"),
            max: get_i64("max"),
        },
        "hist" => DumpRecord::Hist {
            entity: get("entity"),
            metric: get("metric"),
            count: get_u64("count"),
            sum: get_u64("sum"),
            min: get_u64("min"),
            max: get_u64("max"),
            buckets: parse_pairs_u64(&get("buckets")),
        },
        "series" => DumpRecord::Series {
            entity: get("entity"),
            metric: get("metric"),
            samples: parse_pairs_f64(&get("samples")),
        },
        "event" => DumpRecord::Event {
            at_ns: get_u64("at_ns"),
            kind: get("kind"),
            pkt: map.get("pkt").and_then(JsonVal::as_u64),
            flow: map.get("flow").and_then(JsonVal::as_u64),
            node: get("node"),
            link: get("link"),
            aux: get_u64("aux"),
            tag: get("tag"),
            span: map.get("span").and_then(JsonVal::as_u64),
            parent: map.get("parent").and_then(JsonVal::as_u64),
        },
        "ring" => DumpRecord::Ring {
            pushed: get_u64("pushed"),
            evicted: get_u64("evicted"),
            cap: get_u64("cap"),
        },
        "forensic" => DumpRecord::Forensic {
            capture: get_u64("capture"),
            trigger: get("trigger"),
            at_ns: get_u64("at_ns"),
            pkt: map.get("pkt").and_then(JsonVal::as_u64),
            evicted: get_u64("evicted"),
            suppressed: get_u64("suppressed"),
        },
        "fevent" => DumpRecord::ForensicEvent {
            capture: get_u64("capture"),
            section: get("section"),
            at_ns: get_u64("at_ns"),
            kind: get("kind"),
            pkt: map.get("pkt").and_then(JsonVal::as_u64),
            flow: map.get("flow").and_then(JsonVal::as_u64),
            node: get("node"),
            link: get("link"),
            aux: get_u64("aux"),
            tag: get("tag"),
            span: map.get("span").and_then(JsonVal::as_u64),
            parent: map.get("parent").and_then(JsonVal::as_u64),
        },
        "profile" => DumpRecord::Profile {
            label: get("label"),
            count: get_u64("count"),
            total_ns: get_u64("total_ns"),
            max_ns: get_u64("max_ns"),
        },
        _ => return None,
    };
    Some((run, rec))
}

/// Reads a dump stream back into per-run groups, preserving first-seen
/// run order and per-run record order. Unparseable lines are skipped.
pub fn read_dumps<R: BufRead>(reader: R) -> io::Result<Vec<RunDump>> {
    let mut order: Vec<String> = Vec::new();
    let mut by_run: HashMap<String, Vec<DumpRecord>> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        if let Some((run, rec)) = parse_line(&line) {
            if !by_run.contains_key(&run) {
                order.push(run.clone());
            }
            by_run.entry(run).or_default().push(rec);
        }
    }
    Ok(order
        .into_iter()
        .map(|label| {
            let records = by_run.remove(&label).unwrap_or_default();
            RunDump { label, records }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn dump_round_trips_through_lines() {
        let reg = MetricsRegistry::new();
        reg.counter(Entity::Node(0), "deflect.hp").add(3);
        reg.gauge(Entity::Link(1), "queue").set(-2);
        reg.histogram(Entity::Flow(7), "latency_ns").observe(12345);
        reg.series(Entity::Link(1), "util").sample(10, 0.5);
        let mut ev = Event::new(42, EventKind::Deflect);
        ev.pkt = Some(9);
        ev.flow = Some(7);
        ev.node = Some(0);
        ev.tag = "hp";
        let profile = vec![ProfileRow {
            label: "arrive",
            count: 4,
            total_ns: 1000,
            max_ns: 400,
        }];
        let dump = RunDump::collect(
            "test/run \"quoted\"",
            &reg.snapshot(),
            &[ev],
            &profile,
            &TopoLabeler::anonymous(),
        );
        let lines = dump.to_lines();
        let back = read_dumps(lines.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], dump);
    }

    #[test]
    fn span_ring_and_forensic_records_round_trip() {
        let dump = RunDump {
            label: "r".into(),
            records: vec![
                DumpRecord::Event {
                    at_ns: 10,
                    kind: "detect".into(),
                    pkt: None,
                    flow: None,
                    node: "SW7".into(),
                    link: "SW7-SW13".into(),
                    aux: 1,
                    tag: "down".into(),
                    span: Some(4),
                    parent: Some(2),
                },
                DumpRecord::Ring {
                    pushed: 100,
                    evicted: 36,
                    cap: 64,
                },
                DumpRecord::Forensic {
                    capture: 0,
                    trigger: "loop".into(),
                    at_ns: 999,
                    pkt: Some(7),
                    evicted: 36,
                    suppressed: 3,
                },
                DumpRecord::ForensicEvent {
                    capture: 0,
                    section: "chain".into(),
                    at_ns: 10,
                    kind: "fault".into(),
                    pkt: None,
                    flow: None,
                    node: String::new(),
                    link: "SW7-SW13".into(),
                    aux: 0,
                    tag: "down".into(),
                    span: Some(2),
                    parent: None,
                },
            ],
        };
        let back = read_dumps(dump.to_lines().as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], dump);
    }

    #[test]
    fn u64_extremes_survive_the_parser() {
        let dump = RunDump {
            label: "r".into(),
            records: vec![DumpRecord::Hist {
                entity: "global".into(),
                metric: "m".into(),
                count: 1,
                sum: u64::MAX,
                min: u64::MAX,
                max: u64::MAX,
                buckets: vec![(u64::MAX - 1, 1)],
            }],
        };
        let back = read_dumps(dump.to_lines().as_bytes()).unwrap();
        assert_eq!(back[0], dump);
    }

    #[test]
    fn foreign_lines_are_skipped() {
        let text = "{\"type\":\"run\",\"experiment\":\"fig4\"}\nnot json\n\
                    {\"run\":\"a\",\"type\":\"counter\",\"entity\":\"global\",\"metric\":\"x\",\"value\":1}\n";
        let dumps = read_dumps(text.as_bytes()).unwrap();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].label, "a");
        assert_eq!(dumps[0].records.len(), 1);
    }

    #[test]
    fn labeler_falls_back_on_unknown_ids() {
        let l = TopoLabeler::anonymous();
        assert_eq!(l.entity(Entity::Node(3)), "node:node3");
        assert_eq!(l.entity(Entity::Link(0)), "link:link0");
        assert_eq!(l.entity(Entity::Global), "global");
        assert_eq!(l.entity(Entity::Pair(1, 2)), "pair:node1>node2");
    }
}
